"""Multi-instance QUEPA (Section III-A) with graceful degradation.

Run with:  python examples/cluster_deployment.py

Shows the two operational properties of QUEPA's architecture:

1. *scale-out* — QUEPA stores no data, so several instances (each with
   its own A' index replica) answer independent queries in parallel;
   the cluster's makespan for a query batch drops as instances are
   added.
2. *loose coupling under failure* — when one store of the polystore
   goes down, augmented queries keep answering from the remaining
   stores (``skip_unavailable``), reporting what was skipped.
"""

from repro.cluster import DispatchPolicy, QuepaCluster
from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.testing import DownStore
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony


def main() -> None:
    bundle = build_polyphony(stores=7, scale=PolystoreScale(n_albums=400))
    workload = QueryWorkload(bundle)
    queries = [
        workload.query("transactions", 100, variant=v) for v in range(8)
    ]

    print("=== 1. Scale-out: one batch of 8 independent queries ===")
    for instances in (1, 2, 4):
        cluster = QuepaCluster(
            bundle.polystore, bundle.aindex,
            instances=instances,
            policy=DispatchPolicy.LEAST_LOADED,
        )
        for query in queries:
            cluster.submit(query.database, query.query)
        report = cluster.drain()
        print(
            f"  {instances} instance(s): makespan "
            f"{report.makespan:7.3f}s virtual, per-instance load "
            f"{report.per_instance_counts()}"
        )

    print("\n=== 2. Graceful degradation when the catalogue is down ===")
    inner = bundle.polystore.detach("catalogue")
    bundle.polystore.attach("catalogue", DownStore(inner))
    quepa = Quepa(bundle.polystore, bundle.aindex)
    config = AugmentationConfig(
        augmenter="outer_batch", batch_size=64, threads_size=4,
        skip_unavailable=True,
    )
    query = workload.query("transactions", 20)
    answer = quepa.augmented_search(query.database, query.query,
                                    config=config)
    touched = sorted({k.database for k in answer.augmented_keys()})
    print(f"  answered with {len(answer.augmented)} augmented objects "
          f"from {touched}")
    print(f"  skipped (unavailable): {answer.stats.unavailable_databases}")

    # Restore the store: the polystore is loosely coupled, nothing to
    # rebuild — the next query sees the catalogue again.
    bundle.polystore.detach("catalogue")
    bundle.polystore.attach("catalogue", inner)
    answer = quepa.augmented_search(query.database, query.query,
                                    config=config)
    print(f"  after recovery: {answer.stats.unavailable_databases=} "
          f"{len(answer.augmented)} objects")


if __name__ == "__main__":
    main()
