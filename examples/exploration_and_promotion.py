"""Augmented exploration with p-relation promotion.

Run with:  python examples/exploration_and_promotion.py

Demonstrates Definition 4 and Section III-D.a: a user walks the
polystore click by click; when enough sessions traverse the same full
path, QUEPA promotes a shortcut matching p-relation between its
endpoints — after which the destination is reachable in a single step.
"""

from repro.core import Quepa
from repro.core.promotion import PromotionPolicy
from repro.network import centralized_profile
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony


def main() -> None:
    bundle = build_polyphony(stores=4, scale=PolystoreScale(n_albums=100))
    quepa = Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=centralized_profile(bundle.database_names()),
        promotion_policy=PromotionPolicy(base=8, min_visits=2),
    )
    workload = QueryWorkload(bundle)
    query = workload.query("transactions", 10)

    print("=== One exploration session ===")
    with quepa.explore(query.database, query.query) as session:
        start = session.results[0].key
        print(f"start from {start}")
        step = session.select(start)
        for link in step.links[:5]:
            print(f"  link -> {link.key} (p={link.probability:.2f})")
        # Follow the strongest link twice more, ending somewhere not
        # directly related to the start (so a shortcut can be promoted).
        second = step.links[0].key
        step2 = session.select(second)
        print(f"selected {second}")
        third = next(
            link.key
            for link in step2.links
            if link.key != start
            and quepa.aindex.relation(start, link.key) is None
        )
        session.select(third)
        print(f"selected {third}")
        walked = session.path
    print(f"full path recorded: {' -> '.join(str(k) for k in walked)}")

    print("\n=== Repeat the walk until the path is promoted ===")
    before = quepa.aindex.relation(walked[0], walked[-1])
    print(f"edge {walked[0]} -- {walked[-1]} before: {before}")
    threshold = quepa.paths.policy.threshold(len(walked) - 1)
    for __ in range(threshold):
        quepa.record_exploration(walked)
    after = quepa.aindex.relation(walked[0], walked[-1])
    print(f"after {threshold} more recorded walks: {after}")
    print(f"promoted relations so far: {len(quepa.paths.promoted)}")

    print("\n=== The shortcut now shows up in one exploration step ===")
    links = quepa.augment_object(walked[0])
    reachable = [str(link.key) for link in links]
    marker = "YES" if str(walked[-1]) in reachable else "no"
    print(f"{walked[-1]} directly reachable from {walked[0]}: {marker}")


if __name__ == "__main__":
    main()
