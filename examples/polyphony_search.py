"""Augmented search over the full generated Polyphony polystore.

Run with:  python examples/polyphony_search.py

Builds the paper's evaluation workload (a 7-store polystore with the
ground-truth A' index), then runs size-controlled native queries on
each engine — SQL, Mongo-style filters, graph matches, Redis MGET — in
augmented mode and reports what the augmentation added, comparing two
augmenter configurations.
"""

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import centralized_profile, distributed_profile
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony


def main() -> None:
    bundle = build_polyphony(stores=7, scale=PolystoreScale(n_albums=800))
    names = bundle.database_names()
    print(
        f"polystore: {bundle.store_count} stores, "
        f"{bundle.polystore.total_objects()} objects; "
        f"A' index: {bundle.aindex.node_count()} nodes, "
        f"{bundle.aindex.edge_count()} edges"
    )
    workload = QueryWorkload(bundle)

    print("\n=== One augmented query per engine (level 0) ===")
    quepa = Quepa(
        bundle.polystore, bundle.aindex, profile=centralized_profile(names)
    )
    for query in workload.base_queries(size=200):
        answer = quepa.augmented_search(query.database, query.query, level=0)
        by_db = {
            db: len(entries) for db, entries in answer.by_database().items()
        }
        print(
            f"  {query.engine:10s} on {query.database:12s}: "
            f"{len(answer.originals)} local + {len(answer.augmented)} augmented "
            f"{by_db}"
        )

    print("\n=== Sequential vs batched, centralized vs distributed ===")
    query = workload.query("transactions", 500)
    for profile_fn in (centralized_profile, distributed_profile):
        profile = profile_fn(names)
        quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        for augmenter, batch in (("sequential", 1), ("outer_batch", 128)):
            config = AugmentationConfig(
                augmenter=augmenter, batch_size=batch, threads_size=8
            )
            answer = quepa.augmented_search(
                query.database, query.query, level=0, config=config
            )
            print(
                f"  {profile.name:11s} {augmenter:12s}: "
                f"{answer.stats.elapsed:8.3f}s virtual, "
                f"{answer.stats.queries_issued} native queries"
            )


if __name__ == "__main__":
    main()
