"""Quickstart: build a tiny polystore, augment a SQL query.

Run with:  python examples/quickstart.py

This is the paper's introduction scenario in miniature: Lucy, who only
knows SQL, asks the sales database about the album "Wish" and the
augmented answer reveals the catalogue entry, the current discount and
the similar-items node — none of which live in her database.
"""

from repro.core import AIndex, Quepa
from repro.core.search import format_answer
from repro.model import GlobalKey, Polystore, PRelation
from repro.stores import DocumentStore, GraphStore, KeyValueStore, RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema


def build_polystore() -> Polystore:
    """The four departmental databases of Fig 1."""
    polystore = Polystore()

    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("artist", ColumnType.TEXT),
                Column("name", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        ),
    )
    sales.insert_row(
        "inventory", {"id": "a32", "artist": "Cure", "name": "Wish", "price": 14.9}
    )
    sales.insert_row(
        "inventory",
        {"id": "a33", "artist": "Cure", "name": "Disintegration", "price": 12.5},
    )
    polystore.attach("transactions", sales)

    catalogue = DocumentStore()
    catalogue.insert(
        "albums",
        {
            "_id": "d1",
            "title": "Wish",
            "artist": "The Cure",
            "artist_id": "a1",
            "year": 1992,
        },
    )
    polystore.attach("catalogue", catalogue)

    discounts = KeyValueStore(keyspace="drop")
    discounts.set("k1:cure:wish", "40%")
    polystore.attach("discount", discounts)

    similar = GraphStore()
    similar.create_node("Item", {"title": "Wish"}, node_id="i1")
    similar.create_node("Item", {"title": "Disintegration"}, node_id="i2")
    similar.create_edge("i1", "SIMILAR", "i2", {"weight": 0.9})
    polystore.attach("similar", similar)
    return polystore


def build_aindex() -> AIndex:
    """The p-relations of Example 2 (plus the graph link)."""
    index = AIndex()
    key = GlobalKey.parse
    index.add(
        PRelation.identity(
            key("catalogue.albums.d1"), key("discount.drop.k1:cure:wish"), 0.8
        )
    )
    index.add(
        PRelation.identity(
            key("catalogue.albums.d1"), key("transactions.inventory.a32"), 0.9
        )
    )
    index.add(
        PRelation.matching(key("catalogue.albums.d1"), key("similar.Item.i1"), 0.7)
    )
    return index


def main() -> None:
    polystore = build_polystore()
    aindex = build_aindex()
    quepa = Quepa(polystore, aindex)

    print("=== Lucy's query, in plain SQL, augmented at level 0 ===")
    answer = quepa.augmented_search(
        "transactions",
        "SELECT * FROM inventory WHERE name LIKE '%wish%'",
        level=0,
    )
    print(format_answer(answer))
    print()
    print(
        f"local answer: {len(answer.originals)} object(s); "
        f"augmentation: {len(answer.augmented)} object(s); "
        f"time: {answer.stats.elapsed * 1000:.2f} ms (virtual)"
    )

    print()
    print("=== The same query at level 1 reaches one hop further ===")
    answer1 = quepa.augmented_search(
        "transactions",
        "SELECT * FROM inventory WHERE name LIKE '%wish%'",
        level=1,
    )
    for entry in answer1.augmented:
        print(f"  {entry.key}  p={entry.probability:.2f}")


if __name__ == "__main__":
    main()
