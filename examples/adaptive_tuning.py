"""The adaptive optimizer end to end (Section V).

Run with:  python examples/adaptive_tuning.py

Phase 1 collects run logs by executing a query mix under many
configurations; Phase 2 trains T1 (C4.5) and T2-T4 (RepTree); Phase 3
lets ADAPTIVE pick configurations for unseen queries, compared against
a fixed default. Also prints T1 as text — the shape of the paper's
Fig 8.
"""

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import centralized_profile, distributed_profile
from repro.optimizer import AdaptiveOptimizer, RunLogRepository
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

TRAIN_CONFIGS = [
    AugmentationConfig("sequential", 1, 1, 1024),
    AugmentationConfig("batch", 128, 1, 1024),
    AugmentationConfig("outer", 1, 8, 1024),
    AugmentationConfig("outer_batch", 128, 8, 1024),
    AugmentationConfig("inner", 1, 8, 1024),
    AugmentationConfig("outer_inner", 1, 8, 1024),
]


def main() -> None:
    bundle = build_polyphony(stores=7, scale=PolystoreScale(n_albums=600))
    names = bundle.database_names()
    workload = QueryWorkload(bundle)
    logs = RunLogRepository()

    print("=== Phase 1: collect run logs ===")
    for profile in (centralized_profile(names), distributed_profile(names)):
        quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        quepa.run_listeners.append(logs)
        for size in (20, 100, 400):
            for database in ("transactions", "catalogue"):
                query = workload.query(database, size)
                for config in TRAIN_CONFIGS:
                    quepa.augmented_search(
                        query.database, query.query, level=0, config=config
                    )
    print(f"collected {len(logs)} run logs")

    print("\n=== Phase 2: train T1-T4 ===")
    optimizer = AdaptiveOptimizer(logs)
    report = optimizer.train()
    print(
        f"signatures={report.signatures} "
        f"T1 examples={report.t1_examples} (training accuracy "
        f"{report.t1_accuracy:.2f}), T2={report.t2_examples}, "
        f"T3={report.t3_examples}, T4={report.t4_examples}"
    )
    print("\nT1 decision tree (Fig 8 shape):")
    print(optimizer.describe())

    print("\n=== Phase 3: ADAPTIVE vs fixed default on unseen queries ===")
    profile = distributed_profile(names)
    adaptive_quepa = Quepa(
        bundle.polystore, bundle.aindex, profile=profile, optimizer=optimizer
    )
    default_quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
    for size in (50, 250, 500):
        query = workload.query("transactions", size, variant=3)
        tuned = adaptive_quepa.augmented_search(
            query.database, query.query, level=0
        )
        default = default_quepa.augmented_search(
            query.database, query.query, level=0
        )
        print(
            f"  size={size:4d}: ADAPTIVE chose {tuned.stats.augmenter:12s} "
            f"-> {tuned.stats.elapsed:7.3f}s vs default "
            f"{default.stats.augmenter}: {default.stats.elapsed:7.3f}s"
        )


if __name__ == "__main__":
    main()
