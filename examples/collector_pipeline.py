"""Building an A' index from scratch with the Collector (Section III-D).

Run with:  python examples/collector_pipeline.py

Creates a small dirty polystore (same albums spelled slightly
differently across stores), runs blocking + pairwise matching with a
genetically tuned matcher, and shows the discovered p-relations — then
uses the freshly built index for an augmented search.
"""

from repro.collector import (
    Collector,
    CollectorSettings,
    GeneticTuner,
    JaroWinklerComparator,
    NumericComparator,
    PairwiseMatcher,
    TokenOverlapComparator,
)
from repro.collector.genetic import LabeledPair
from repro.collector.matching import AttributeRule
from repro.core import AIndex, Quepa
from repro.model import Polystore
from repro.model.objects import DataObject, GlobalKey
from repro.stores import DocumentStore, RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

ALBUMS = [
    ("Wish", "The Cure", 1992, 14.9),
    ("Disintegration", "The Cure", 1989, 12.5),
    ("Doolittle", "Pixies", 1989, 11.0),
    ("The Queen Is Dead", "The Smiths", 1986, 13.0),
]


def build_dirty_polystore() -> Polystore:
    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("artist", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        ),
    )
    catalogue = DocumentStore()
    for index, (title, artist, year, price) in enumerate(ALBUMS):
        sales.insert_row(
            "inventory",
            {
                "id": f"a{index}",
                # The sales system spells things slightly differently.
                "name": title.upper(),
                "artist": artist.replace("The ", ""),
                "price": price,
            },
        )
        catalogue.insert(
            "albums",
            {
                "_id": f"d{index}",
                "title": title,
                "artist": artist,
                "year": year,
                "price": round(price * 1.02, 2),
            },
        )
    polystore.attach("transactions", sales)
    polystore.attach("catalogue", catalogue)
    return polystore


def make_rules() -> list[AttributeRule]:
    return [
        AttributeRule("name", "title", JaroWinklerComparator(), weight=0.6),
        AttributeRule("name", "title", TokenOverlapComparator(), weight=0.2),
        AttributeRule("artist", "artist", JaroWinklerComparator(), weight=0.4),
        AttributeRule("price", "price", NumericComparator(0.2), weight=0.2),
    ]


def labelled_pairs(polystore: Polystore) -> list[LabeledPair]:
    """Ground truth: row aN matches document dN and nothing else."""
    sales = polystore.database("transactions")
    catalogue = polystore.database("catalogue")
    pairs = []
    for i in range(len(ALBUMS)):
        left = DataObject(
            GlobalKey("transactions", "inventory", f"a{i}"),
            sales.get_value("inventory", f"a{i}"),
        )
        for j in range(len(ALBUMS)):
            right = DataObject(
                GlobalKey("catalogue", "albums", f"d{j}"),
                catalogue.get_value("albums", f"d{j}"),
            )
            pairs.append(LabeledPair(left, right, is_match=(i == j)))
    return pairs


def main() -> None:
    polystore = build_dirty_polystore()

    print("=== Tune the matcher genetically against labelled pairs ===")
    tuner = GeneticTuner(make_rules(), generations=20, seed=5)
    result = tuner.tune(labelled_pairs(polystore))
    matcher = result.matcher
    print(
        f"tuned in {result.generations} generations, F1={result.fitness:.2f}; "
        f"thresholds: matching>={matcher.matching_threshold:.2f}, "
        f"identity>={matcher.identity_threshold:.2f}"
    )

    print("\n=== Run the collector: blocking + matching -> A' index ===")
    aindex = AIndex()
    collector = Collector(matcher, CollectorSettings(max_block_size=20))
    report = collector.collect(polystore, aindex)
    print(
        f"scanned {report.objects_scanned} objects, "
        f"{report.candidate_pairs} candidate pairs, found "
        f"{report.identities} identities + {report.matchings} matchings"
    )
    for relation in report.relations:
        print(f"  {relation}")

    print("\n=== Use the discovered index for an augmented search ===")
    quepa = Quepa(polystore, aindex)
    answer = quepa.augmented_search(
        "transactions", "SELECT * FROM inventory WHERE name LIKE '%WISH%'"
    )
    for original in answer.originals:
        print(f"local: {original.key} {original.value}")
    for entry in answer.augmented:
        print(f"  => {entry.key} (p={entry.probability:.2f}) {entry.object.value}")


if __name__ == "__main__":
    main()
