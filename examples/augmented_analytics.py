"""Augmented analytics: the paper's future-work direction, implemented.

Run with:  python examples/augmented_analytics.py

Three analyst workflows on the generated Polyphony polystore:

1. *profile* — where does the polystore keep information related to my
   result set, and how reliably is it linked?
2. *expected aggregates* — probability-weighted statistics over the
   augmented answer (an object linked with p = 0.7 contributes 0.7).
3. *enrichment table* — the augmentation flattened into one row per
   local result, one column per remote database.
"""

from repro.analytics import (
    augmented_aggregate,
    augmented_profile,
    enrich_table,
)
from repro.core import Quepa
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony


def main() -> None:
    bundle = build_polyphony(stores=7, scale=PolystoreScale(n_albums=400))
    quepa = Quepa(bundle.polystore, bundle.aindex)
    workload = QueryWorkload(bundle)
    query = workload.query("transactions", 50)

    print("=== 1. Augmentation profile of a 50-row SQL result ===")
    profile = augmented_profile(quepa, query.database, query.query)
    for database, stats in profile.items():
        print(
            f"  {database:16s} {stats['objects']:6.0f} objects, "
            f"expected {stats['expected_objects']:8.2f}, "
            f"mean link p = {stats['mean_probability']:.2f}"
        )

    print("\n=== 2. Expected discount over the augmented answer ===")
    report = augmented_aggregate(
        quepa, query.database, query.query, metric_field="value"
    )
    discount = report.groups.get("discount")
    if discount is not None:
        print(
            f"  discounts linked: {discount.raw_count} "
            f"(expected {discount.expected_count:.2f})"
        )
        print(
            f"  expected mean discount: {discount.expected_mean:.1f}% "
            f"(range {discount.minimum:.0f}-{discount.maximum:.0f}%)"
        )

    print("\n=== 3. Enrichment table (first 3 rows) ===")
    rows = enrich_table(
        quepa, query.database, query.query, min_probability=0.6
    )
    for row in rows[:3]:
        print(f"  {row['_key']}: {row['_local']['name']!r}")
        for database, cell in row.items():
            if database.startswith("_"):
                continue
            print(
                f"    {database:14s} -> {cell['key']} "
                f"(p={cell['probability']:.2f})"
            )


if __name__ == "__main__":
    main()
