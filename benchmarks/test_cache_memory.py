"""Section VII-B.c: memory-based optimizations (the cache campaign).

The paper describes (without plotting) that augmentation is less
sensitive to CACHE_SIZE in the centralized deployment — the stores'
own caches make QUEPA's partly redundant — while caching pays off in
the distributed deployment because hits save inter-machine roundtrips.

Claims checked:
* with level-1 queries (overlapping augmentations), a larger cache
  reduces time in both deployments;
* the relative saving is far larger in the distributed deployment;
* repeated queries (exploration-like access) hit the cache massively.
"""

from __future__ import annotations

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.workloads import QueryWorkload

from .conftest import QUERY_SIZES
from .harness import make_profile

CACHE_SIZES = (0, 1_000, 10_000, 100_000)


def run_with_cache(bundle, query, deployment: str, cache_size: int):
    quepa = Quepa(
        bundle.polystore, bundle.aindex,
        profile=make_profile(bundle, deployment),
    )
    config = AugmentationConfig(
        augmenter="batch", batch_size=128, cache_size=cache_size
    )
    first = quepa.augmented_search(
        query.database, query.query, level=1, config=config
    )
    second = quepa.augmented_search(
        query.database, query.query, level=1, config=config
    )
    return first.stats.elapsed, second.stats.elapsed, second.stats.cache_hits


def test_cache_size_sweep(benchmark, bundle7, report):
    workload = QueryWorkload(bundle7)
    query = workload.query("transactions", min(500, max(QUERY_SIZES)))

    def run():
        out = {}
        for deployment in ("centralized", "distributed"):
            out[deployment] = {
                cache_size: run_with_cache(
                    bundle7, query, deployment, cache_size
                )
                for cache_size in CACHE_SIZES
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for deployment, curve in results.items():
        report.section(f"CACHE_SIZE sweep, {deployment}, level 1")
        for cache_size, (cold, warm, hits) in curve.items():
            report.row(cache_size=cache_size, first_s=cold,
                       repeat_s=warm, repeat_hits=hits)

    for deployment in ("centralized", "distributed"):
        curve = results[deployment]
        # Claim 1: a cache always helps repeated access (vs none).
        assert curve[100_000][1] < curve[0][1]
        # Even the first level-1 run profits from intra-answer overlap.
        assert curve[100_000][0] <= curve[0][0]

    # Claim 2: relative saving is larger when distributed.
    def saving(deployment):
        curve = results[deployment]
        return curve[0][1] / max(curve[100_000][1], 1e-9)

    assert saving("distributed") > saving("centralized")

    # Claim 3: with a big cache, repeats are nearly all hits.
    __, __, hits = results["distributed"][100_000]
    assert hits > 0
    report.note("cache benefit modest centralized, decisive distributed "
                "(it saves inter-machine roundtrips)")
