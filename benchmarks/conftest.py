"""Shared benchmark fixtures: polystore bundles and result reporting.

The paper's testbed holds ~30M objects and queries up to 10,000 results.
A pure-Python in-process reproduction runs the *same code paths* at a
reduced default scale (1,000 entities per store, queries up to 1,000
results); set ``REPRO_FULL=1`` to run the paper's full query sizes.
Times reported by the figures are **virtual seconds** from the
deterministic cost model (see DESIGN.md), so the scale-down changes
absolute numbers, not the shapes.

Each figure writes its table to ``benchmarks/results/<fig>.txt`` and
asserts the paper's qualitative claims.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads import PolystoreScale, build_polyphony

FULL = os.environ.get("REPRO_FULL") == "1"


def pytest_collection_modifyitems(items):
    """Everything under ``benchmarks/`` carries the ``benchmark`` marker,
    so ``-m 'not benchmark'`` works when collecting tests and figures
    together."""
    for item in items:
        item.add_marker(pytest.mark.benchmark)

#: Query result sizes (the paper: 100, 500, 1000, 5000, 10000).
QUERY_SIZES = (100, 500, 1000, 5000, 10000) if FULL else (100, 500, 1000)
#: Largest query size; entities per store must cover it.
N_ALBUMS = 10_000 if FULL else 1_000

RESULTS_DIR = Path(__file__).parent / "results"

_BUNDLES: dict[int, object] = {}


def get_bundle(stores: int):
    """Build (once per session) the polystore variant with ``stores``."""
    if stores not in _BUNDLES:
        _BUNDLES[stores] = build_polyphony(
            stores=stores,
            scale=PolystoreScale(n_albums=N_ALBUMS),
            seed=42,
        )
    return _BUNDLES[stores]


@pytest.fixture(scope="session")
def bundle4():
    return get_bundle(4)


@pytest.fixture(scope="session")
def bundle7():
    return get_bundle(7)


@pytest.fixture(scope="session")
def bundle10():
    return get_bundle(10)


@pytest.fixture(scope="session")
def bundle13():
    return get_bundle(13)


class FigureReport:
    """Collects one figure's series and writes them to disk."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.title = title
        self.lines: list[str] = [f"# {name}: {title}", ""]

    def section(self, label: str) -> None:
        self.lines.append(f"## {label}")

    def row(self, **fields) -> None:
        parts = []
        for key, value in fields.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.6f}")
            else:
                parts.append(f"{key}={value}")
        self.lines.append("  " + "  ".join(parts))

    def note(self, text: str) -> None:
        self.lines.append(f"note: {text}")

    def save(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        return path


@pytest.fixture
def report(request):
    """A FigureReport named after the test; saved on teardown."""
    name = request.node.name.replace("test_", "")
    figure = FigureReport(name, str(request.node.nodeid))
    yield figure
    path = figure.save()
    print(f"\n[figure data written to {path}]")
