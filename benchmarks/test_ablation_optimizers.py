"""Ablation: rule-based ADAPTIVE vs a traditional cost-based optimizer.

Section V motivates the rule-based design: "Traditional cost-based
optimizers are difficult to implement in a polystore because we might
not have enough knowledge about each database system in play."

This ablation makes the argument quantitative. A cost-based optimizer
(:mod:`repro.optimizer.costbased`) picks configurations by analytic
argmin. When it is given the *true* deployment parameters it is
competitive; when its assumptions are wrong — here: it believes the
deployment is local while queries actually run distributed, the
standard failure mode when stores are closed boxes — its choices fall
behind ADAPTIVE, which learned from observed run times and needs no
store knowledge at all.
"""

from __future__ import annotations

from repro.core import Quepa
from repro.network import distributed_profile
from repro.optimizer import AdaptiveOptimizer
from repro.optimizer.costbased import AssumedCosts, CostBasedOptimizer
from repro.workloads import QueryWorkload

from .conftest import get_bundle
from .test_fig12_optimizer import collect_logs


def run_with_optimizer(bundle, optimizer, queries):
    profile = distributed_profile(bundle.database_names())
    total = 0.0
    for query in queries:
        quepa = Quepa(
            bundle.polystore, bundle.aindex, profile=profile,
            optimizer=optimizer,
        )
        answer = quepa.augmented_search(query.database, query.query)
        total += answer.stats.elapsed
    return total


def test_ablation_rule_based_vs_cost_based(benchmark, report):
    def run():
        bundle = get_bundle(7)
        workload = QueryWorkload(bundle)
        queries = [
            workload.query(database, size, variant=5)
            for database in ("transactions", "catalogue")
            for size in (50, 200, 500)
        ]
        adaptive = AdaptiveOptimizer(collect_logs())
        adaptive.train()
        # The true distributed deployment has ~40-220 ms latencies; the
        # informed cost model knows that, the misinformed one believes
        # everything is co-located.
        informed = CostBasedOptimizer(AssumedCosts(roundtrip_latency=0.25))
        misinformed = CostBasedOptimizer(
            AssumedCosts(roundtrip_latency=0.0004, thread_spawn_overhead=0.01)
        )
        return {
            "ADAPTIVE": run_with_optimizer(bundle, adaptive, queries),
            "COST-INFORMED": run_with_optimizer(bundle, informed, queries),
            "COST-MISINFORMED": run_with_optimizer(
                bundle, misinformed, queries
            ),
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("total time of 6 distributed queries per optimizer")
    for name, value in totals.items():
        report.row(optimizer=name, total_s=value)

    # ADAPTIVE needs no store knowledge yet beats the misinformed cost
    # model and is competitive with the perfectly informed one.
    assert totals["ADAPTIVE"] < totals["COST-MISINFORMED"]
    assert totals["ADAPTIVE"] < totals["COST-INFORMED"] * 2.0
    report.note(
        "learned rules beat an analytic cost model with wrong store "
        "knowledge; no per-store parameters required"
    )
