"""Fig 11: CPU-based optimizations (multi-threading).

(a, b): execution time of the concurrent augmenters as THREADS_SIZE
grows — all speed up until the machine's core count (16 in the paper's
m4.4xlarge) and stabilize afterwards; INNER performs worst because its
parallelism is bounded per result.

(c-f): scalability of all six augmenters over query size and over the
number of stores — SEQUENTIAL wins only the smallest scenario (thread
overhead), OUTER-BATCH is the best overall, INNER the worst concurrent.
"""

from __future__ import annotations

from repro.core.augmentation import AugmentationConfig
from repro.workloads import QueryWorkload

from .conftest import QUERY_SIZES, get_bundle
from .harness import run_cold_warm

THREADS = (1, 2, 4, 8, 16, 32, 64)
CONCURRENT = ("inner", "outer", "outer_batch", "outer_inner")
ALL_AUGMENTERS = ("sequential", "batch") + CONCURRENT


def test_fig11_threads_sweep(benchmark, bundle10, report):
    workload = QueryWorkload(bundle10)
    query = workload.query("transactions", max(QUERY_SIZES))

    def run():
        out = {}
        for name in CONCURRENT:
            out[name] = {}
            for threads in THREADS:
                config = AugmentationConfig(
                    augmenter=name, threads_size=threads,
                    batch_size=64, cache_size=0,
                )
                out[name][threads] = run_cold_warm(
                    bundle10, query, config
                ).cold
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("Fig 11(a,b): time vs THREADS_SIZE (10 stores)")
    for name, curve in results.items():
        for threads, value in curve.items():
            report.row(augmenter=name, threads=threads, cold_s=value)

    for name in ("outer", "outer_inner"):
        curve = results[name]
        # Claim 1: speed-up until 16 threads.
        assert curve[16] < curve[1] / 3
        # Claim 2: stabilization beyond the core count.
        assert curve[64] > curve[16] * 0.5
        flat = abs(curve[64] - curve[32]) / curve[32]
        assert flat < 0.5

    # Claim 3: INNER is the worst concurrent augmenter at high threads.
    assert results["inner"][16] > results["outer"][16]
    assert results["inner"][16] > results["outer_batch"][16]
    report.note(
        "speed-up until the 16-core budget then flat; INNER worst "
        "(parallelism bounded by each result's augmentation)"
    )


def test_fig11_scalability_query_size_and_stores(benchmark, report):
    sizes = QUERY_SIZES
    store_counts = (4, 7, 10, 13)

    def run():
        by_size = {}
        bundle10 = get_bundle(10)
        workload = QueryWorkload(bundle10)
        for name in ALL_AUGMENTERS:
            config = AugmentationConfig(
                augmenter=name, threads_size=8, batch_size=64, cache_size=0
            )
            by_size[name] = {
                size: run_cold_warm(
                    bundle10, workload.query("transactions", size), config
                ).cold
                for size in sizes
            }
        by_stores = {}
        for name in ALL_AUGMENTERS:
            config = AugmentationConfig(
                augmenter=name, threads_size=8, batch_size=64, cache_size=0
            )
            by_stores[name] = {}
            for stores in store_counts:
                bundle = get_bundle(stores)
                workload = QueryWorkload(bundle)
                by_stores[name][stores] = run_cold_warm(
                    bundle, workload.query("transactions", sizes[1]), config
                ).cold
        return by_size, by_stores

    by_size, by_stores = benchmark.pedantic(run, rounds=1, iterations=1)

    report.section("Fig 11(c,d): time vs query size (10 stores)")
    for name, curve in by_size.items():
        for size, value in curve.items():
            report.row(augmenter=name, size=size, cold_s=value)
    report.section("Fig 11(e,f): time vs #stores (size %d)" % QUERY_SIZES[1])
    for name, curve in by_stores.items():
        for stores, value in curve.items():
            report.row(augmenter=name, stores=stores, cold_s=value)

    # Claim 1: OUTER-BATCH is the best overall (largest scenario).
    biggest = {name: curve[sizes[-1]] for name, curve in by_size.items()}
    assert min(biggest, key=biggest.get) == "outer_batch"
    most_stores = {name: curve[13] for name, curve in by_stores.items()}
    assert min(most_stores, key=most_stores.get) == "outer_batch"

    # Claim 2: INNER is the worst concurrent augmenter as input grows.
    for name in ("outer", "outer_batch", "outer_inner"):
        assert by_size["inner"][sizes[-1]] >= by_size[name][sizes[-1]]

    # Claim 3: times grow with the number of stores for every augmenter.
    for name, curve in by_stores.items():
        assert curve[13] > curve[4]

    # Claim 4: SEQUENTIAL wins only the very smallest scenario ("where
    # the query size is much smaller and the number of stores is
    # reduced ... because of the overhead of creating and synchronizing
    # threads"): on a single-result query over the 4-store polystore it
    # beats every thread-based augmenter, while at the largest scenario
    # it is far behind.
    bundle4 = get_bundle(4)
    tiny = QueryWorkload(bundle4).query("transactions", 1)
    tiny_times = {}
    for name in ("sequential", "inner", "outer", "outer_inner"):
        config = AugmentationConfig(
            augmenter=name, threads_size=8, batch_size=64, cache_size=0
        )
        tiny_times[name] = run_cold_warm(bundle4, tiny, config).cold
    report.section("smallest scenario: 1-result query, 4 stores")
    for name, value in tiny_times.items():
        report.row(augmenter=name, cold_s=value)
    for name in ("inner", "outer", "outer_inner"):
        assert tiny_times["sequential"] <= tiny_times[name]
    assert by_size["sequential"][sizes[-1]] > biggest["outer_batch"] * 3
    report.note("OUTER-BATCH best overall, INNER worst, SEQUENTIAL only "
                "wins the smallest scenario")
