"""Ingestion benchmark: steady-state CDC throughput and warm restart.

Not a paper figure — QUEPA's evaluation loads each testbed once — but
the roadmap's incremental-ingestion layer makes a quantitative claim
that needs standing evidence: maintaining A' from change feeds is
*O(changes)*, not O(polystore). Two measurements back it:

* **steady-state ingest**: seeded title edits stream into the stores
  while the hub pumps at several batch cadences; each point reports
  applied events/second and the lag observed just before each pump
  (the staleness bound the hub exposes);
* **warm restart vs full rebuild**: after a snapshot and a ~1% write
  delta, restoring from snapshot + WAL replay must take **< 10%** of
  the wall time a from-scratch bootstrap (full blocking + pairwise
  matching pass) takes on the same polystore.

The corpus is built for contested blocking — titles draw four words
from a shared vocabulary sized so token buckets sit near the block cap,
which is where batch collection is pairwise-heavy (the regime the
paper's BLAST-style blocker is designed for). A warm restart skips all
of that: it re-scores only the pairs the delta touches.

Both tests use wall-clock seconds — ingestion is real work, not the
virtual cost model — and the restart additionally asserts the restored
index is edge-for-edge identical to the live one, so the speed claim
can never pass on a wrong answer.

Outputs ``results/ingest*.txt``, ``BENCH_ingest.json`` and
``BENCH_ingest_steady.json``.
"""

from __future__ import annotations

import random
import string
import time

from repro.cdc import ChangeHub, IncrementalCollector
from repro.collector import JaroWinklerComparator, PairwiseMatcher
from repro.collector.collector import CollectorSettings
from repro.collector.matching import AttributeRule
from repro.core.aindex import AIndex
from repro.model import Polystore
from repro.persistence import WriteAheadLog
from repro.stores import (
    DocumentStore,
    GraphStore,
    KeyValueStore,
    RelationalStore,
)
from repro.stores.relational.types import Column, ColumnType, TableSchema

from .conftest import FULL
from .harness import write_bench_json

SEED = 29
#: Entities per store; the vocabulary is sized to keep token buckets
#: around ``4 stores * 4 words * entities / vocabulary ~ 56`` members —
#: full but valid under the block cap below.
N_ENTITIES = 900 if FULL else 450
VOCAB_SIZE = max(1, (N_ENTITIES * 4 * 4) // 56)
WORDS_PER_TITLE = 4
BLOCK_CAP = 64
#: The roadmap claim: replaying a ~1% delta from snapshot + WAL beats a
#: full rebuild by at least this factor.
RESTART_BUDGET = 0.10
DELTA_FRACTION = 0.01
#: Pump cadences for the steady-state sweep (writes per pump).
CADENCES = (1, 8, 32)
STEADY_WRITES = 64


def make_matcher() -> PairwiseMatcher:
    return PairwiseMatcher(
        [AttributeRule("name", "title", JaroWinklerComparator())],
        identity_threshold=0.95,
        matching_threshold=0.9,
    )


def make_settings() -> CollectorSettings:
    return CollectorSettings(max_block_size=BLOCK_CAP)


def make_maintainer() -> IncrementalCollector:
    return IncrementalCollector(make_matcher(), make_settings())


def _word(rng: random.Random) -> str:
    return "".join(rng.choice(string.ascii_lowercase) for __ in range(7))


def _title(rng: random.Random, vocab: list[str]) -> str:
    words = " ".join(rng.choice(vocab) for __ in range(WORDS_PER_TITLE))
    return f"{words} x{rng.randrange(1 << 20):05x}"


def build_corpus(n_entities: int = N_ENTITIES):
    """Four stores sharing one entity set with contested-bucket titles."""
    rng = random.Random(SEED)
    vocab = [_word(rng) for __ in range(VOCAB_SIZE)]
    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    catalogue = DocumentStore()
    similar = GraphStore()
    discount = KeyValueStore(keyspace="drop")
    for i in range(n_entities):
        title = _title(rng, vocab)
        sales.insert_row("inventory", {"id": f"a{i}", "name": title})
        catalogue.insert("albums", {"_id": f"d{i}", "title": title})
        similar.create_node("Item", {"title": title}, node_id=f"i{i}")
        discount.set(f"k{i}", title)
    polystore.attach("transactions", sales)
    polystore.attach("catalogue", catalogue)
    polystore.attach("similar", similar)
    polystore.attach("discount", discount)
    return polystore, vocab


def index_signature(index) -> set:
    return {
        (str(node), str(nb.key), nb.type.value, round(nb.probability, 12))
        for node in set(index.nodes())
        for nb in index.neighbors(node)
    }


def mutate_suffixes(polystore, rng: random.Random, count: int) -> None:
    """``count`` title edits that replace the unique suffix token —
    the common case of a metadata correction: the entity keeps its
    vocabulary words (and so its buckets), but every pairwise score
    involving it must be re-decided."""
    inventory = polystore.database("transactions").table("inventory")
    rows = dict(inventory.rows())
    ids = sorted(rows)
    for __ in range(count):
        row_id = rng.choice(ids)
        words = rows[row_id]["name"].rsplit(" ", 1)[0]
        fresh = f"{words} x{rng.randrange(1 << 20):05x}"
        inventory.update(row_id, {"name": fresh})
        rows[row_id] = {**rows[row_id], "name": fresh}


def test_steady_state_ingest_rate(report):
    """Events/second at several pump cadences, with the lag the hub
    reports just before each pump — the visible staleness bound."""
    sweeps = []
    report.section(
        f"Steady-state ingest ({STEADY_WRITES} writes/point, "
        f"{N_ENTITIES} entities/store)"
    )
    for cadence in CADENCES:
        polystore, __ = build_corpus()
        hub = ChangeHub(polystore, AIndex(), make_maintainer())
        hub.bootstrap()
        rng = random.Random(SEED + 1)
        max_lag = 0
        events = 0
        started = time.perf_counter()
        for step in range(STEADY_WRITES):
            mutate_suffixes(polystore, rng, 1)
            if (step + 1) % cadence == 0:
                max_lag = max(max_lag, hub.lag())
                events += hub.pump().events
        events += hub.pump().events
        elapsed = time.perf_counter() - started
        rate = events / elapsed if elapsed else 0.0
        report.row(
            cadence=cadence,
            events=events,
            events_per_s=rate,
            max_lag=max_lag,
            wall_s=elapsed,
        )
        assert events == STEADY_WRITES
        assert hub.lag() == 0
        # Staleness never exceeds the writes buffered between pumps.
        assert max_lag <= cadence
        sweeps.append(
            {
                "cadence": cadence,
                "events": events,
                "events_per_s": round(rate, 3),
                "max_lag": max_lag,
                "wall_s": round(elapsed, 6),
            }
        )
    path = write_bench_json("ingest_steady", sweeps)
    report.note(f"steady-state sweep written to {path.name}")


def test_warm_restart_beats_full_rebuild(tmp_path, report):
    """Snapshot + ~1% WAL delta restarts in < 10% of a full rebuild."""
    polystore, __ = build_corpus()
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    hub = ChangeHub(polystore, AIndex(), make_maintainer(), wal=wal)
    started = time.perf_counter()
    bootstrap = hub.bootstrap()
    full_rebuild_s = time.perf_counter() - started
    hub.snapshot(tmp_path / "snap")

    delta = max(1, int(bootstrap.objects_scanned * DELTA_FRACTION))
    mutate_suffixes(polystore, random.Random(SEED + 2), delta)
    hub.pump()

    started = time.perf_counter()
    restarted, stats = ChangeHub.warm_restart(
        tmp_path / "snap", make_matcher(), settings=make_settings(), wal=wal
    )
    warm_restart_s = time.perf_counter() - started

    # Correctness first: the speedup must not come from skipped work.
    assert stats["replayed_events"] == delta
    assert index_signature(restarted.aindex) == index_signature(hub.aindex)

    ratio = warm_restart_s / full_rebuild_s
    report.section(
        f"Warm restart vs full rebuild ({N_ENTITIES} entities/store, "
        f"{bootstrap.candidate_pairs} candidate pairs, "
        f"{delta} changed objects = "
        f"{100 * delta / bootstrap.objects_scanned:.1f}% delta)"
    )
    report.row(
        objects=bootstrap.objects_scanned,
        candidate_pairs=bootstrap.candidate_pairs,
        delta=delta,
        full_rebuild_s=full_rebuild_s,
        warm_restart_s=warm_restart_s,
        ratio=ratio,
    )
    assert ratio < RESTART_BUDGET, (
        f"warm restart took {ratio:.1%} of a full rebuild "
        f"({warm_restart_s:.3f}s vs {full_rebuild_s:.3f}s); "
        f"budget is {RESTART_BUDGET:.0%}"
    )
    path = write_bench_json(
        "ingest",
        [
            {
                "objects": bootstrap.objects_scanned,
                "candidate_pairs": bootstrap.candidate_pairs,
                "delta_events": delta,
                "delta_fraction": round(
                    delta / bootstrap.objects_scanned, 4
                ),
                "full_rebuild_s": round(full_rebuild_s, 6),
                "warm_restart_s": round(warm_restart_s, 6),
                "ratio": round(ratio, 4),
                "budget": RESTART_BUDGET,
            }
        ],
    )
    report.note(
        f"restart ratio {ratio:.1%} (budget {RESTART_BUDGET:.0%}) "
        f"written to {path.name}"
    )
