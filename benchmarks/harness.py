"""Helpers shared by the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import centralized_profile, distributed_profile
from repro.workloads import QueryWorkload
from repro.workloads.queries import WorkloadQuery


@dataclass
class RunTimes:
    """Virtual end-to-end times of a cold and a warm execution."""

    cold: float
    warm: float
    queries_issued: int
    augmented: int


def make_profile(bundle, deployment: str):
    names = bundle.database_names()
    if deployment == "distributed":
        return distributed_profile(names)
    return centralized_profile(names)


def run_cold_warm(
    bundle,
    query: WorkloadQuery,
    config: AugmentationConfig,
    level: int = 0,
    deployment: str = "centralized",
) -> RunTimes:
    """Cold run (fresh QUEPA instance, empty cache) then warm re-run.

    Mirrors the paper's protocol: the warm time is a subsequent
    execution of the same query on the now-populated cache.
    """
    quepa = Quepa(
        bundle.polystore, bundle.aindex,
        profile=make_profile(bundle, deployment),
    )
    cold = quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )
    warm = quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )
    return RunTimes(
        cold=cold.stats.elapsed,
        warm=warm.stats.elapsed,
        queries_issued=cold.stats.queries_issued,
        augmented=len(cold.augmented),
    )


def average_over_stores(
    bundle,
    size: int,
    config: AugmentationConfig,
    level: int = 0,
    deployment: str = "centralized",
) -> float:
    """Average cold time of one query per engine, as the paper reports
    per-size numbers ('the average execution time of the corresponding
    queries on each target database')."""
    workload = QueryWorkload(bundle)
    times = []
    for query in workload.base_queries(size):
        times.append(
            run_cold_warm(bundle, query, config, level, deployment).cold
        )
    return sum(times) / len(times)
