"""Helpers shared by the figure benchmarks."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import centralized_profile, distributed_profile
from repro.workloads import QueryWorkload
from repro.workloads.queries import WorkloadQuery

#: Machine-readable benchmark outputs (``BENCH_<figure>.json``) land
#: next to the human-readable ``results/*.txt`` files.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@dataclass
class RunTimes:
    """Virtual end-to-end times of a cold and a warm execution.

    ``cold``/``warm`` are deterministic virtual-clock seconds (the
    figures' y-axis); ``cold_wall``/``warm_wall`` are the real seconds
    the harness spent computing them, which is what the perf-trajectory
    JSON tracks across PRs.
    """

    cold: float
    warm: float
    queries_issued: int
    augmented: int
    cold_wall: float = 0.0
    warm_wall: float = 0.0


def make_profile(bundle, deployment: str):
    names = bundle.database_names()
    if deployment == "distributed":
        return distributed_profile(names)
    return centralized_profile(names)


def run_cold_warm(
    bundle,
    query: WorkloadQuery,
    config: AugmentationConfig,
    level: int = 0,
    deployment: str = "centralized",
) -> RunTimes:
    """Cold run (fresh QUEPA instance, empty cache) then warm re-run.

    Mirrors the paper's protocol: the warm time is a subsequent
    execution of the same query on the now-populated cache.
    """
    quepa = Quepa(
        bundle.polystore, bundle.aindex,
        profile=make_profile(bundle, deployment),
    )
    started = time.perf_counter()
    cold = quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )
    cold_done = time.perf_counter()
    warm = quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )
    warm_done = time.perf_counter()
    return RunTimes(
        cold=cold.stats.elapsed,
        warm=warm.stats.elapsed,
        queries_issued=cold.stats.queries_issued,
        augmented=len(cold.augmented),
        cold_wall=cold_done - started,
        warm_wall=warm_done - cold_done,
    )


def write_bench_json(
    figure: str,
    sweeps: list[dict],
    baseline: dict | None = None,
) -> Path:
    """Write ``BENCH_<figure>.json`` next to the ``.txt`` results.

    ``sweeps`` is a list of per-point records, each carrying the sweep
    parameters plus virtual-time and wall-clock numbers. ``baseline``
    optionally records the previous PR's wall-clock for the same sweep,
    so the perf trajectory is visible in one file.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{figure}.json"
    payload: dict = {"figure": figure, "sweeps": sweeps}
    if baseline is not None:
        payload["baseline"] = payload_baseline = dict(baseline)
        after = sum(point.get("warm_wall_s", 0.0) for point in sweeps)
        before = payload_baseline.get("warm_wall_s_total")
        if before and after:
            payload["speedup_warm_wall"] = round(before / after, 2)
    payload["warm_wall_s_total"] = round(
        sum(point.get("warm_wall_s", 0.0) for point in sweeps), 6
    )
    payload["cold_wall_s_total"] = round(
        sum(point.get("cold_wall_s", 0.0) for point in sweeps), 6
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def sweep_point_record(label: dict, times: RunTimes) -> dict:
    """One JSON record: sweep parameters + virtual and wall times."""
    record = dict(label)
    record.update(
        cold_s=round(times.cold, 6),
        warm_s=round(times.warm, 6),
        queries=times.queries_issued,
        augmented=times.augmented,
        cold_wall_s=round(times.cold_wall, 6),
        warm_wall_s=round(times.warm_wall, 6),
    )
    return record


def average_over_stores(
    bundle,
    size: int,
    config: AugmentationConfig,
    level: int = 0,
    deployment: str = "centralized",
) -> float:
    """Average cold time of one query per engine, as the paper reports
    per-size numbers ('the average execution time of the corresponding
    queries on each target database')."""
    workload = QueryWorkload(bundle)
    times = []
    for query in workload.base_queries(size):
        times.append(
            run_cold_warm(bundle, query, config, level, deployment).cold
        )
    return sum(times) / len(times)
