"""Serving benchmark: throughput and tail latency vs concurrent clients.

Not a paper figure — the paper drives QUEPA one query at a time — but
the roadmap's serving layer needs its own evidence: a closed-loop
client fleet (seeded, deterministic scripts) against one shared Quepa
on the *real* runtime with scaled store latencies (``time_scale=1``:
virtual store roundtrips become real, GIL-releasing sleeps, so
concurrency genuinely overlaps them).

Checked claims:

* cold throughput (fresh cache per point, real store roundtrips, a
  shared hot-query pool, coalescing + hedging on) scales *strictly
  better than the 2.59x* the pre-accelerator serving layer recorded
  from 1 to 8 concurrent clients at a fixed total request count
  (closed system, 8 workers);
* no request is shed or failed at any client count (ample queue);
* tail latency is reported (p50/p95/p99) and grows no worse than the
  client count would explain;
* the accelerator's ledgers ride along: each sweep point reports the
  coalesce hit-rate and hedge win-rate it measured;
* the virtual-time guard numbers of Fig 9 stay bit-identical — the
  serving layer must not perturb the deterministic cost model.

Outputs ``results/serving_scaling.txt`` and ``BENCH_serving.json``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import RealRuntime, centralized_profile
from repro.serving import LoadGenerator, QuepaServer, ServingConfig
from repro.workloads import QueryWorkload

from .harness import run_cold_warm, write_bench_json

CLIENT_COUNTS = (1, 2, 4, 8)
TOTAL_REQUESTS = 48  # per sweep point, split across the clients
WORKERS = 8
TIME_SCALE = 1.0
SEED = 17
#: Shared hot-query pool: half the planned requests come from a pool of
#: eight, so concurrent clients issue identical queries at the same
#: time — the workload shape single-flight coalescing exists for.
HOT_QUERIES = 8
HOT_FRACTION = 0.5
#: The 1->8 client scaling the serving layer recorded *before* request
#: coalescing and hedged store calls (committed BENCH_serving.json of
#: the warm, accelerator-free sweep). The rebuilt serving core must
#: strictly beat it.
BASELINE_SCALING = 2.59


def _make_server(bundle):
    profile = centralized_profile(list(bundle.polystore))
    quepa = Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile, time_scale=TIME_SCALE),
    )
    return QuepaServer(
        quepa,
        ServingConfig(
            workers=WORKERS,
            queue_capacity=4 * TOTAL_REQUESTS,
            coalesce=True,
            hedge=True,
        ),
    )


def _sweep_point(bundle, clients: int):
    """One *cold* measured pass at one client count.

    Each point gets a fresh Quepa (own cold cache): requests pay real
    store roundtrips, so concurrency genuinely overlaps them and the
    hot-query pool gives the coalescer identical concurrent fetches to
    share. Returns the load report plus the server's accelerator view.
    """
    per_client = TOTAL_REQUESTS // clients
    workload = QueryWorkload(bundle)
    with _make_server(bundle) as server:
        generator = LoadGenerator(
            server,
            workload,
            sizes=(8, 12),
            levels=(1,),
            seed=SEED,
            hot_queries=HOT_QUERIES,
            hot_fraction=HOT_FRACTION,
        )
        measured = generator.run(clients, per_client)
        status = server.status()
    accelerator = status["accelerator"] or {}
    coalesce = accelerator.get("coalesce") or {}
    hedge = accelerator.get("hedge") or {}
    return measured, coalesce, hedge


def test_serving_throughput_scales_with_clients(benchmark, bundle4, report):
    results = benchmark.pedantic(
        lambda: {
            clients: _sweep_point(bundle4, clients)
            for clients in CLIENT_COUNTS
        },
        rounds=1,
        iterations=1,
    )

    report.section(
        f"Serving: cold QPS + tail latency vs clients "
        f"({WORKERS} workers, time_scale={TIME_SCALE}, "
        f"{TOTAL_REQUESTS} requests/point, coalesce+hedge on, "
        f"hot pool {HOT_QUERIES}@{HOT_FRACTION})"
    )
    for clients, (load, coalesce, hedge) in results.items():
        report.row(
            clients=clients,
            qps=load.qps,
            p50_ms=load.latency_p50 * 1000,
            p95_ms=load.latency_p95 * 1000,
            p99_ms=load.latency_p99 * 1000,
            completed=load.completed,
            shed=load.shed,
            failed=load.failed,
            coalesce_hit=coalesce.get("hit_rate", 0.0),
            hedge_win=hedge.get("win_rate", 0.0),
        )

    # Claim 2: ample queue — nothing shed, nothing failed, no drops.
    for clients, (load, _, _) in results.items():
        assert load.completed == TOTAL_REQUESTS, (
            f"{clients} clients: dropped requests"
        )
        assert load.shed == 0 and load.failed == 0

    # Claim 1: with coalescing + hedging the cold closed-loop curve
    # must scale strictly better 1->8 than the 2.59x the serving layer
    # managed before the accelerator existed.
    scaling = results[8][0].qps / results[1][0].qps
    report.note(f"throughput scaling 1->8 clients: {scaling:.2f}x")
    assert scaling > BASELINE_SCALING, (
        f"expected > {BASELINE_SCALING}x cold throughput scaling with "
        f"the accelerator on, got {scaling:.2f}x "
        f"({results[1][0].qps:.1f} -> {results[8][0].qps:.1f} QPS)"
    )
    # More clients should not *reduce* throughput anywhere on the curve.
    assert results[8][0].qps >= results[2][0].qps * 0.9

    # Claim 3: per-request tail latency stays bounded — in a closed
    # system with as many workers as clients it must not blow up
    # superlinearly with the client count.
    p95_1 = max(results[1][0].latency_p95, 1e-9)
    assert results[8][0].latency_p95 <= p95_1 * 8 * 2.0

    # Claim 4: the accelerator's own ledgers reconcile at every point.
    for clients, (_, coalesce, hedge) in results.items():
        if coalesce:
            shared = coalesce["followers"] + coalesce["leaders"]
            assert shared >= coalesce["leaders"]
            assert coalesce["wait_timeouts"] == 0
        if hedge:
            assert hedge["issued"] == (
                hedge["won"] + hedge["lost"] + hedge["cancelled"]
            )

    sweeps = [
        {
            "clients": clients,
            "workers": WORKERS,
            "time_scale": TIME_SCALE,
            "requests": load.completed,
            "qps": round(load.qps, 3),
            "p50_ms": round(load.latency_p50 * 1000, 3),
            "p95_ms": round(load.latency_p95 * 1000, 3),
            "p99_ms": round(load.latency_p99 * 1000, 3),
            "mean_ms": round(load.latency_mean * 1000, 3),
            "cold_wall_s": round(load.wall_s, 6),
            "coalesce_hit_rate": round(
                coalesce.get("hit_rate", 0.0), 4
            ),
            "coalesce_leaders": coalesce.get("leaders", 0),
            "coalesce_followers": coalesce.get("followers", 0),
            "hedge_win_rate": round(hedge.get("win_rate", 0.0), 4),
            "hedges_issued": hedge.get("issued", 0),
            "hedge_breaker_skips": hedge.get("breaker_skips", 0),
        }
        for clients, (load, coalesce, hedge) in results.items()
    ]
    path = write_bench_json("serving", sweeps)
    report.note(f"QPS/latency sweep written to {path.name}")


# -- the virtual-time guard must hold under the serving layer ---------------

GUARD_RESULTS = (
    Path(__file__).resolve().parent / "results"
    / "fig09_batch_size_sweep.txt"
)
GUARD_POINTS = (("batch", 16), ("outer_batch", 256))
_COLD = re.compile(
    r"augmenter=(\w+)\s+batch_size=(\d+)\s+cold_s=([\d.]+)\s+queries=(\d+)"
)


def test_fig09_guard_numbers_bit_identical(bundle10):
    """Re-assert (inside the benchmark suite) that the committed Fig 9
    virtual-time numbers are untouched: the serving layer adds wall
    clocks and locks, never virtual cost."""
    committed = {}
    for line in GUARD_RESULTS.read_text().splitlines():
        if match := _COLD.search(line):
            augmenter, batch_size, cold_s, queries = match.groups()
            committed[(augmenter, int(batch_size))] = (cold_s, int(queries))
    workload = QueryWorkload(bundle10)
    query = workload.query("transactions", 1000)
    for augmenter, batch_size in GUARD_POINTS:
        expected_cold, expected_queries = committed[(augmenter, batch_size)]
        config = AugmentationConfig(
            augmenter=augmenter, batch_size=batch_size,
            threads_size=4, cache_size=200_000,
        )
        times = run_cold_warm(bundle10, query, config, level=0)
        assert f"{times.cold:.6f}" == expected_cold
        assert times.queries_issued == expected_queries
