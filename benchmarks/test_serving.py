"""Serving benchmark: throughput and tail latency vs concurrent clients.

Not a paper figure — the paper drives QUEPA one query at a time — but
the roadmap's serving layer needs its own evidence: a closed-loop
client fleet (seeded, deterministic scripts) against one shared Quepa
on the *real* runtime with scaled store latencies (``time_scale=1``:
virtual store roundtrips become real, GIL-releasing sleeps, so
concurrency genuinely overlaps them).

Checked claims:

* warm throughput scales at least 2x from 1 to 8 concurrent clients
  at a fixed total request count (closed system, 8 workers);
* no request is shed or failed at any client count (ample queue);
* tail latency is reported (p50/p95/p99) and grows no worse than the
  client count would explain;
* the virtual-time guard numbers of Fig 9 stay bit-identical — the
  serving layer must not perturb the deterministic cost model.

Outputs ``results/serving_scaling.txt`` and ``BENCH_serving.json``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import RealRuntime, centralized_profile
from repro.serving import LoadGenerator, QuepaServer, ServingConfig
from repro.workloads import QueryWorkload

from .harness import run_cold_warm, write_bench_json

CLIENT_COUNTS = (1, 2, 4, 8)
TOTAL_REQUESTS = 48  # per sweep point, split across the clients
WORKERS = 8
TIME_SCALE = 1.0
SEED = 17


def _make_server(bundle):
    profile = centralized_profile(list(bundle.polystore))
    quepa = Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile, time_scale=TIME_SCALE),
    )
    return QuepaServer(
        quepa,
        ServingConfig(workers=WORKERS, queue_capacity=4 * TOTAL_REQUESTS),
    )


def _sweep_point(bundle, clients: int):
    """Warm-up pass then measured pass at one client count.

    Each point gets a fresh Quepa (own cache): the warm-up replays the
    exact scripts the measured pass will issue, so every point measures
    a fully warm cache and the 1-vs-8 comparison is apples to apples.
    """
    per_client = TOTAL_REQUESTS // clients
    workload = QueryWorkload(bundle)
    with _make_server(bundle) as server:
        generator = LoadGenerator(
            server,
            workload,
            sizes=(8, 12),
            levels=(1,),
            seed=SEED,
        )
        warmup = generator.run(clients, per_client)
        measured = generator.run(clients, per_client)
    assert warmup.failed == 0 and warmup.shed == 0
    return measured


def test_serving_throughput_scales_with_clients(benchmark, bundle4, report):
    results = benchmark.pedantic(
        lambda: {
            clients: _sweep_point(bundle4, clients)
            for clients in CLIENT_COUNTS
        },
        rounds=1,
        iterations=1,
    )

    report.section(
        f"Serving: warm QPS + tail latency vs clients "
        f"({WORKERS} workers, time_scale={TIME_SCALE}, "
        f"{TOTAL_REQUESTS} requests/point)"
    )
    for clients, load in results.items():
        report.row(
            clients=clients,
            qps=load.qps,
            p50_ms=load.latency_p50 * 1000,
            p95_ms=load.latency_p95 * 1000,
            p99_ms=load.latency_p99 * 1000,
            completed=load.completed,
            shed=load.shed,
            failed=load.failed,
        )

    # Claim 2: ample queue — nothing shed, nothing failed, no drops.
    for clients, load in results.items():
        assert load.completed == TOTAL_REQUESTS, (
            f"{clients} clients: dropped requests"
        )
        assert load.shed == 0 and load.failed == 0

    # Claim 1: closed-loop throughput scales >= 2x from 1 to 8 clients.
    scaling = results[8].qps / results[1].qps
    report.note(f"throughput scaling 1->8 clients: {scaling:.2f}x")
    assert scaling >= 2.0, (
        f"expected >= 2x warm throughput scaling, got {scaling:.2f}x "
        f"({results[1].qps:.1f} -> {results[8].qps:.1f} QPS)"
    )
    # More clients should not *reduce* throughput anywhere on the curve.
    assert results[8].qps >= results[2].qps * 0.9

    # Claim 3: per-request tail latency stays bounded — in a closed
    # system with as many workers as clients it must not blow up
    # superlinearly with the client count.
    p95_1 = max(results[1].latency_p95, 1e-9)
    assert results[8].latency_p95 <= p95_1 * 8 * 2.0

    sweeps = [
        {
            "clients": clients,
            "workers": WORKERS,
            "time_scale": TIME_SCALE,
            "requests": load.completed,
            "qps": round(load.qps, 3),
            "p50_ms": round(load.latency_p50 * 1000, 3),
            "p95_ms": round(load.latency_p95 * 1000, 3),
            "p99_ms": round(load.latency_p99 * 1000, 3),
            "mean_ms": round(load.latency_mean * 1000, 3),
            "warm_wall_s": round(load.wall_s, 6),
        }
        for clients, load in results.items()
    ]
    path = write_bench_json("serving", sweeps)
    report.note(f"QPS/latency sweep written to {path.name}")


# -- the virtual-time guard must hold under the serving layer ---------------

GUARD_RESULTS = (
    Path(__file__).resolve().parent / "results"
    / "fig09_batch_size_sweep.txt"
)
GUARD_POINTS = (("batch", 16), ("outer_batch", 256))
_COLD = re.compile(
    r"augmenter=(\w+)\s+batch_size=(\d+)\s+cold_s=([\d.]+)\s+queries=(\d+)"
)


def test_fig09_guard_numbers_bit_identical(bundle10):
    """Re-assert (inside the benchmark suite) that the committed Fig 9
    virtual-time numbers are untouched: the serving layer adds wall
    clocks and locks, never virtual cost."""
    committed = {}
    for line in GUARD_RESULTS.read_text().splitlines():
        if match := _COLD.search(line):
            augmenter, batch_size, cold_s, queries = match.groups()
            committed[(augmenter, int(batch_size))] = (cold_s, int(queries))
    workload = QueryWorkload(bundle10)
    query = workload.query("transactions", 1000)
    for augmenter, batch_size in GUARD_POINTS:
        expected_cold, expected_queries = committed[(augmenter, batch_size)]
        config = AugmentationConfig(
            augmenter=augmenter, batch_size=batch_size,
            threads_size=4, cache_size=200_000,
        )
        times = run_cold_warm(bundle10, query, config, level=0)
        assert f"{times.cold:.6f}" == expected_cold
        assert times.queries_issued == expected_queries
