"""Fig 10: batching in the distributed deployment.

Paper setup: QUEPA and each store on separate machines in different
regions (latency up to a few hundred ms). (a, b): sequential vs batch
augmenters over BATCH_SIZE — "the strong boost of the batching compared
to the sequential counterpart"; (c, d): batch augmenters scale better
with larger inputs than the alternatives.

Claims checked:
* batching beats sequential by orders of magnitude when distributed;
* the improvement grows with BATCH_SIZE;
* batching is more effective distributed than centralized;
* at high BATCH_SIZE, BATCH and OUTER-BATCH converge ("the effect of
  batching can dissolve the benefit of multi-threading");
* batch augmenters have the flattest growth over query size.
"""

from __future__ import annotations

from repro.core.augmentation import AugmentationConfig
from repro.workloads import QueryWorkload

from .conftest import QUERY_SIZES
from .harness import run_cold_warm

BATCH_SIZES = (1, 16, 256, 2048)


def test_fig10_distributed_batching(benchmark, bundle10, report):
    workload = QueryWorkload(bundle10)
    query = workload.query("transactions", min(500, max(QUERY_SIZES)))

    def run():
        out = {}
        sequential = AugmentationConfig(
            augmenter="sequential", cache_size=0
        )
        for deployment in ("centralized", "distributed"):
            times = {"sequential": run_cold_warm(
                bundle10, query, sequential, deployment=deployment
            ).cold}
            for name in ("batch", "outer_batch"):
                for batch_size in BATCH_SIZES:
                    config = AugmentationConfig(
                        augmenter=name, batch_size=batch_size,
                        threads_size=4, cache_size=0,
                    )
                    times[(name, batch_size)] = run_cold_warm(
                        bundle10, query, config, deployment=deployment
                    ).cold
            out[deployment] = times
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for deployment, times in results.items():
        report.section(f"Fig 10(a,b): {deployment}")
        report.row(augmenter="sequential", cold_s=times["sequential"])
        for key, value in times.items():
            if isinstance(key, tuple):
                report.row(augmenter=key[0], batch_size=key[1], cold_s=value)

    distributed = results["distributed"]
    centralized = results["centralized"]

    # Claim 1: strong boost vs sequential in the distributed deployment.
    assert distributed["sequential"] > distributed[("batch", 256)] * 20

    # Claim 2: improvement grows with BATCH_SIZE.
    curve = [distributed[("batch", b)] for b in BATCH_SIZES]
    assert curve == sorted(curve, reverse=True)

    # Claim 3: batching helps relatively more when distributed.
    gain_distributed = distributed["sequential"] / distributed[("batch", 256)]
    gain_centralized = centralized["sequential"] / centralized[("batch", 256)]
    assert gain_distributed > gain_centralized

    # Claim 4: BATCH and OUTER-BATCH converge at high BATCH_SIZE.
    big = BATCH_SIZES[-1]
    ratio = distributed[("batch", big)] / distributed[("outer_batch", big)]
    small_ratio = (
        distributed[("batch", 1)] / distributed[("outer_batch", 1)]
    )
    assert ratio < small_ratio
    assert ratio < 3.5

    report.note(
        "shape-checks passed: batching boost, growth with BATCH_SIZE, "
        "stronger effect when distributed, convergence at high BATCH_SIZE"
    )


def test_fig10_scalability_with_input(benchmark, bundle10, report):
    """Fig 10(c,d): growth over query size, distributed deployment."""
    workload = QueryWorkload(bundle10)
    sizes = QUERY_SIZES
    configs = {
        "sequential": AugmentationConfig(augmenter="sequential", cache_size=0),
        "outer": AugmentationConfig(
            augmenter="outer", threads_size=4, cache_size=0
        ),
        "batch": AugmentationConfig(
            augmenter="batch", batch_size=256, cache_size=0
        ),
        "outer_batch": AugmentationConfig(
            augmenter="outer_batch", batch_size=256, threads_size=4,
            cache_size=0,
        ),
    }

    def run():
        out = {}
        for name, config in configs.items():
            out[name] = {
                size: run_cold_warm(
                    bundle10, workload.query("transactions", size),
                    config, deployment="distributed",
                ).cold
                for size in sizes
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("Fig 10(c,d): time vs query size (distributed)")
    for name, curve in results.items():
        for size, value in curve.items():
            report.row(augmenter=name, size=size, cold_s=value)

    # Batch augmenters scale best: smallest relative growth small->large.
    def growth(name):
        return results[name][sizes[-1]] / results[name][sizes[0]]

    assert results["batch"][sizes[-1]] < results["sequential"][sizes[-1]]
    assert results["outer_batch"][sizes[-1]] < results["outer"][sizes[-1]]
    assert growth("batch") <= growth("sequential") * 1.2
    # And batch stays orders of magnitude below sequential at every size.
    for size in sizes:
        assert results["outer_batch"][size] < results["sequential"][size]
    report.note("batch augmenters show the flattest growth over input size")
