"""Fig 12: quality of the adaptive optimization.

Paper protocol (Section VII-C): generate queries not present in the
training set; run each on several polystore variants at levels 0 and 1.
For each run there are 13 candidate executions: 1 chosen by ADAPTIVE,
6 with the HUMAN-expert parameters (one per augmenter) and 6 with
RANDOM parameters (one per augmenter). Fig 12(a) counts how often each
optimizer produced the overall-best run; Fig 12(b) counts how often the
ADAPTIVE run landed in the top-1/2/3/5 of the 13.

Claims checked:
* ADAPTIVE wins the most head-to-heads despite having six times fewer
  candidates;
* the ADAPTIVE run is always within the top-5.

Scale note: the paper trains on ~2M logged runs; we train on a few
hundred (the grid below) — enough for the trees to learn the same
split structure.
"""

from __future__ import annotations

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.core.augmenters import available_augmenters
from repro.network import centralized_profile, distributed_profile
from repro.optimizer import (
    AdaptiveOptimizer,
    HumanOptimizer,
    RandomOptimizer,
    RunLogRepository,
)
from repro.workloads import QueryWorkload

from .conftest import get_bundle

TRAIN_CONFIGS = [
    AugmentationConfig("sequential", 1, 1, 4096),
    AugmentationConfig("batch", 16, 1, 4096),
    AugmentationConfig("batch", 256, 1, 4096),
    AugmentationConfig("inner", 1, 8, 4096),
    AugmentationConfig("outer", 1, 4, 4096),
    AugmentationConfig("outer", 1, 16, 4096),
    AugmentationConfig("outer_batch", 64, 4, 4096),
    AugmentationConfig("outer_batch", 256, 16, 4096),
    AugmentationConfig("outer_inner", 1, 8, 4096),
]

TRAIN_SIZES = (5, 40, 200, 600)
EVAL_SIZES = (10, 100, 400)
STORE_VARIANTS = (4, 7)
LEVELS = (0, 1)


def make_quepa(bundle, deployment: str, optimizer=None) -> Quepa:
    names = bundle.database_names()
    profile = (
        distributed_profile(names)
        if deployment == "distributed"
        else centralized_profile(names)
    )
    return Quepa(bundle.polystore, bundle.aindex, profile=profile,
                 optimizer=optimizer)


def collect_logs() -> RunLogRepository:
    logs = RunLogRepository()
    for stores in STORE_VARIANTS:
        bundle = get_bundle(stores)
        workload = QueryWorkload(bundle)
        for deployment in ("centralized", "distributed"):
            for size in TRAIN_SIZES:
                for database in ("transactions", "catalogue"):
                    query = workload.query(database, size)
                    for level in LEVELS:
                        if level == 1 and size > 200:
                            continue  # keep the grid affordable
                        for config in TRAIN_CONFIGS:
                            # Fresh instance per run: training labels
                            # must be cold-cache times, not polluted by
                            # the previous configuration's cache.
                            quepa = make_quepa(bundle, deployment)
                            quepa.run_listeners.append(logs)
                            quepa.augmented_search(
                                query.database, query.query,
                                level=level, config=config,
                            )
    return logs


def run_campaign(optimizer: AdaptiveOptimizer):
    """25 unseen queries x store variants x levels, 13 candidates each."""
    human = HumanOptimizer()
    rng_random = RandomOptimizer(seed=77)
    augmenters = available_augmenters()
    wins = {"ADAPTIVE": 0, "HUMAN": 0, "RANDOM": 0}
    top_counts = {1: 0, 2: 0, 3: 0, 5: 0}
    scenarios = 0
    queries = [
        (database, size, variant)
        for database in ("transactions", "catalogue")
        for size in EVAL_SIZES
        for variant in (3, 4, 5, 6)
    ][:25]
    for stores in STORE_VARIANTS:
        bundle = get_bundle(stores)
        workload = QueryWorkload(bundle)
        for level in LEVELS:
            for database, size, variant in queries:
                if level == 1 and size > 100:
                    continue
                query = workload.query(database, size, variant)
                deployment = "distributed" if variant % 2 else "centralized"
                candidates: list[tuple[str, float]] = []

                tuned = make_quepa(bundle, deployment, optimizer=optimizer)
                answer = tuned.augmented_search(
                    query.database, query.query, level=level
                )
                candidates.append(("ADAPTIVE", answer.stats.elapsed))

                features_config = {
                    "HUMAN": human.configure(
                        tuned.last_record.features, 4096
                    ),
                    "RANDOM": rng_random.configure(
                        tuned.last_record.features, 4096
                    ),
                }
                for label, base in features_config.items():
                    for augmenter in augmenters:
                        config = AugmentationConfig(
                            augmenter=augmenter,
                            batch_size=base.batch_size,
                            threads_size=base.threads_size,
                            cache_size=base.cache_size,
                        )
                        # Fresh instance per candidate: every run is a
                        # cold-cache run, like the ADAPTIVE one.
                        plain = make_quepa(bundle, deployment)
                        run = plain.augmented_search(
                            query.database, query.query,
                            level=level, config=config,
                        )
                        candidates.append((label, run.stats.elapsed))

                ranked = sorted(candidates, key=lambda pair: pair[1])
                wins[ranked[0][0]] += 1
                adaptive_rank = 1 + next(
                    i for i, (label, __) in enumerate(ranked)
                    if label == "ADAPTIVE"
                )
                for k in top_counts:
                    if adaptive_rank <= k:
                        top_counts[k] += 1
                scenarios += 1
    return wins, top_counts, scenarios


def test_fig12_optimizer_quality(benchmark, report):
    def run():
        logs = collect_logs()
        optimizer = AdaptiveOptimizer(logs)
        training = optimizer.train()
        return training, run_campaign(optimizer)

    training, (wins, top_counts, scenarios) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report.section("training")
    report.row(
        runs=training.runs,
        signatures=training.signatures,
        t1_accuracy=training.t1_accuracy,
    )
    report.section("Fig 12(a): number of times each optimizer is best")
    for label, count in wins.items():
        report.row(optimizer=label, wins=count)
    report.section("Fig 12(b): ADAPTIVE run in top-k of the 13 candidates")
    for k, count in sorted(top_counts.items()):
        report.row(top=k, count=count, of=scenarios)

    # Claim 1: ADAPTIVE is best most often despite 1 candidate vs 6+6.
    assert wins["ADAPTIVE"] >= wins["HUMAN"]
    assert wins["ADAPTIVE"] >= wins["RANDOM"]

    # Claim 2: ADAPTIVE always finds a good configuration (top-5).
    assert top_counts[5] == scenarios
    assert top_counts[3] >= scenarios * 0.8

    report.note(
        "ADAPTIVE wins the most scenarios and is always within the top-5"
    )
