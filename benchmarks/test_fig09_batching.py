"""Fig 9: scalability of augmentation with batching.

Paper setup: queries with 10,000 results on a 10-store centralized
polystore; BATCH and OUTER-BATCH swept over BATCH_SIZE (log x-axis),
THREADS_SIZE=4; (a) cold cache at level 0, (b) warm cache at level 1.

Claims checked:
* execution time drops as BATCH_SIZE grows, then plateaus;
* BATCH is more sensitive to BATCH_SIZE than OUTER-BATCH (which also
  profits from its threads);
* the multi-threading advantage of OUTER-BATCH fades on warm runs.
"""

from __future__ import annotations

from repro.core.augmentation import AugmentationConfig
from repro.workloads import QueryWorkload

from .conftest import QUERY_SIZES
from .harness import run_cold_warm, sweep_point_record, write_bench_json

BATCH_SIZES = (1, 4, 16, 64, 256, 1024, 4096)

#: Wall-clock of the same sweep measured at the previous PR's HEAD
#: (c2101a1) on the same machine, recorded so ``BENCH_fig09.json``
#: carries the before/after perf trajectory. The *virtual* times are
#: identical across the two revisions by construction (the guard in
#: ``tests/test_benchmark_guard.py`` pins them); only the real seconds
#: spent computing them moved.
BASELINE_WALL = {
    "commit": "c2101a1",
    "warm_wall_s_total": 3.612,
    "cold_wall_s_total": 5.512,
}


def sweep(bundle, augmenter: str, level: int):
    workload = QueryWorkload(bundle)
    query = workload.query("transactions", max(QUERY_SIZES))
    curve = {}
    for batch_size in BATCH_SIZES:
        config = AugmentationConfig(
            augmenter=augmenter,
            batch_size=batch_size,
            threads_size=4,
            cache_size=200_000,
        )
        curve[batch_size] = run_cold_warm(bundle, query, config, level=level)
    return curve


def test_fig09_batch_size_sweep(benchmark, bundle10, report):
    results = benchmark.pedantic(
        lambda: {
            name: sweep(bundle10, name, level)
            for name, level in (
                ("batch", 0),
                ("outer_batch", 0),
            )
        },
        rounds=1,
        iterations=1,
    )

    report.section("Fig 9(a): cold cache, level 0 (centralized, 10 stores)")
    for name, curve in results.items():
        for batch_size, times in curve.items():
            report.row(
                augmenter=name, batch_size=batch_size,
                cold_s=times.cold, queries=times.queries_issued,
            )
    report.section("Fig 9(b): warm cache, level 0")
    for name, curve in results.items():
        for batch_size, times in curve.items():
            report.row(augmenter=name, batch_size=batch_size,
                       warm_s=times.warm)

    batch = results["batch"]
    outer_batch = results["outer_batch"]

    # Claim 1: batching reduces cold time massively, then plateaus.
    assert batch[1].cold > batch[4096].cold * 5
    assert outer_batch[1].cold > outer_batch[4096].cold * 2
    tail_ratio = batch[1024].cold / batch[4096].cold
    assert tail_ratio < 3.0, "curve should flatten at large BATCH_SIZE"

    # Claim 2: BATCH is more sensitive to BATCH_SIZE than OUTER-BATCH
    # (OUTER-BATCH's threads already hide part of the roundtrips), read
    # as in the figure: the BATCH curve spans a larger absolute range.
    batch_span = batch[1].cold - batch[4096].cold
    outer_span = outer_batch[1].cold - outer_batch[4096].cold
    assert batch_span > outer_span

    # Claim 3: at small BATCH_SIZE the threads give OUTER-BATCH the edge.
    assert outer_batch[1].cold < batch[1].cold

    # Claim 4: warm runs are much cheaper and the threading effect of
    # OUTER-BATCH "tends to vanish" (the two augmenters converge).
    assert batch[64].warm < batch[64].cold
    cold_gap = batch[256].cold / outer_batch[256].cold
    warm_gap = max(
        batch[256].warm / max(outer_batch[256].warm, 1e-9), 1.0
    )
    assert warm_gap < cold_gap or warm_gap < 1.5

    report.note(
        "shape-checks passed: batching monotone + plateau, BATCH more "
        "sensitive than OUTER-BATCH, threading advantage fades when warm"
    )

    sweeps = [
        sweep_point_record(
            {"augmenter": name, "batch_size": batch_size, "level": 0},
            times,
        )
        for name, curve in results.items()
        for batch_size, times in curve.items()
    ]
    path = write_bench_json("fig09", sweeps, baseline=BASELINE_WALL)
    report.note(f"wall-clock trajectory written to {path.name}")


def test_fig09_warm_level1(benchmark, bundle10, report):
    """Fig 9(b)'s level-1 component: warm cache pays off most when
    augmented results overlap (level > 0)."""
    workload = QueryWorkload(bundle10)
    query = workload.query("transactions", min(500, max(QUERY_SIZES)))

    def run():
        out = {}
        for batch_size in (16, 256):
            config = AugmentationConfig(
                augmenter="batch", batch_size=batch_size,
                threads_size=4, cache_size=500_000,
            )
            out[batch_size] = run_cold_warm(
                bundle10, query, config, level=1
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("Fig 9(b): level 1, cold vs warm (batch)")
    for batch_size, times in results.items():
        report.row(batch_size=batch_size, cold_s=times.cold,
                   warm_s=times.warm, augmented=times.augmented)
    for times in results.values():
        assert times.warm < times.cold / 3
    report.note("warm level-1 runs are dominated by cache hits")
