"""Observability overhead guard: the flight recorder must be ~free.

Two claims, each cheap enough for CI:

* **Wall clock** — serving an identical deterministic workload with the
  flight recorder attached costs less than 5% over running with it
  detached (plus a small absolute slack so sub-second baselines don't
  turn scheduler jitter into failures). Min-of-repeats on both sides —
  the minimum is the noise-free estimate of the code path's cost.
* **Virtual time** — tracing and recorder reads never charge the
  virtual clock: an augmented search observed into a recorder (spans
  folded into a breakdown, digest retained) reports bit-identical
  ``stats.elapsed`` to an undisturbed run. The tier-1 fig09 guard pins
  the same property against the committed seed results; this point
  asserts it with the recorder actually in the loop.

Outputs ``results/observability_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.core import Quepa
from repro.network import RealRuntime, centralized_profile
from repro.obs import FlightRecorder, RequestDigest, latency_breakdown
from repro.serving import QuepaServer, ServingConfig
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

from .conftest import RESULTS_DIR

REPEATS = 3
REQUESTS = 96
WORKERS = 4
#: Tolerated recorder cost: 5% of the detached baseline, floored at
#: 50ms so sub-second baselines don't fail on scheduler noise.
RELATIVE_SLACK = 0.05
ABSOLUTE_SLACK = 0.05


def _bundle():
    return build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=120), seed=7
    )


def _script(bundle):
    """A deterministic request mix: 3 databases x 2 levels, repeated."""
    workload = QueryWorkload(bundle)
    queries = [
        ("transactions", workload.query("transactions", 40, variant=1).query),
        ("catalogue", workload.query("catalogue", 40, variant=2).query),
        ("discount", workload.query("discount", 40, variant=0).query),
    ]
    plan = []
    for i in range(REQUESTS):
        database, query = queries[i % len(queries)]
        plan.append((database, query, i % 2))
    return plan

def _drive(bundle, flight_recorder: bool) -> tuple[float, int]:
    """Serve the scripted workload once; returns (wall_s, digests_kept)."""
    profile = centralized_profile(list(bundle.polystore))
    quepa = Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )
    config = ServingConfig(
        workers=WORKERS,
        queue_capacity=REQUESTS,  # open-loop submit: nothing may shed
        flight_recorder=flight_recorder,
    )
    with QuepaServer(quepa, config) as server:
        started = time.perf_counter()
        tickets = [
            server.submit_search(f"s{i % 4}", database, query, level=level)
            for i, (database, query, level) in enumerate(_script(bundle))
        ]
        for ticket in tickets:
            ticket.result(60.0)
        elapsed = time.perf_counter() - started
        kept = len(server.records())
    return elapsed, kept


def test_flight_recorder_wall_clock_overhead(capsys):
    bundle = _bundle()
    detached = []
    attached = []
    kept = 0
    for _ in range(REPEATS):
        detached.append(_drive(bundle, flight_recorder=False)[0])
        wall, run_kept = _drive(bundle, flight_recorder=True)
        attached.append(wall)
        kept = max(kept, run_kept)
    base, with_recorder = min(detached), min(attached)
    budget = base * (1.0 + RELATIVE_SLACK) + ABSOLUTE_SLACK

    lines = [
        f"requests={REQUESTS} workers={WORKERS} repeats={REPEATS}",
        f"recorder_detached_s={base:.4f}",
        f"recorder_attached_s={with_recorder:.4f}",
        f"overhead={(with_recorder / base - 1.0) * 100.0:+.2f}%"
        f" (budget {RELATIVE_SLACK * 100.0:.0f}% + {ABSOLUTE_SLACK}s)",
        f"digests_kept={kept}",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "observability_overhead.txt").write_text(
        "\n".join(lines) + "\n"
    )
    with capsys.disabled():
        print("\n" + "\n".join(lines))

    # The attached runs must have produced digests — otherwise the guard
    # would be comparing the recorder against itself switched off.
    assert kept > 0
    assert with_recorder <= budget, (
        f"flight recorder overhead {with_recorder - base:.4f}s over a "
        f"{base:.4f}s baseline exceeds the {budget - base:.4f}s budget"
    )


def test_virtual_elapsed_bit_identical_with_recorder_observing():
    bundle = _bundle()
    query = QueryWorkload(bundle).query("transactions", 40, variant=1).query

    plain = Quepa(bundle.polystore, bundle.aindex)
    baseline_cold = plain.augmented_search(
        "transactions", query, level=1
    ).stats.elapsed
    baseline_warm = plain.augmented_search(
        "transactions", query, level=1
    ).stats.elapsed

    observed = Quepa(bundle.polystore, bundle.aindex)
    recorder = FlightRecorder(slow_threshold=1e-12)
    elapsed = []
    for request_id in (1, 2):
        answer = observed.augmented_search("transactions", query, level=1)
        elapsed.append(answer.stats.elapsed)
        retained = recorder.observe(
            RequestDigest(
                trace_id=f"t-{request_id:06d}",
                request_id=request_id,
                session="bench",
                kind="search",
                priority="interactive",
                status="completed",
                latency_s=answer.stats.elapsed,
                breakdown=latency_breakdown(observed.obs.tracer.spans()),
            )
        )
        assert retained
    assert elapsed[0] == baseline_cold
    assert elapsed[1] == baseline_warm
    assert recorder.records()[0].breakdown["store_calls"] > 0
