"""Ablations of QUEPA design choices called out in DESIGN.md.

1. Insert-time materialization of the Consistency Condition (Section
   III-C) vs leaving the index un-closed: with materialization, a
   level-0 plan already sees the whole identity clique; without it the
   same reachability needs deeper (and slower) traversals.
2. Promotion of p-relations (Section III-D.a): after promotion, the
   endpoint of a popular exploration path is reachable in one step.
3. Connector batch fetch vs per-object fetch at equal answer quality
   (complements Figs 9/10 with a direct head-to-head at fixed size).
"""

from __future__ import annotations

import time

from repro.core import Quepa
from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation, AugmentationConfig
from repro.core.promotion import PathRepository, PromotionPolicy
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation
from repro.workloads import QueryWorkload

from .harness import run_cold_warm


def build_chain_indexes(entities: int = 300, stores: int = 6):
    """Same p-relations, one index closed at insert, one left raw."""
    closed = AIndex(enforce_consistency=True)
    raw = AIndex(enforce_consistency=False)
    for entity in range(entities):
        keys = [
            GlobalKey(f"db{s}", "c", f"e{entity}") for s in range(stores)
        ]
        # A spanning chain of identities; closure makes it a clique.
        for left, right in zip(keys, keys[1:]):
            relation = PRelation.identity(left, right, 0.95)
            closed.add(relation)
            raw.add(relation)
    return closed, raw


def test_ablation_insert_time_materialization(benchmark, report):
    closed, raw = benchmark.pedantic(
        build_chain_indexes, rounds=1, iterations=1
    )
    seeds = [GlobalKey("db0", "c", f"e{i}") for i in range(300)]

    started = time.perf_counter()
    closed_plan = Augmentation(closed).plan(seeds, level=0)
    closed_time = time.perf_counter() - started

    started = time.perf_counter()
    # The raw index needs level = stores-2 to reach the same objects.
    raw_plan = Augmentation(raw).plan(seeds, level=4)
    raw_time = time.perf_counter() - started

    report.section("insert-time closure vs query-time traversal")
    report.row(index="materialized", level=0,
               fetches=closed_plan.total_fetches(),
               edges=closed_plan.edges_examined, plan_s=closed_time)
    report.row(index="raw", level=4, fetches=raw_plan.total_fetches(),
               edges=raw_plan.edges_examined, plan_s=raw_time)

    # Same reachability...
    assert closed_plan.total_fetches() == raw_plan.total_fetches()
    # ...but the materialized index reaches it at level 0, and the raw
    # traversal examines at least as many edges.
    assert raw_plan.edges_examined >= closed_plan.edges_examined
    # Storage trade-off: the clique holds more edges than the chain.
    assert closed.edge_count() > raw.edge_count()
    report.note("closure trades index size for single-hop planning")


def test_ablation_promotion_shortcuts(benchmark, bundle4, report):
    def run():
        aindex = bundle4.aindex
        policy = PromotionPolicy(base=4, min_visits=2)
        paths = PathRepository(aindex, policy)
        # Walk two matching hops of the generated index: transactions
        # entity 0 -> catalogue entity 1 -> similar entity 2. The
        # endpoint is not a direct neighbour of the start.
        start = bundle4.entity_key("transactions", 0)
        middle = bundle4.entity_key("catalogue", 1)
        end = bundle4.entity_key("similar", 2)
        walk = (start, middle, end)
        before = Augmentation(aindex).plan([start], level=0)
        before_reaches = any(f.key == end for f in
                             before.fetches_by_seed[start])
        promoted = None
        for __ in range(policy.threshold(2)):
            promoted = paths.record_path(walk) or promoted
        after = Augmentation(aindex).plan([start], level=0)
        after_reaches = any(f.key == end for f in
                            after.fetches_by_seed[start])
        # Clean up the promoted edge so other benches see the original
        # index (bundles are session-shared).
        if promoted is not None:
            aindex.remove_relation(promoted.left, promoted.right)
        return before_reaches, promoted, after_reaches

    before_reaches, promoted, after_reaches = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report.section("promotion on/off: one-step reachability of a "
                   "popular path's endpoint")
    report.row(before=before_reaches, promoted=promoted is not None,
               after=after_reaches)
    assert not before_reaches
    assert promoted is not None
    assert after_reaches
    report.note("promotion turns a 2-step walk into a 1-step link")


def test_ablation_frozen_index_planning(benchmark, bundle10, report):
    """Future work VIII: a compressed, read-only A' index snapshot.

    Planning over the CSR snapshot must return identical plans; the
    figure records the relative planning speed and snapshot properties.
    """
    from repro.core.compressed import FrozenAIndex

    seeds = [bundle10.entity_key("transactions", i) for i in range(200)]

    def run():
        frozen = FrozenAIndex.freeze(bundle10.aindex)
        live_planner = Augmentation(bundle10.aindex)
        frozen_planner = Augmentation(frozen)  # duck-typed index

        started = time.perf_counter()
        live_plan = live_planner.plan(seeds, level=1)
        live_time = time.perf_counter() - started

        started = time.perf_counter()
        frozen_plan = frozen_planner.plan(seeds, level=1)
        frozen_time = time.perf_counter() - started
        return live_plan, live_time, frozen_plan, frozen_time

    live_plan, live_time, frozen_plan, frozen_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report.section("live dict index vs frozen CSR snapshot (level-1 plan)")
    report.row(index="live", fetches=live_plan.total_fetches(),
               plan_s=live_time)
    report.row(index="frozen", fetches=frozen_plan.total_fetches(),
               plan_s=frozen_time)
    assert frozen_plan.total_fetches() == live_plan.total_fetches()
    live_keys = {
        (str(s), str(f.key)) for s, fs in live_plan.fetches_by_seed.items()
        for f in fs
    }
    frozen_keys = {
        (str(s), str(f.key)) for s, fs in frozen_plan.fetches_by_seed.items()
        for f in fs
    }
    assert frozen_keys == live_keys
    report.note("identical plans from the read-only snapshot")


def test_ablation_batch_fetch_vs_single(benchmark, bundle7, report):
    workload = QueryWorkload(bundle7)
    query = workload.query("catalogue", 200)

    def run():
        single = run_cold_warm(
            bundle7, query,
            AugmentationConfig(augmenter="sequential", cache_size=0),
        )
        batched = run_cold_warm(
            bundle7, query,
            AugmentationConfig(augmenter="batch", batch_size=256,
                               cache_size=0),
        )
        return single, batched

    single, batched = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("connector batch fetch vs per-object fetch")
    report.row(mode="single", cold_s=single.cold,
               queries=single.queries_issued, answer=single.augmented)
    report.row(mode="batched", cold_s=batched.cold,
               queries=batched.queries_issued, answer=batched.augmented)
    assert batched.augmented == single.augmented  # same answer
    assert batched.queries_issued < single.queries_issued / 10
    assert batched.cold < single.cold / 3
    report.note("identical answers, an order of magnitude fewer queries")
