"""Sharding benchmark: placement trade-offs and scatter-gather speedup.

Sweeps shards {1, 2, 4} x placement {hash, range} over two workloads on
a 7-store centralized polystore:

* **entity-lookup** — a 1,000-result query augmented at level 1 with the
  BATCH augmenter: the fetch path is per-key ``multi_get`` routing, the
  augmentation hot path. Hash placement routes each key to exactly its
  owning shard (per-lookup fan-out 1) and the parallel scatter turns
  per-shard service time into concurrent work; range placement must
  probe every shard per key (fan-out = shards), the documented cost of
  token-based placement.
* **range-scan** — windowed native queries: range placement prunes the
  partitions whose token interval cannot overlap the window, hash
  placement has no window knowledge and scans every partition.

Acceptance floor asserted below: hash entity-lookup aggregate
throughput improves >= 1.5x from 1 to 4 shards, and per-lookup fan-out
stays 1 under hash vs = shards under range.
"""

from __future__ import annotations

import time

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import centralized_profile
from repro.sharding import shard_aindex, shard_polystore
from repro.workloads import QueryWorkload

from .harness import write_bench_json

SHARD_COUNTS = (1, 2, 4)
PLACEMENTS = ("hash", "range")
LOOKUP_SIZE = 1_000
SCAN_WINDOWS = ((0, 100), (200, 300), (700, 800))

CONFIG = AugmentationConfig(augmenter="batch", batch_size=4096)


def _sharded_quepa(bundle, shards: int, placement: str):
    polystore = shard_polystore(
        bundle.polystore, shards=shards, placement=placement
    )
    aindex = (
        shard_aindex(bundle.aindex, shards=shards) if shards > 1
        else bundle.aindex
    )
    profile = centralized_profile(bundle.database_names())
    return Quepa(polystore, aindex, profile=profile), polystore


def _entity_lookup(bundle, quepa, level: int = 1):
    """One cold augmented entity-lookup query; virtual + wall times."""
    workload = QueryWorkload(bundle)
    query = workload.query("transactions", LOOKUP_SIZE)
    started = time.perf_counter()
    answer = quepa.augmented_search(
        query.database, query.query, level=level, config=CONFIG
    )
    wall = time.perf_counter() - started
    return answer, wall


def _per_lookup_fanout(polystore, bundle) -> float:
    """Mean shards probed per single-key lookup, from pure routing."""
    store = polystore.database("transactions")
    frozen = bundle.aindex.frozen()
    sampled = [
        key for key in frozen.nodes() if key.database == "transactions"
    ][:50]
    fanouts = [
        store.route_keys([key]).per_key_fanout for key in sampled
    ]
    return sum(fanouts) / len(fanouts)


def _range_scan(polystore) -> dict:
    """Windowed native scans; how many partitions ran vs were pruned."""
    store = polystore.database("transactions")
    before_scanned = store.partitions_scanned_total
    before_pruned = store.partitions_pruned_total
    rows = 0
    for lo, hi in SCAN_WINDOWS:
        rows += len(
            store.execute(
                f"SELECT * FROM inventory WHERE seq >= {lo} AND seq < {hi}"
            )
        )
    return {
        "rows": rows,
        "scanned": store.partitions_scanned_total - before_scanned,
        "pruned": store.partitions_pruned_total - before_pruned,
    }


def test_sharding_sweep(benchmark, bundle7, report):
    def run():
        points = []
        for placement in PLACEMENTS:
            for shards in SHARD_COUNTS:
                quepa, polystore = _sharded_quepa(
                    bundle7, shards, placement
                )
                answer, wall = _entity_lookup(bundle7, quepa)
                scan = _range_scan(polystore)
                points.append({
                    "placement": placement,
                    "shards": shards,
                    "workload": "entity_lookup",
                    "cold_s": round(answer.stats.elapsed, 6),
                    "cold_wall_s": round(wall, 6),
                    "queries": answer.stats.queries_issued,
                    "augmented": len(answer.augmented),
                    "throughput_objs_per_s": round(
                        LOOKUP_SIZE / answer.stats.elapsed, 2
                    ),
                    "per_lookup_fanout": round(
                        _per_lookup_fanout(polystore, bundle7), 3
                    ),
                    "scan_rows": scan["rows"],
                    "scan_partitions_scanned": scan["scanned"],
                    "scan_partitions_pruned": scan["pruned"],
                })
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(p["placement"], p["shards"]): p for p in points}

    report.section(
        f"entity-lookup (size {LOOKUP_SIZE}, level 1, batch/4096) "
        "and windowed scans, 7 stores"
    )
    for point in points:
        report.row(**point)

    # Claim 1: hash placement routes every entity lookup to exactly its
    # owning shard; range placement must probe all of them.
    for shards in SHARD_COUNTS:
        assert by[("hash", shards)]["per_lookup_fanout"] == 1.0
        assert by[("range", shards)]["per_lookup_fanout"] == float(shards)

    # Claim 2 (acceptance floor): parallel scatter-gather buys >= 1.5x
    # aggregate entity-lookup throughput from 1 to 4 hash shards.
    speedup = (
        by[("hash", 4)]["throughput_objs_per_s"]
        / by[("hash", 1)]["throughput_objs_per_s"]
    )
    report.note(f"hash entity-lookup throughput 1->4 shards: {speedup:.2f}x")
    assert speedup >= 1.5, f"scatter speedup {speedup:.2f}x below 1.5x floor"

    # Claim 3: windowed scans prune partitions only under range
    # placement (token intervals); hash placement scans everything.
    for shards in (2, 4):
        assert by[("range", shards)]["scan_partitions_pruned"] > 0
        assert by[("hash", shards)]["scan_partitions_pruned"] == 0
        assert by[("hash", shards)]["scan_partitions_scanned"] == (
            shards * len(SCAN_WINDOWS)
        )

    # Claim 4: every configuration returns the same answer set sizes
    # (physical partitioning never changes the answer).
    sizes = {
        (p["augmented"], p["queries"] > 0, p["scan_rows"]) for p in points
    }
    assert len({(a, r) for a, __, r in sizes}) == 1

    path = write_bench_json("sharding", points)
    report.note(f"sweep written to {path.name}")


def test_sharding_smoke_two_shards(bundle7, report):
    """Fast CI smoke: a 2-shard hash deployment answers exactly like the
    unsharded system and routes entity lookups with fan-out 1."""
    plain = Quepa(
        bundle7.polystore, bundle7.aindex,
        profile=centralized_profile(bundle7.database_names()),
    )
    quepa, polystore = _sharded_quepa(bundle7, 2, "hash")
    workload = QueryWorkload(bundle7)
    query = workload.query("transactions", 100)

    expected = plain.augmented_search(
        query.database, query.query, level=1, config=CONFIG
    )
    answer = quepa.augmented_search(
        query.database, query.query, level=1, config=CONFIG
    )
    assert {str(o.key) for o in answer.originals} == {
        str(o.key) for o in expected.originals
    }
    assert {
        (str(o.key), round(o.probability, 12)) for o in answer.augmented
    } == {
        (str(o.key), round(o.probability, 12)) for o in expected.augmented
    }
    assert _per_lookup_fanout(polystore, bundle7) == 1.0
    report.row(
        shards=2, placement="hash",
        originals=len(answer.originals), augmented=len(answer.augmented),
    )
    report.note("2-shard smoke: answers identical, per-lookup fan-out 1")
