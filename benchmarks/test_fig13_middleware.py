"""Fig 13: comparison with middleware approaches.

Paper setup: QUEPA with its ADAPTIVE default vs Apache Metamodel
(META-NAT native joins / META-AUG simulated augmentation), Talend
(TALEND) and ArangoDB (ARANGO-NAT single AQL query / ARANGO-AUG), all
in default configuration. (a, b): scalability over query size on a
~10-store polystore, log-log; (c, d): scalability over the number of
databases. Red 'X' marks out-of-memory runs.

Claims checked:
* QUEPA is the most performing at every point;
* the ArangoDB variants pay a heavy warm-up and OOM as the polystore
  grows;
* META-NAT goes out of memory at scale, META-AUG scales like QUEPA
  (linear, constant factor slower);
* TALEND shows the steepest slope over query size.
"""

from __future__ import annotations

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.middleware import EtlWorkflow, FederatedMiddleware, MultiModelStore
from repro.network import centralized_profile
from repro.workloads import QueryWorkload

from .conftest import N_ALBUMS, QUERY_SIZES, get_bundle

#: Middleware memory budget in objects — sized so in-memory imports fit
#: the small variants and break on the large ones, like the paper's RAM.
MEMORY_BUDGET = int(N_ALBUMS * 36)


def quepa_time(bundle, query, level: int) -> float:
    profile = centralized_profile(bundle.database_names())
    quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
    # QUEPA's default: the well-performing configuration ADAPTIVE
    # converges to for large answers (trained in fig12; fixed here to
    # keep the figures independent).
    config = AugmentationConfig(
        augmenter="outer_batch", batch_size=256, threads_size=8,
        cache_size=4096,
    )
    answer = quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )
    return answer.stats.elapsed


def middleware_systems(bundle):
    profile = centralized_profile(bundle.database_names())
    return [
        FederatedMiddleware(bundle, profile, mode="native",
                            memory_budget=MEMORY_BUDGET),
        FederatedMiddleware(bundle, profile, mode="augmented",
                            memory_budget=MEMORY_BUDGET),
        EtlWorkflow(bundle, profile, memory_budget=MEMORY_BUDGET),
        MultiModelStore(bundle, profile, mode="native",
                        memory_budget=MEMORY_BUDGET),
        MultiModelStore(bundle, profile, mode="augmented",
                        memory_budget=MEMORY_BUDGET),
    ]


def test_fig13_query_size_scalability(benchmark, bundle10, report):
    """Fig 13(a,b): all systems over query size (document target: the
    only engine every middleware supports)."""
    workload = QueryWorkload(bundle10)

    def run():
        out = {"QUEPA": {}}
        for size in QUERY_SIZES:
            query = workload.query("catalogue", size)
            out["QUEPA"][size] = (quepa_time(bundle10, query, 0), False)
        for system in middleware_systems(bundle10):
            out[system.name] = {}
            for size in QUERY_SIZES:
                query = workload.query("catalogue", size)
                result = system.run(query, level=0)
                out[system.name][size] = (result.elapsed,
                                          result.out_of_memory)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("Fig 13(a): cold, time vs query size (10 stores)")
    for system, curve in results.items():
        for size, (elapsed, oom) in curve.items():
            report.row(system=system, size=size, cold_s=elapsed,
                       oom="X" if oom else "-")

    largest = max(QUERY_SIZES)
    # Claim 1: QUEPA is the most performing everywhere.
    for system, curve in results.items():
        if system == "QUEPA":
            continue
        for size in QUERY_SIZES:
            elapsed, oom = curve[size]
            assert oom or elapsed > results["QUEPA"][size][0], (system, size)

    # Claim 2: TALEND has the steepest slope over query size among the
    # systems that complete (absolute growth per added result).
    def slope(system):
        first, __ = results[system][QUERY_SIZES[0]]
        last, oom = results[system][largest]
        return (last - first) / (largest - QUERY_SIZES[0]) if not oom else 0.0

    talend_slope = slope("TALEND")
    assert talend_slope > slope("META-AUG")
    assert talend_slope > slope("QUEPA")

    # Claim 3: META-NAT either OOMs or is slower than META-AUG at scale.
    nat_elapsed, nat_oom = results["META-NAT"][largest]
    assert nat_oom or nat_elapsed > results["META-AUG"][largest][0]
    report.note("QUEPA fastest everywhere; TALEND steepest; META-NAT "
                "impractical at scale")


def test_fig13_store_count_scalability(benchmark, report):
    """Fig 13(c,d): all systems over the number of databases."""
    store_counts = (4, 7, 10, 13)
    size = QUERY_SIZES[1]

    def run():
        out = {}
        for stores in store_counts:
            bundle = get_bundle(stores)
            workload = QueryWorkload(bundle)
            query = workload.query("catalogue", size)
            row = {"QUEPA": (quepa_time(bundle, query, 0), False)}
            for system in middleware_systems(bundle):
                result = system.run(query, level=0)
                row[system.name] = (result.elapsed, result.out_of_memory)
            out[stores] = row
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section(f"Fig 13(c): cold, time vs #stores (size {size})")
    for stores, row in results.items():
        for system, (elapsed, oom) in row.items():
            report.row(stores=stores, system=system, cold_s=elapsed,
                       oom="X" if oom else "-")

    # Claim 1: QUEPA scales smoothly and stays fastest.
    quepa_curve = [results[s]["QUEPA"][0] for s in store_counts]
    assert quepa_curve == sorted(quepa_curve)
    for stores in store_counts:
        for system, (elapsed, oom) in results[stores].items():
            if system != "QUEPA":
                assert oom or elapsed > results[stores]["QUEPA"][0]

    # Claim 2: the ArangoDB variants fall into OOM as stores are added.
    assert results[store_counts[-1]]["ARANGO-NAT"][1]
    assert results[store_counts[-1]]["ARANGO-AUG"][1]
    assert not results[store_counts[0]]["ARANGO-NAT"][1]

    # Claim 3: META-AUG scales similarly to QUEPA (bounded ratio growth).
    meta = [results[s]["META-AUG"][0] for s in store_counts]
    ratios = [m / q for m, q in zip(meta, quepa_curve)]
    assert max(ratios) / min(ratios) < 6.0

    # Claim 4: META-NAT is not practicable at scale (slowest or OOM).
    last = results[store_counts[-1]]
    nat_elapsed, nat_oom = last["META-NAT"]
    completing = [
        elapsed for system, (elapsed, oom) in last.items() if not oom
    ]
    assert nat_oom or nat_elapsed == max(completing)
    report.note("QUEPA smooth; ARANGO OOMs as stores grow; META-AUG "
                "tracks QUEPA at a constant factor")
