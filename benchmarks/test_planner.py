"""Planner quality vs the best-of-all-plans oracle (Fig 12 protocol).

The cost-based cross-store planner must not just rank plans — it must
rank them *well enough* that its pick is near the true optimum. The
protocol mirrors Fig 12's optimizer-quality campaign, applied to the
strategy space instead of the augmenter space:

1. **calibration warm-up** — a small out-of-mix workload executes every
   strategy with ``record=True``, so each strategy's EWMA factor has
   observations before evaluation;
2. **evaluation** — a query mix over every store kind x sizes x levels;
   for each point the planner's pick (frozen calibration) is compared
   against the *oracle*: the fastest of ALL admissible plans, found by
   executing every one of them.

Claim checked (the ISSUE's acceptance bar): the picked plan's measured
time is within 1.2x of the oracle on >= 90% of the mix.

Outputs ``results/planner_vs_oracle.txt`` and ``BENCH_planner.json``.
"""

from __future__ import annotations

import time

from repro.planner import FederatedEngine, LogicalQuery
from repro.workloads import QueryWorkload

from .conftest import N_ALBUMS, get_bundle
from .harness import write_bench_json

#: The acceptance bar: picked time <= ORACLE_SLACK x oracle time ...
ORACLE_SLACK = 1.2
#: ... on at least this share of the query mix.
REQUIRED_SHARE = 0.9

DATABASES = ("catalogue", "transactions", "similar", "discount")
SIZES = (50, 200, 1000)
LEVELS = (0, 1)

#: Out-of-mix warm-up queries (variant 7 windows never appear in the
#: evaluation mix, which uses variant 0).
WARMUP_SIZE = 100
WARMUP_VARIANT = 7


def make_engine(bundle) -> FederatedEngine:
    return FederatedEngine(bundle.polystore, bundle.aindex)


def warm_up(engine: FederatedEngine, workload: QueryWorkload) -> None:
    for database in DATABASES:
        query = workload.query(database, WARMUP_SIZE, variant=WARMUP_VARIANT)
        for level in LEVELS:
            engine.execute_all(
                LogicalQuery(
                    database=query.database, query=query.query, level=level
                ),
                record=True,
            )


def evaluate_point(engine, workload, database, size, level):
    """One mix point: planner pick vs best-of-all-plans oracle."""
    query = workload.query(database, size)
    logical = LogicalQuery(
        database=query.database, query=query.query, level=level
    )
    started = time.perf_counter()
    ranked, __ = engine.candidates(logical)
    picked = ranked[0][0].strategy
    results = engine.execute_all(logical)
    wall = time.perf_counter() - started
    oracle_strategy, oracle = min(
        ((strategy, r.elapsed) for strategy, r in results.items()),
        key=lambda pair: pair[1],
    )
    picked_elapsed = results[picked].elapsed
    return {
        "database": database,
        "size": size,
        "level": level,
        "picked": picked,
        "picked_s": round(picked_elapsed, 6),
        "oracle": oracle_strategy,
        "oracle_s": round(oracle, 6),
        "regret": round(picked_elapsed / oracle, 4),
        "within_slack": picked_elapsed <= ORACLE_SLACK * oracle,
        "cold_wall_s": round(wall, 6),
        "warm_wall_s": 0.0,
    }


def test_planner_vs_oracle(report):
    bundle = get_bundle(4)
    workload = QueryWorkload(bundle)
    engine = make_engine(bundle)
    warm_up(engine, workload)

    points = []
    report.section("planner pick vs best-of-all-plans oracle")
    for database in DATABASES:
        for size in SIZES:
            if size > N_ALBUMS:
                continue
            for level in LEVELS:
                point = evaluate_point(
                    engine, workload, database, size, level
                )
                points.append(point)
                report.row(**point)

    within = sum(point["within_slack"] for point in points)
    share = within / len(points)
    mean_regret = sum(point["regret"] for point in points) / len(points)
    exact = sum(point["picked"] == point["oracle"] for point in points)
    report.section("summary")
    report.row(
        points=len(points),
        within_1_2x=within,
        share=share,
        exact_picks=exact,
        mean_regret=mean_regret,
    )
    report.note(
        f"calibration: {sorted(engine.calibration.snapshot())}"
    )
    write_bench_json("planner", points)

    assert share >= REQUIRED_SHARE, (
        f"planner within {ORACLE_SLACK}x of oracle on only "
        f"{share:.0%} of the mix (need {REQUIRED_SHARE:.0%})"
    )
    # The pick must always be a real plan that ran cleanly.
    assert all(point["regret"] >= 1.0 for point in points)


def test_planner_smoke_two_stores(report):
    """Fast CI smoke: a 2-target-store plan space ranks and agrees."""
    bundle = get_bundle(4)
    workload = QueryWorkload(bundle)
    engine = make_engine(bundle)
    query = workload.query("catalogue", 50)
    logical = LogicalQuery(
        database=query.database,
        query=query.query,
        level=1,
        targets=("transactions", "discount"),
    )
    ranked, rejected = engine.candidates(logical)
    assert len(ranked) + len(rejected) == 6
    results = engine.execute_all(logical)
    signatures = {r.signature() for r in results.values()}
    assert len(signatures) == 1, "plans disagree on the answer"
    picked = ranked[0][0].strategy
    oracle = min(r.elapsed for r in results.values())
    report.section("2-store smoke")
    for strategy, result in sorted(
        results.items(), key=lambda pair: pair[1].elapsed
    ):
        report.row(strategy=strategy, elapsed_s=result.elapsed)
    report.row(picked=picked, oracle_s=oracle)
    assert results[picked].elapsed <= 2.0 * oracle
