"""Ablation: multi-instance scale-out (Section III-A).

"Since QUEPA does not store any data, it is easy to deploy multiple
instances of the system that can answer independent queries in
parallel." The ablation measures a batch of independent queries on
1/2/4/8 instances: the makespan must shrink near-linearly while the
per-query answers stay identical to a single instance's.
"""

from __future__ import annotations

from repro.cluster import DispatchPolicy, QuepaCluster
from repro.core import Quepa
from repro.network import centralized_profile
from repro.workloads import QueryWorkload

from .conftest import QUERY_SIZES


def test_ablation_cluster_scaleout(benchmark, bundle7, report):
    workload = QueryWorkload(bundle7)
    queries = [
        workload.query("transactions", QUERY_SIZES[0], variant=v)
        for v in range(16)
    ]

    def run():
        makespans = {}
        for instances in (1, 2, 4, 8):
            cluster = QuepaCluster(
                bundle7.polystore, bundle7.aindex,
                instances=instances,
                policy=DispatchPolicy.LEAST_LOADED,
            )
            for query in queries:
                cluster.submit(query.database, query.query)
            makespans[instances] = cluster.drain().makespan
        # Answer-equivalence against a standalone instance.
        solo = Quepa(
            bundle7.polystore, bundle7.aindex,
            profile=centralized_profile(bundle7.database_names()),
        )
        solo_answer = solo.augmented_search(
            queries[0].database, queries[0].query
        )
        cluster = QuepaCluster(bundle7.polystore, bundle7.aindex, instances=2)
        cluster_answer = cluster.submit(
            queries[0].database, queries[0].query
        ).answer
        same = {str(k) for k in solo_answer.augmented_keys()} == {
            str(k) for k in cluster_answer.augmented_keys()
        }
        return makespans, same

    makespans, same = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section("makespan of 16 independent queries vs instances")
    for instances, makespan in makespans.items():
        report.row(instances=instances, makespan_s=makespan,
                   speedup=makespans[1] / makespan)

    assert same, "clustered answers must match a standalone instance"
    # Near-linear scale-out over the measured range.
    assert makespans[2] < makespans[1] / 1.7
    assert makespans[4] < makespans[1] / 3.0
    assert makespans[8] < makespans[1] / 4.0
    report.note("independent queries scale out across instances")
