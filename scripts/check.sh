#!/usr/bin/env bash
# Tier-1 gate: the unit suite plus the virtual-time benchmark guard.
#
# The guard (tests/test_benchmark_guard.py) recomputes representative
# Fig 9 sweep points and compares them bit-for-bit against the
# committed seed results, so any change that moves the deterministic
# cost model fails here before it reaches the figures.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q -m "not benchmark and not slow and not chaos and not concurrency"
python -m pytest -x -q tests/test_benchmark_guard.py
