"""ArangoDB-like in-memory multi-model store (ARANGO-NAT / ARANGO-AUG).

The paper imports the key-value, graph and document databases plus the
A' index into ArangoDB (relational is not supported) and implements the
augmentation twice: natively as a single AQL traversal, and in QUEPA
style against ArangoDB as both data store and index.

The emulation reproduces the architecture's cost structure:

* **warm-up**: on the first (cold) query everything is imported into
  memory — data objects plus index edges — with per-object load CPU;
  the footprint is checked against the memory budget and the red-X OOM
  of Fig 13 fires when the polystore outgrows it;
* **memory pressure**: per-query cost carries a factor that grows as
  the footprint approaches the budget (cache thrash / GC), which is why
  ArangoDB "performs well on warm-cache runs but decreases
  significantly when we add databases";
* **ARANGO-NAT** answers with one in-memory traversal (per-edge CPU);
  **ARANGO-AUG** replays QUEPA's loop as per-object in-memory lookups.
"""

from __future__ import annotations

from repro.core.augmentation import Augmentation
from repro.middleware.base import MiddlewareSystem
from repro.network.executor import ExecContext
from repro.workloads.queries import WorkloadQuery

#: CPU to import one object or index edge at warm-up.
IMPORT_CPU_PER_OBJECT = 0.00004
#: In-memory lookup CPU per object (warm).
LOOKUP_CPU = 0.00001
#: Traversal CPU per index edge examined (AQL executor).
TRAVERSAL_CPU_PER_EDGE = 0.000005
#: Memory-pressure multiplier at 100% of budget.
PRESSURE_FACTOR = 6.0


class MultiModelStore(MiddlewareSystem):
    """ARANGO: all-in-one in-memory engine.

    Inside the cross-store planner this architecture competes as the
    ``multimodel_import`` strategy
    (:class:`repro.planner.plans.MultiModelPlan`), built from the same
    import/lookup/pressure cost constants above.
    """

    #: Planner strategy this emulator's architecture is exposed as.
    PLAN_STRATEGY = "multimodel_import"

    supported_engines = frozenset({"document", "graph", "keyvalue"})

    def __init__(self, *args, mode: str = "augmented", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if mode not in ("native", "augmented"):
            raise ValueError(f"mode must be 'native' or 'augmented', got {mode!r}")
        self.mode = mode
        self.name = "ARANGO-NAT" if mode == "native" else "ARANGO-AUG"
        self._augmentation = Augmentation(self.bundle.aindex)
        self._warm = False
        self._footprint = 0

    def reset_cache(self) -> None:
        """Back to cold: the next run pays the import warm-up again."""
        self._warm = False
        self._footprint = 0

    # -- execution -----------------------------------------------------------------

    def _execute(self, ctx: ExecContext, query: WorkloadQuery, level: int) -> int:
        if query.engine not in self.supported_engines:
            raise ValueError(
                f"{self.name} cannot import {query.engine} databases"
            )
        if not self._warm:
            self._warm_up(ctx)
        pressure = self._pressure()
        store = self.bundle.polystore.database(query.database)
        # The local query runs against the in-memory copy.
        originals = store.execute(query.query)
        ctx.cpu(LOOKUP_CPU * len(originals) * pressure)
        seeds = [obj.key for obj in originals if obj.key.collection != "_result"]
        plan = self._augmentation.plan(seeds, level)
        supported = {
            name for name, kind in self.supported_databases()
        }
        reachable = [
            fetch for fetch in plan.all_fetches()
            if fetch.key.database in supported
        ]
        if self.mode == "native":
            # One AQL traversal over the imported A' index.
            ctx.cpu(
                TRAVERSAL_CPU_PER_EDGE * plan.edges_examined * pressure
            )
            ctx.cpu(LOOKUP_CPU * len(reachable) * pressure)
        else:
            # QUEPA's loop: plan on the index, then per-object lookups.
            ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
            for __ in reachable:
                ctx.cpu(LOOKUP_CPU * 2.0 * pressure)
        distinct = {fetch.key for fetch in reachable}
        return len(originals) + len(distinct)

    # -- warm-up ----------------------------------------------------------------------

    def _warm_up(self, ctx: ExecContext) -> None:
        """Import every supported database and the A' index."""
        imported = 0
        for database, __ in self.supported_databases():
            store = self.bundle.polystore.database(database)
            for collection in store.collections():
                keys = self.scan_collection(ctx, database, collection)
                imported += len(keys)
                self.check_memory(imported)
        index_edges = self.bundle.aindex.edge_count()
        imported += index_edges
        self.check_memory(imported)
        ctx.cpu(IMPORT_CPU_PER_OBJECT * imported)
        self._footprint = imported
        self._warm = True

    def _pressure(self) -> float:
        """Cost multiplier from memory pressure (1.0 when empty)."""
        utilization = min(1.0, self._footprint / max(1, self.memory_budget))
        return 1.0 + (PRESSURE_FACTOR - 1.0) * utilization * utilization
