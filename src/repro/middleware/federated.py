"""Apache Metamodel-like federated middleware (META-NAT / META-AUG).

Metamodel exposes heterogeneous stores behind one query interface. The
paper implements the augmentation task on it in two ways:

* **native** (META-NAT) — with Metamodel's own operators, i.e. joins:
  the middleware pulls the candidate collections of every other
  supported store into its own memory and hash-joins them against the
  local answer on the linking attributes. Without an A' index this is
  the only way to find related objects; memory grows with the polystore
  and big runs go out of memory, exactly the red-X behaviour of Fig 13.
* **augmented** (META-AUG) — re-implementing QUEPA's algorithm through
  the middleware interface: fetch each related key individually, paying
  the interface-translation overhead on every call, with no batching or
  threading (Metamodel's connectors are synchronous). Scales linearly,
  like QUEPA, but with a constant-factor penalty.

Redis is not supported (``supported_engines``), as in the paper.
"""

from __future__ import annotations

from repro.core.augmentation import Augmentation
from repro.middleware.base import MiddlewareSystem
from repro.network.executor import ExecContext
from repro.workloads.queries import WorkloadQuery

#: Interface-translation multiplier on per-call overhead (META-AUG).
TRANSLATION_OVERHEAD = 2.5
#: Middleware CPU to deserialize/convert one pulled object (META-NAT).
CONVERT_CPU_PER_OBJECT = 0.0004
#: Middleware CPU per hash-join probe (META-NAT).
PROBE_CPU = 0.00002


class FederatedMiddleware(MiddlewareSystem):
    """META: common-interface federation over SQL/document/graph.

    Inside the cross-store planner this architecture competes as the
    ``collect_join`` strategy (:class:`repro.planner.plans.CollectJoinPlan`),
    built from the same scan/convert/probe cost constants above.
    """

    #: Planner strategy this emulator's architecture is exposed as.
    PLAN_STRATEGY = "collect_join"

    supported_engines = frozenset({"relational", "document", "graph"})

    def __init__(self, *args, mode: str = "augmented", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if mode not in ("native", "augmented"):
            raise ValueError(f"mode must be 'native' or 'augmented', got {mode!r}")
        self.mode = mode
        self.name = "META-NAT" if mode == "native" else "META-AUG"
        self._augmentation = Augmentation(self.bundle.aindex)

    def _execute(self, ctx: ExecContext, query: WorkloadQuery, level: int) -> int:
        if query.engine not in self.supported_engines:
            raise ValueError(
                f"{self.name} cannot connect to {query.engine} stores"
            )
        originals = self.run_local_query(ctx, query)
        if self.mode == "native":
            return self._run_native(ctx, originals, level)
        return self._run_augmented(ctx, originals, level)

    # -- META-NAT: cross-store hash joins ---------------------------------------

    def _run_native(self, ctx: ExecContext, originals, level: int) -> int:
        """Join the local answer against every other supported store.

        Each augmentation level is one more join round: round ``r``
        joins the frontier against all remote collections, pulling each
        collection into middleware memory (footprint-checked) and
        paying join CPU proportional to candidates x frontier.
        """
        footprint = len(originals)
        self.check_memory(footprint)
        frontier = len(originals)
        answer = len(originals)
        rounds = level + 1
        remote = list(self.supported_databases())
        for __ in range(rounds):
            for database, __kind in remote:
                store = self.bundle.polystore.database(database)
                for collection in store.collections():
                    keys = self.scan_collection(ctx, database, collection)
                    # Pulled rows plus the hash-join build table over
                    # them: the middleware holds both.
                    footprint += 2 * len(keys)
                    self.check_memory(footprint)
                    # Build side: deserialize every pulled object into
                    # the middleware's row model; probe side: one probe
                    # per frontier row.
                    ctx.cpu(CONVERT_CPU_PER_OBJECT * len(keys))
                    ctx.cpu(PROBE_CPU * frontier)
            # Matches found by the value joins equal what the A' index
            # records (both reflect the same ground truth); the joined
            # intermediate result is materialized in middleware memory.
            matched_total = self._index_matches(frontier)
            footprint += matched_total
            self.check_memory(footprint)
            ctx.cpu(CONVERT_CPU_PER_OBJECT * matched_total)
            answer += matched_total
            frontier = matched_total
        return answer

    def _index_matches(self, frontier: int) -> int:
        """Expected join fan-out per round (the ground-truth density)."""
        # Every entity is present once per store holding it, plus two
        # matching links; the join discovers the same related objects
        # the A' index records.
        per_object = max(1, len(self.bundle.databases) - 1)
        return frontier * per_object

    # -- META-AUG: QUEPA's algorithm through the interface -------------------------

    def _run_augmented(self, ctx: ExecContext, originals, level: int) -> int:
        seeds = [obj.key for obj in originals if obj.key.collection != "_result"]
        plan = self._augmentation.plan(seeds, level)
        ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
        kinds = dict(self.bundle.databases)
        fetched: set = set()
        for fetch in plan.all_fetches():
            if kinds.get(fetch.key.database) not in self.supported_engines:
                continue  # Redis objects are unreachable through META
            store = self.bundle.polystore.database(fetch.key.database)
            # Interface translation overhead on every single-object call
            # (no cache in the middleware: duplicates are refetched).
            ctx.cpu(ctx.cost_model.per_query_overhead * (TRANSLATION_OVERHEAD - 1.0))
            results = ctx.store_call(
                fetch.key.database,
                lambda key=fetch.key, store=store: store.multi_get([key]),
            )
            fetched.update(obj.key for obj in results)
        return len(originals) + len(fetched)
