"""Middleware baselines of the Fig 13 comparison (Section VII-A.c).

Three architectures the paper compares QUEPA against, emulated over the
same stores, the same A' index and the same virtual-time cost model:

* :class:`~repro.middleware.federated.FederatedMiddleware` — Apache
  Metamodel-like common interface over relational/document/graph (no
  Redis support, as in the paper). ``native`` mode answers with
  cross-store joins (pulls whole collections, memory-bounded — the
  red-X OOMs); ``augmented`` mode re-implements QUEPA's algorithm
  through the middleware's interface, paying translation overhead per
  call.
* :class:`~repro.middleware.etl.EtlWorkflow` — Talend-like compiled
  workflow: startup, lookup-table staging, and a high per-record
  pipeline cost (the steepest slope in Fig 13).
* :class:`~repro.middleware.multimodel.MultiModelStore` — ArangoDB-like
  in-memory multi-model engine: imports every supported database plus
  the A' index at start-up (warm-up), then answers natively (one
  AQL-style traversal) or in QUEPA style; degrades and finally OOMs as
  the polystore grows.

Each architecture is also exposed as an execution strategy of the
cost-based cross-store planner (:mod:`repro.planner`) — see each class's
``PLAN_STRATEGY`` and docs/PLANNING.md.
"""

from repro.middleware.base import MiddlewareResult, MiddlewareSystem, page_scan
from repro.middleware.etl import EtlWorkflow
from repro.middleware.federated import FederatedMiddleware
from repro.middleware.multimodel import MultiModelStore

__all__ = [
    "EtlWorkflow",
    "FederatedMiddleware",
    "MiddlewareResult",
    "MiddlewareSystem",
    "MultiModelStore",
    "page_scan",
]
