"""Talend-like compiled ETL workflow (TALEND in Fig 13).

The paper builds a Talend Open Studio workflow with Neo4j, MySQL and
MongoDB connectors, compiles it, and runs it standalone. The emulation
reproduces that architecture's cost structure:

* a fixed start-up cost (JVM + workflow bootstrap);
* lookup staging: every store that can hold related objects is read
  once into lookup tables (streamed, so no OOM — Talend spills);
* row-at-a-time processing: each row of the local answer passes through
  the pipeline's stages (tMap lookups, type conversions, output
  formatting), each stage paying a per-record interpretation cost.

The per-record cost is what gives TALEND the steepest slope over query
size in Fig 13(a,b).
"""

from __future__ import annotations

from repro.core.augmentation import Augmentation
from repro.middleware.base import MiddlewareSystem
from repro.network.executor import ExecContext
from repro.workloads.queries import WorkloadQuery

#: Workflow bootstrap (compiled job start-up), seconds.
STARTUP_COST = 1.2
#: Pipeline stages every record passes through.
PIPELINE_STAGES = 3
#: Middleware CPU per record per stage (row-at-a-time interpretation).
PER_RECORD_STAGE_CPU = 0.0007
#: CPU to insert one staged object into a lookup table.
LOOKUP_BUILD_CPU = 0.000002


class EtlWorkflow(MiddlewareSystem):
    """TALEND: staged extract -> lookup-join -> output workflow.

    Inside the cross-store planner this architecture competes as the
    ``etl_cast`` strategy (:class:`repro.planner.plans.EtlCastPlan`),
    built from the same startup/staging/pipeline cost constants above.
    """

    #: Planner strategy this emulator's architecture is exposed as.
    PLAN_STRATEGY = "etl_cast"

    name = "TALEND"
    supported_engines = frozenset({"relational", "document", "graph"})

    def _execute(self, ctx: ExecContext, query: WorkloadQuery, level: int) -> int:
        if query.engine not in self.supported_engines:
            raise ValueError(f"{self.name} cannot connect to {query.engine} stores")
        ctx.cpu(STARTUP_COST)
        # Stage the lookup tables: one full scan per supported store.
        staged = 0
        for database, __ in self.supported_databases():
            store = self.bundle.polystore.database(database)
            for collection in store.collections():
                keys = self.scan_collection(ctx, database, collection)
                staged += len(keys)
                ctx.cpu(LOOKUP_BUILD_CPU * len(keys))
        originals = self.run_local_query(ctx, query)
        # Row-at-a-time processing through the pipeline. The related
        # objects per row are resolved against the staged lookups; the
        # expansion factor is the same ground truth QUEPA's index holds.
        seeds = [obj.key for obj in originals if obj.key.collection != "_result"]
        plan = Augmentation(self.bundle.aindex).plan(seeds, level)
        supported = {
            name for name, kind in self.supported_databases()
        }
        resolved = [
            fetch for fetch in plan.all_fetches()
            if fetch.key.database in supported
        ]
        # Row-at-a-time cost is paid per pipeline record (duplicates
        # included); the output size is distinct objects.
        records = len(originals) + len(resolved)
        ctx.cpu(records * PIPELINE_STAGES * PER_RECORD_STAGE_CPU)
        return len(originals) + len({fetch.key for fetch in resolved})
