"""Shared machinery of the middleware emulators.

The emulators double as the execution cores of the cross-store planner
(:mod:`repro.planner`): each one's architecture — collect-and-join,
staged ETL cast, in-memory multi-model import — is exposed there as a
:class:`~repro.planner.plans.PhysicalPlan` strategy competing against
QUEPA's A'-index push-down. The page-scan primitive both layers share
lives here as :func:`page_scan`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.errors import OutOfMemoryError, StoreUnavailableError
from repro.model.objects import GlobalKey
from repro.network.executor import ExecContext, VirtualRuntime
from repro.network.latency import DeploymentProfile
from repro.workloads.builder import PolystoreBundle
from repro.workloads.queries import WorkloadQuery

#: Page size of bulk collection scans through a middleware connector.
SCAN_PAGE = 1000


def page_scan(
    ctx: ExecContext,
    store,
    database: str,
    collection: str,
    page_size: int = SCAN_PAGE,
    issue: Callable | None = None,
) -> list[GlobalKey]:
    """Pull a whole collection through a middleware connector, paged.

    Charges one store roundtrip per page of ``page_size`` objects and
    returns the global keys (middleware layers track footprints and
    join keys; payloads live in the underlying stores either way).
    ``issue`` optionally replaces the plain ``ctx.store_call`` — the
    planner routes pages through the resilience layer with it, so an
    open circuit breaker fails a scan exactly as it fails a fetch.
    """
    keys = [
        GlobalKey(database, collection, local)
        for local in store.collection_keys(collection)
    ]
    for page_start in range(0, len(keys), page_size):
        page = keys[page_start:page_start + page_size]
        op = lambda page=page: page  # noqa: E731
        if issue is not None:
            issue(ctx, database, op)
        else:
            ctx.store_call(database, op)
    return keys


@dataclass
class MiddlewareResult:
    """Outcome of one middleware run (Fig 13 data point)."""

    system: str
    elapsed: float
    answer_size: int
    out_of_memory: bool = False
    footprint: int = 0
    #: Reason string when a source store was unreachable mid-run (the
    #: run reports instead of raising, like the OOM case).
    unavailable: str | None = None

    @property
    def marker(self) -> str:
        """The plot marker: the paper's red 'X' on OOM."""
        return "X" if self.out_of_memory else "o"


class MiddlewareSystem(ABC):
    """A baseline system answering the augmentation task its own way."""

    #: Display name used by the benchmark tables.
    name = "abstract"
    #: Engine kinds the middleware can connect to.
    supported_engines: frozenset[str] = frozenset(
        {"relational", "document", "graph", "keyvalue"}
    )

    def __init__(
        self,
        bundle: PolystoreBundle,
        profile: DeploymentProfile,
        memory_budget: int = 200_000,
    ) -> None:
        self.bundle = bundle
        self.profile = profile
        self.memory_budget = memory_budget
        self.runtime = VirtualRuntime(profile)

    # -- public entry point ----------------------------------------------------

    def run(self, query: WorkloadQuery, level: int = 0) -> MiddlewareResult:
        """Answer the augmented query; OOM and unreachable stores are
        reported on the result rather than raised (the middleware has no
        degraded half-answers — its run simply fails and says why)."""
        ctx = self.runtime.root()
        try:
            answer_size = self._execute(ctx, query, level)
        except OutOfMemoryError as oom:
            return MiddlewareResult(
                system=self.name,
                elapsed=self.runtime.elapsed,
                answer_size=0,
                out_of_memory=True,
                footprint=oom.footprint,
            )
        except StoreUnavailableError as exc:
            return MiddlewareResult(
                system=self.name,
                elapsed=self.runtime.elapsed,
                answer_size=0,
                unavailable=str(exc),
            )
        return MiddlewareResult(
            system=self.name,
            elapsed=self.runtime.elapsed,
            answer_size=answer_size,
        )

    @abstractmethod
    def _execute(self, ctx: ExecContext, query: WorkloadQuery, level: int) -> int:
        """Run the augmentation task; returns the answer size."""

    # -- shared helpers -----------------------------------------------------------

    def supported_databases(self) -> list[tuple[str, str]]:
        return [
            (name, kind)
            for name, kind in self.bundle.databases
            if kind in self.supported_engines
        ]

    def check_memory(self, footprint: int) -> None:
        if footprint > self.memory_budget:
            raise OutOfMemoryError(
                f"{self.name}: footprint {footprint} objects exceeds "
                f"budget {self.memory_budget}",
                footprint=footprint,
                budget=self.memory_budget,
            )

    def scan_collection(
        self, ctx: ExecContext, database: str, collection: str
    ) -> list[GlobalKey]:
        """Pull a whole collection through the middleware, page by page.

        Charges one store roundtrip per page of ``SCAN_PAGE`` objects and
        returns the global keys (the emulators track footprints and join
        keys; payloads live in the underlying stores either way).
        """
        store = self.bundle.polystore.database(database)
        return page_scan(ctx, store, database, collection)

    def run_local_query(self, ctx: ExecContext, query: WorkloadQuery):
        """The user's original query, through the middleware connector."""
        store = self.bundle.polystore.database(query.database)
        return list(
            ctx.store_call(query.database, lambda: store.execute(query.query))
        )
