"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    Build the Fig 1 mini polystore and run Lucy's augmented query.
``generate --stores N --albums M --out DIR``
    Generate a Polyphony polystore variant and snapshot it to disk.
``query --snapshot DIR --database DB --query Q [--level L] [--augmenter A]``
    Run one augmented query against a snapshot and print the answer.
``inspect --snapshot DIR``
    Print a snapshot's databases, object counts and index size.
``explore --snapshot DIR --database DB --query Q [--steps N]``
    Run an automatic exploration (always following the strongest link).
``stats --snapshot DIR --database DB --query Q [--level L] ...``
    Run one augmented query and print its observability breakdown:
    per-store latency/query/object counts, cache behaviour, span-kind
    timings (see :mod:`repro.obs`).
``trace --snapshot DIR --database DB --query Q [--level L] ...``
    Run one augmented query and print its span tree on the virtual
    timeline (``--format=chrome`` emits Chrome trace-event JSON that
    opens in Perfetto).
``explain --snapshot DIR --database DB --query Q [--level L] [--analyze]``
    EXPLAIN (or EXPLAIN ANALYZE) an augmented query: store access path,
    A' index traversal, pool/batching decisions, optimizer rule
    firings, estimated vs actual rows and queries.
``plan --snapshot DIR --database DB --query Q [--targets A,B] [--execute]``
    Enumerate the cross-store physical plans of one query (A'-index
    push-down, collect-and-join, ETL cast, multi-model import), print
    each plan's estimated cost and the planner's pick; ``--execute``
    also runs the winner (see :mod:`repro.planner`).
``events --snapshot DIR --database DB --query Q [--slow-ms T] ...``
    Run one augmented query with the event journal armed and print the
    recorded events (slow queries, lazy deletions, run completions).
``faults --snapshot DIR --database DB --query Q --inject SPEC ...``
    Run one augmented query under an injected fault schedule (specs
    look like ``db:kind[:k=v,...]``, kinds: fail/stall/truncate/flap)
    with the resilience layer armed, then print whether the answer
    degraded, the breaker states and the injection/retry counters.
``serve --snapshot DIR [--port P] [--workers N] ...``
    Serve a snapshot over HTTP through the multi-session scheduler
    (:mod:`repro.serving`): bounded admission queue, per-session
    fairness, deadlines. ``GET /serving`` reports live status.
``loadgen --stores N --albums M --clients C --requests R ...``
    Build a Polyphony polystore in memory, start an embedded server,
    and drive it with the seeded closed-loop load generator; prints
    QPS and latency percentiles (``--json`` for machine-readable).
``slo --clients C --requests R [--latency-threshold S] ...``
    Drive the embedded server with seeded load, then report SLO
    compliance: measured availability and latency against their
    objectives, with error-budget burn rates from the live histograms.
``ingest --stores N --albums M --updates U [--batch B] [--workdir DIR]``
    Stream seeded store mutations through the CDC pipeline
    (:mod:`repro.cdc`): bootstrap an incremental collector, pump change
    batches through the WAL into A' index deltas, take an incremental
    snapshot and finish with a warm restart that replays only the delta.
``record --clients C --requests R [--status S] [--session X] ...``
    Drive the embedded server with seeded load, then dump the flight
    recorder: the shed/failed/degraded/slow requests it retained, each
    with trace id, queue wait, latency and critical-path breakdown.

The CLI prints with :class:`~repro.ui.render.TextRenderer` (pass
``--color`` for the ANSI renderer, the terminal face of the paper's
probability colors).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import ReproError
from repro.persistence import load_snapshot, save_snapshot
from repro.stores.querycache import parse_cache_stats
from repro.ui.render import AnsiRenderer, TextRenderer
from repro.workloads import MusicGenerator, PolystoreScale, build_polyphony


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QUEPA: augmented access to a polystore (ICDE 2018 "
                    "reproduction)",
    )
    parser.add_argument("--color", action="store_true",
                        help="render probabilities with ANSI colors")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the paper's running example")

    generate = commands.add_parser(
        "generate", help="generate a Polyphony polystore snapshot"
    )
    generate.add_argument("--stores", type=int, default=4)
    generate.add_argument("--albums", type=int, default=500)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", required=True)

    query = commands.add_parser("query", help="run one augmented query")
    _add_query_args(query)

    stats = commands.add_parser(
        "stats", help="run one query and print its metrics breakdown"
    )
    _add_query_args(stats)

    trace = commands.add_parser(
        "trace", help="run one query and print its span tree"
    )
    _add_query_args(trace)
    trace.add_argument("--limit", type=int, default=100,
                       help="maximum number of span lines to print")
    trace.add_argument("--format", choices=("tree", "chrome"),
                       default="tree", dest="trace_format",
                       help="tree (default) or Chrome trace-event JSON")

    explain = commands.add_parser(
        "explain", help="explain how an augmented query would run"
    )
    _add_query_args(explain)
    explain.add_argument("--analyze", action="store_true",
                         help="also execute and report actual rows/time")
    explain.add_argument("--json", action="store_true", dest="as_json",
                         help="print the report as JSON")

    plan = commands.add_parser(
        "plan", help="enumerate and cost cross-store physical plans"
    )
    _add_query_args(plan)
    plan.add_argument("--targets", default=None,
                      help="comma-separated augmentation target databases "
                           "(default: every database)")
    plan.add_argument("--execute", action="store_true",
                      help="also execute the chosen plan and report its run")
    plan.add_argument("--json", action="store_true", dest="as_json",
                      help="print the plan report as JSON")

    events = commands.add_parser(
        "events", help="run one query and print the event journal"
    )
    _add_query_args(events)
    events.add_argument("--slow-ms", type=float, default=None,
                        help="arm the slow-query log at this threshold")
    events.add_argument("--jsonl", default=None,
                        help="also append events to this JSONL file")
    events.add_argument("--min-severity", default=None,
                        choices=("debug", "info", "warning", "error"))
    events.add_argument("--limit", type=int, default=50,
                        help="maximum number of events to print")

    faults = commands.add_parser(
        "faults", help="run one query under an injected fault schedule"
    )
    _add_query_args(faults)
    faults.add_argument(
        "--inject", action="append", default=[], metavar="SPEC",
        help="fault spec 'db:kind[:k=v,...]' (repeatable); kinds: "
             "fail, stall, truncate, flap",
    )
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault schedule RNG")
    faults.add_argument("--retries", type=int, default=3,
                        help="retry attempts per store call")
    faults.add_argument("--breaker-threshold", type=int, default=5,
                        help="consecutive failures that trip a breaker")
    faults.add_argument("--timeout-budget", type=float, default=None,
                        help="per-augmentation budget in virtual seconds")
    faults.add_argument("--json", action="store_true", dest="as_json",
                        help="print the fault report as JSON")

    serve = commands.add_parser(
        "serve", help="serve a snapshot over HTTP via the scheduler"
    )
    serve.add_argument("--snapshot", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="HTTP port (0 picks a free port)")
    _add_serving_args(serve)
    serve.add_argument("--duration", type=float, default=None,
                       help="run for this many seconds then exit "
                            "(default: until interrupted)")

    loadgen = commands.add_parser(
        "loadgen", help="drive an embedded server with seeded load"
    )
    _add_loadgen_args(loadgen)
    loadgen.add_argument("--json", action="store_true", dest="as_json",
                         help="print the load report as JSON")

    slo = commands.add_parser(
        "slo", help="drive seeded load, then report SLO burn rates"
    )
    _add_loadgen_args(slo)
    slo.add_argument("--availability-objective", type=float, default=0.99,
                     dest="availability_objective",
                     help="target completed/finished fraction")
    slo.add_argument("--latency-threshold", type=float, default=1.0,
                     dest="latency_threshold",
                     help="completed requests must finish within this "
                          "many seconds...")
    slo.add_argument("--latency-objective", type=float, default=0.95,
                     dest="latency_objective",
                     help="...for at least this fraction of completions")
    slo.add_argument("--json", action="store_true", dest="as_json",
                     help="print the SLO report as JSON")

    record = commands.add_parser(
        "record", help="drive seeded load, then dump the flight recorder"
    )
    _add_loadgen_args(record)
    record.add_argument("--capacity", type=int, default=256,
                        help="digests the recorder retains")
    record.add_argument("--slow-threshold", type=float, default=None,
                        dest="slow_threshold",
                        help="absolute slow cutoff in seconds "
                             "(default: adaptive rolling p95)")
    record.add_argument("--session", default=None,
                        help="only digests of this session")
    record.add_argument("--status", default=None,
                        choices=("completed", "failed", "shed"),
                        help="only digests with this outcome")
    record.add_argument("--limit", type=int, default=None,
                        help="keep only the newest N digests")
    record.add_argument("--json", action="store_true", dest="as_json",
                        help="print the digests as JSON")

    ingest = commands.add_parser(
        "ingest",
        help="incremental ingestion demo: CDC feeds -> WAL -> A' deltas",
    )
    ingest.add_argument("--stores", type=int, default=4)
    ingest.add_argument("--albums", type=int, default=60)
    ingest.add_argument("--seed", type=int, default=42)
    ingest.add_argument("--updates", type=int, default=30,
                        help="seeded store mutations to stream through CDC")
    ingest.add_argument("--batch", type=int, default=10,
                        help="mutations between hub pumps")
    ingest.add_argument("--workdir", default=None,
                        help="directory for the WAL and the incremental "
                             "snapshot; also demonstrates a warm restart")
    ingest.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable ingest report")

    inspect = commands.add_parser("inspect", help="describe a snapshot")
    inspect.add_argument("--snapshot", required=True)

    explore = commands.add_parser(
        "explore", help="walk the strongest links from a query"
    )
    explore.add_argument("--snapshot", required=True)
    explore.add_argument("--database", required=True)
    explore.add_argument("--query", required=True)
    explore.add_argument("--steps", type=int, default=3)
    return parser


def _add_query_args(subparser) -> None:
    subparser.add_argument("--snapshot", required=True)
    subparser.add_argument("--database", required=True)
    subparser.add_argument("--query", required=True)
    subparser.add_argument("--level", type=int, default=0)
    subparser.add_argument("--augmenter", default=None)
    subparser.add_argument("--batch-size", type=int, default=64)
    subparser.add_argument("--threads-size", type=int, default=4)
    subparser.add_argument("--shards", type=int, default=1,
                           help="partition every store and the A' index "
                                "into this many shards (1 = unsharded)")
    subparser.add_argument("--placement", default="hash",
                           choices=("hash", "range"),
                           help="shard placement scheme when --shards > 1")


def _add_loadgen_args(subparser) -> None:
    """Polystore + serving + workload knobs of the embedded-load family
    (``loadgen``, ``slo``, ``record``)."""
    subparser.add_argument("--stores", type=int, default=4)
    subparser.add_argument("--albums", type=int, default=120)
    subparser.add_argument("--seed", type=int, default=42)
    _add_serving_args(subparser)
    subparser.add_argument("--clients", type=int, default=4)
    subparser.add_argument("--requests", type=int, default=10,
                           help="requests per client")
    subparser.add_argument("--size", type=int, default=16,
                           help="workload query result-size knob")
    subparser.add_argument("--level", type=int, default=1,
                           help="augmentation level of generated queries")
    subparser.add_argument("--zipf-s", type=float, default=0.0,
                           dest="zipf_s",
                           help="Zipf exponent for key-window skew "
                                "(0 = legacy uniform variants)")


def _add_serving_args(subparser) -> None:
    subparser.add_argument("--workers", type=int, default=4,
                           help="scheduler worker threads")
    subparser.add_argument("--queue-capacity", type=int, default=64,
                           help="admission queue bound (backpressure)")
    subparser.add_argument("--max-inflight", type=int, default=2,
                           help="per-session concurrent-request cap")
    subparser.add_argument("--deadline", type=float, default=None,
                           help="default per-request deadline, seconds")
    subparser.add_argument("--time-scale", type=float, default=0.0,
                           help="scale factor for simulated store "
                                "latencies on the real runtime "
                                "(0 disables sleeping)")
    subparser.add_argument("--hedge", action="store_true",
                           help="hedge slow store calls with a backup "
                                "after the learned p95 delay")
    subparser.add_argument("--no-coalesce", action="store_false",
                           dest="coalesce",
                           help="disable single-flight coalescing of "
                                "identical concurrent store fetches")


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    renderer = AnsiRenderer() if args.color else TextRenderer()
    try:
        if args.command == "demo":
            return _demo(renderer, out)
        if args.command == "generate":
            return _generate(args, out)
        if args.command == "query":
            return _query(args, renderer, out)
        if args.command == "stats":
            return _stats(args, out)
        if args.command == "trace":
            return _trace(args, out)
        if args.command == "explain":
            return _explain(args, out)
        if args.command == "plan":
            return _plan(args, out)
        if args.command == "events":
            return _events(args, out)
        if args.command == "faults":
            return _faults(args, out)
        if args.command == "serve":
            return _serve(args, out)
        if args.command == "loadgen":
            return _loadgen(args, out)
        if args.command == "slo":
            return _slo(args, out)
        if args.command == "record":
            return _record(args, out)
        if args.command == "ingest":
            return _ingest(args, out)
        if args.command == "inspect":
            return _inspect(args, out)
        if args.command == "explore":
            return _explore(args, renderer, out)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0  # pragma: no cover - argparse enforces a command


def _demo(renderer: TextRenderer, out) -> int:
    # Imported lazily: examples/ is not part of the installed package.
    from repro.model import GlobalKey, Polystore, PRelation
    from repro.core import AIndex
    from repro.stores import (
        DocumentStore, GraphStore, KeyValueStore, RelationalStore,
    )
    from repro.stores.relational.types import Column, ColumnType, TableSchema

    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("artist", ColumnType.TEXT),
                Column("name", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    sales.insert_row(
        "inventory", {"id": "a32", "artist": "Cure", "name": "Wish"}
    )
    polystore.attach("transactions", sales)
    catalogue = DocumentStore()
    catalogue.insert(
        "albums",
        {"_id": "d1", "title": "Wish", "artist": "The Cure", "year": 1992},
    )
    polystore.attach("catalogue", catalogue)
    discounts = KeyValueStore(keyspace="drop")
    discounts.set("k1:cure:wish", "40%")
    polystore.attach("discount", discounts)
    graph = GraphStore()
    graph.create_node("Item", {"title": "Wish"}, node_id="i1")
    polystore.attach("similar", graph)

    aindex = AIndex()
    key = GlobalKey.parse
    aindex.add(PRelation.identity(
        key("catalogue.albums.d1"), key("transactions.inventory.a32"), 0.9))
    aindex.add(PRelation.identity(
        key("catalogue.albums.d1"), key("discount.drop.k1:cure:wish"), 0.8))
    aindex.add(PRelation.matching(
        key("catalogue.albums.d1"), key("similar.Item.i1"), 0.7))

    quepa = Quepa(polystore, aindex)
    answer = quepa.augmented_search(
        "transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'"
    )
    print(renderer.render_answer(answer), file=out)
    return 0


def _generate(args, out) -> int:
    bundle = build_polyphony(
        stores=args.stores,
        scale=PolystoreScale(n_albums=args.albums),
        seed=args.seed,
    )
    path = save_snapshot(args.out, bundle.polystore, bundle.aindex)
    print(
        f"wrote {bundle.store_count} databases, "
        f"{bundle.polystore.total_objects()} objects, "
        f"{bundle.aindex.edge_count()} p-relations to {path}",
        file=out,
    )
    return 0


def _load(args) -> Quepa:
    polystore, aindex = load_snapshot(args.snapshot)
    shards = getattr(args, "shards", 1)
    if shards > 1:
        from repro.sharding import shard_aindex, shard_polystore

        polystore = shard_polystore(
            polystore, shards=shards, placement=args.placement
        )
        aindex = shard_aindex(aindex, shards=shards)
    return Quepa(polystore, aindex)


def _query(args, renderer: TextRenderer, out) -> int:
    quepa = _load(args)
    config = None
    if args.augmenter:
        config = AugmentationConfig(
            augmenter=args.augmenter,
            batch_size=args.batch_size,
            threads_size=args.threads_size,
        )
    answer = quepa.augmented_search(
        args.database, args.query, level=args.level, config=config
    )
    print(renderer.render_answer(answer), file=out)
    print(
        f"[{answer.stats.queries_issued} native queries, "
        f"{answer.stats.elapsed * 1000:.2f} ms virtual]",
        file=out,
    )
    return 0


def _run_instrumented(args):
    """Run one augmented query and return (quepa, answer) for reporting."""
    quepa = _load(args)
    config = None
    if args.augmenter:
        config = AugmentationConfig(
            augmenter=args.augmenter,
            batch_size=args.batch_size,
            threads_size=args.threads_size,
        )
    answer = quepa.augmented_search(
        args.database, args.query, level=args.level, config=config
    )
    return quepa, answer


def _stats(args, out) -> int:
    quepa, answer = _run_instrumented(args)
    stats = answer.stats
    print(
        f"query on {args.database} (level {stats.level}, "
        f"augmenter={stats.augmenter}):",
        file=out,
    )
    print(
        f"  elapsed {stats.elapsed * 1000:.2f} ms | "
        f"{stats.queries_issued} native queries | "
        f"{stats.cache_hits} cache hits | "
        f"{stats.augmented_count} augmented objects",
        file=out,
    )
    meter = quepa.runtime.meter
    metrics = quepa.obs.metrics
    print("per-store breakdown:", file=out)
    header = (
        f"  {'database':16s} {'queries':>8s} {'objects':>8s} "
        f"{'mean_ms':>9s} {'p50_ms':>9s} {'p95_ms':>9s} {'p99_ms':>9s} "
        f"{'max_ms':>9s}"
    )
    print(header, file=out)
    for database in sorted(meter.queries_by_database):
        latency = metrics.histogram(
            "store_call_seconds", database=database
        ).snapshot()
        print(
            f"  {database:16s} "
            f"{meter.queries_by_database[database]:8d} "
            f"{meter.objects_by_database.get(database, 0):8d} "
            f"{latency['mean'] * 1000:9.3f} "
            f"{latency['p50'] * 1000:9.3f} "
            f"{latency['p95'] * 1000:9.3f} "
            f"{latency['p99'] * 1000:9.3f} "
            f"{latency['max'] * 1000:9.3f}",
            file=out,
        )
    shard_lines = _shard_metric_lines(metrics)
    if shard_lines:
        print("shard routing:", file=out)
        for line in shard_lines:
            print(line, file=out)
    print("span kinds:", file=out)
    summary = quepa.obs.tracer.summary()
    for kind in sorted(summary):
        entry = summary[kind]
        print(
            f"  {kind:16s} count={int(entry['count']):<6d} "
            f"total_ms={entry['total_s'] * 1000:.3f}",
            file=out,
        )
    cache = quepa.cache.stats()
    probes = cache["hits"] + cache["misses"]
    if probes:
        print(
            f"cache: {probes} probes, {cache['hits']} hits "
            f"({cache['hit_rate']:.1%} hit rate), "
            f"{cache['size']}/{cache['capacity']} entries, "
            f"{cache['evictions']} evictions",
            file=out,
        )
        for index, shard in enumerate(cache["shards"]):
            print(
                f"  shard {index}: {shard['size']:6d} entries "
                f"{shard['hits']:8d} hits {shard['misses']:8d} misses",
                file=out,
            )
    else:
        print("cache: unused", file=out)
    refreezes = getattr(quepa.aindex, "refreezes", None)
    if refreezes is not None:
        print(
            f"planner: {refreezes} index refreezes "
            f"(generation {quepa.aindex.generation})",
            file=out,
        )
    parse_lines = [
        f"  {entry['name']:18s} {entry['hits']:8d} hits "
        f"{entry['misses']:8d} misses ({entry['hit_rate']:.1%} hit rate)"
        for entry in parse_cache_stats()
        if entry["hits"] or entry["misses"]
    ]
    if parse_lines:
        print("parse caches:", file=out)
        for line in parse_lines:
            print(line, file=out)
    return 0


def _shard_metric_lines(metrics) -> list[str]:
    """Per-database shard-routing lines, empty when nothing is sharded.

    Scatter fan-out comes from the ``augment_fanout_shards`` histogram,
    pruning from the partition counters — all emitted only by sharded
    routing, so an unsharded run prints no section at all.
    """
    fanout: dict[str, dict] = {}
    scanned: dict[str, float] = {}
    pruned: dict[str, float] = {}
    for entry in metrics.snapshot():
        database = entry["labels"].get("database", "")
        if entry["name"] == "augment_fanout_shards":
            fanout[database] = entry
        elif entry["name"] == "shard_partitions_scanned_total":
            scanned[database] = entry["value"]
        elif entry["name"] == "shard_partitions_pruned_total":
            pruned[database] = entry["value"]
    lines = []
    for database in sorted(set(fanout) | set(scanned) | set(pruned)):
        histogram = fanout.get(database)
        parts = [f"  {database:16s}"]
        if histogram is not None and histogram["count"]:
            parts.append(
                f"fanout mean={histogram['mean']:.2f} "
                f"max={histogram['max']:.0f} "
                f"({histogram['count']} scatters)"
            )
        parts.append(
            f"partitions scanned={scanned.get(database, 0):.0f} "
            f"pruned={pruned.get(database, 0):.0f}"
        )
        lines.append(" ".join(parts))
    return lines


def _trace(args, out) -> int:
    quepa, __ = _run_instrumented(args)
    from repro.obs import to_chrome_trace, tree_lines

    spans = quepa.obs.tracer.spans()
    if args.trace_format == "chrome":
        # Pure JSON on stdout so it pipes straight into a .json file
        # that Perfetto / chrome://tracing can open.
        json.dump(to_chrome_trace(spans), out)
        print(file=out)
        return 0
    lines = tree_lines(spans)
    for line in lines[: args.limit]:
        print(line, file=out)
    if len(lines) > args.limit:
        print(f"... and {len(lines) - args.limit} more spans", file=out)
    tracer_stats = quepa.obs.tracer.stats()
    if tracer_stats["dropped"]:
        print(
            f"warning: {tracer_stats['dropped']} spans dropped "
            f"(cap {tracer_stats['max_spans']})",
            file=out,
        )
    return 0


def _parse_query(text: str) -> Any:
    """CLI queries are strings; JSON objects/arrays become the dict and
    tuple query forms of the document/graph/key-value stores."""
    stripped = text.strip()
    if stripped.startswith(("{", "[")):
        try:
            loaded = json.loads(stripped)
        except ValueError:
            return text
        return tuple(loaded) if isinstance(loaded, list) else loaded
    return text


def _print_report(data: dict, out, indent: int = 0) -> None:
    pad = "  " * indent
    for key, value in data.items():
        if isinstance(value, dict):
            print(f"{pad}{key}:", file=out)
            _print_report(value, out, indent + 1)
        elif (
            isinstance(value, list)
            and value
            and all(isinstance(item, dict) for item in value)
        ):
            print(f"{pad}{key}:", file=out)
            for item in value:
                print(f"{pad}  -", file=out)
                _print_report(item, out, indent + 2)
        else:
            print(f"{pad}{key}: {value}", file=out)


def _explain(args, out) -> int:
    quepa = _load(args)
    config = None
    if args.augmenter:
        config = AugmentationConfig(
            augmenter=args.augmenter,
            batch_size=args.batch_size,
            threads_size=args.threads_size,
        )
    report = quepa.explain(
        args.database,
        _parse_query(args.query),
        level=args.level,
        config=config,
        analyze=args.analyze,
    )
    if args.as_json:
        json.dump(report, out, indent=2, default=str)
        print(file=out)
    else:
        _print_report(report, out)
    return 0


def _plan(args, out) -> int:
    from repro.planner import LogicalQuery

    quepa = _load(args)
    targets = None
    if args.targets:
        targets = tuple(
            name.strip() for name in args.targets.split(",") if name.strip()
        )
    logical = LogicalQuery(
        database=args.database,
        query=_parse_query(args.query),
        level=args.level,
        targets=targets,
    )
    engine = quepa.planner_engine()
    report = engine.explain_section(logical)
    if args.execute:
        execution = engine.execute(logical)
        result = execution.result
        report["executed"] = {
            "strategy": execution.chosen,
            "elapsed_s": result.elapsed,
            "queries_issued": result.queries_issued,
            "answer_size": len(result.answer),
            "out_of_memory": result.out_of_memory,
            "degraded": result.degraded,
        }
    if args.as_json:
        json.dump(report, out, indent=2, default=str)
        print(file=out)
    else:
        _print_report(report, out)
    return 0


def _events(args, out) -> int:
    quepa = _load(args)
    if args.slow_ms is not None:
        quepa.obs.slow_query_threshold = args.slow_ms / 1000.0
    if args.jsonl:
        quepa.obs.events.attach_sink(args.jsonl)
    config = None
    if args.augmenter:
        config = AugmentationConfig(
            augmenter=args.augmenter,
            batch_size=args.batch_size,
            threads_size=args.threads_size,
        )
    try:
        quepa.augmented_search(
            args.database,
            _parse_query(args.query),
            level=args.level,
            config=config,
        )
    finally:
        quepa.obs.events.close_sink()
    entries = quepa.obs.events.events(
        min_severity=args.min_severity, limit=args.limit
    )
    for event in entries:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(event.attrs.items())
        )
        print(
            f"[{event.severity:7s}] t={event.ts:.6f}s {event.kind}"
            + (f"  {attrs}" if attrs else ""),
            file=out,
        )
    stats = quepa.obs.events.stats()
    print(
        f"({stats['emitted']} events emitted, {stats['dropped']} dropped, "
        f"showing {len(entries)})",
        file=out,
    )
    return 0


def _faults(args, out) -> int:
    from repro.faults import FaultInjector, ResilienceConfig, parse_fault_spec

    polystore, aindex = load_snapshot(args.snapshot)
    injector = FaultInjector(seed=args.fault_seed)
    try:
        for spec_text in args.inject:
            injector.add(parse_fault_spec(spec_text))
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 1
    resilience = ResilienceConfig(
        retry_max_attempts=args.retries,
        breaker_failure_threshold=args.breaker_threshold,
    )
    config = AugmentationConfig(
        augmenter=args.augmenter or "sequential",
        batch_size=args.batch_size,
        threads_size=args.threads_size,
        skip_unavailable=True,
        timeout_budget=args.timeout_budget,
    )
    quepa = Quepa(
        polystore, aindex, resilience=resilience, faults=injector
    )
    answer = quepa.augmented_search(
        args.database,
        _parse_query(args.query),
        level=args.level,
        config=config,
    )
    stats = answer.stats
    report = {
        "answer": {
            "original_count": stats.original_count,
            "augmented_count": stats.augmented_count,
            "degraded": stats.degraded,
            "errors": dict(stats.errors),
            "unavailable_databases": list(stats.unavailable_databases),
            "elapsed_s": stats.elapsed,
            "queries_issued": stats.queries_issued,
        },
        **quepa.fault_report(),
    }
    if args.as_json:
        json.dump(report, out, indent=2, default=str)
        print(file=out)
        return 0
    flag = "DEGRADED" if stats.degraded else "complete"
    print(
        f"answer: {flag} — {stats.original_count} originals, "
        f"{stats.augmented_count} augmented, "
        f"{stats.elapsed * 1000:.2f} ms virtual",
        file=out,
    )
    _print_report({k: v for k, v in report.items() if k != "answer"}, out)
    return 0


def _serving_config(args):
    from repro.serving import ServingConfig

    return ServingConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_inflight_per_session=args.max_inflight,
        default_deadline=args.deadline,
        coalesce=args.coalesce,
        hedge=args.hedge,
        recorder_capacity=getattr(args, "capacity", 256),
        recorder_slow_threshold=getattr(args, "slow_threshold", None),
        slo_availability_objective=getattr(
            args, "availability_objective", 0.99
        ),
        slo_latency_threshold=getattr(args, "latency_threshold", 1.0),
        slo_latency_objective=getattr(args, "latency_objective", 0.95),
    )


def _real_quepa(polystore, aindex, time_scale: float) -> Quepa:
    """A QUEPA on the wall-clock runtime, as a served instance runs."""
    from repro.network import RealRuntime, centralized_profile

    profile = centralized_profile(list(polystore))
    runtime = RealRuntime(profile, time_scale=time_scale)
    return Quepa(polystore, aindex, profile=profile, runtime=runtime)


def _serve(args, out) -> int:
    import time as _time

    from repro.serving import QuepaServer
    from repro.ui.server import serve as http_serve

    polystore, aindex = load_snapshot(args.snapshot)
    quepa = _real_quepa(polystore, aindex, args.time_scale)
    with QuepaServer(quepa, _serving_config(args)) as server:
        endpoint = http_serve(
            quepa, host=args.host, port=args.port, server=server
        )
        try:
            print(
                f"serving {args.snapshot} at {endpoint.url} "
                f"({args.workers} workers, queue {args.queue_capacity}); "
                f"POST /query, GET /serving",
                file=out,
            )
            if args.duration is not None:
                _time.sleep(args.duration)
            else:  # pragma: no cover - interactive loop
                try:
                    while True:
                        _time.sleep(3600)
                except KeyboardInterrupt:
                    pass
        finally:
            endpoint.shutdown()
    totals = server.status()["totals"]
    shed = sum(totals["shed"].values())
    print(
        f"served {totals['completed']} requests "
        f"({shed} shed, {totals['failed']} failed)",
        file=out,
    )
    return 0


def _drive_embedded_load(args):
    """The embedded-load harness shared by loadgen/slo/record.

    Builds the seeded polystore, starts an embedded server, runs the
    closed-loop generator; returns ``(report, server, status)`` with
    the server stopped but its flight recorder and SLO monitor still
    readable.
    """
    from repro.serving import LoadGenerator, QuepaServer
    from repro.workloads.queries import QueryWorkload

    bundle = build_polyphony(
        stores=args.stores,
        scale=PolystoreScale(n_albums=args.albums),
        seed=args.seed,
    )
    quepa = _real_quepa(bundle.polystore, bundle.aindex, args.time_scale)
    workload = QueryWorkload(bundle)
    with QuepaServer(quepa, _serving_config(args)) as server:
        generator = LoadGenerator(
            server,
            workload,
            sizes=(args.size,),
            levels=(args.level,),
            seed=args.seed,
            deadline=args.deadline,
            zipf_s=args.zipf_s,
        )
        report = generator.run(args.clients, args.requests)
        status = server.status()
    return report, server, status


def _loadgen(args, out) -> int:
    report, _, status = _drive_embedded_load(args)
    if args.as_json:
        json.dump(
            {"load": report.as_dict(), "serving": status},
            out, indent=2, default=str,
        )
        print(file=out)
        return 0
    print(
        f"loadgen: {report.clients} clients x "
        f"{report.requests_per_client} requests "
        f"(seed {report.seed}) in {report.wall_s:.3f}s",
        file=out,
    )
    print(
        f"  {report.completed} completed, {report.shed} shed, "
        f"{report.failed} failed — {report.qps:.1f} QPS",
        file=out,
    )
    print(
        f"  latency ms: p50={report.latency_p50 * 1000:.2f} "
        f"p95={report.latency_p95 * 1000:.2f} "
        f"p99={report.latency_p99 * 1000:.2f} "
        f"mean={report.latency_mean * 1000:.2f}",
        file=out,
    )
    totals = status["totals"]
    shed = sum(totals["shed"].values())
    print(
        f"  server: admitted={totals['admitted']} "
        f"completed={totals['completed']} "
        f"shed={shed} failed={totals['failed']}",
        file=out,
    )
    accelerator = status.get("accelerator")
    if accelerator:
        coalesce = accelerator.get("coalesce")
        hedge = accelerator.get("hedge")
        if coalesce:
            print(
                f"  coalesce: {coalesce['followers']} shared / "
                f"{coalesce['leaders'] + coalesce['followers']} fetches "
                f"(hit rate {coalesce['hit_rate']:.1%})",
                file=out,
            )
        if hedge:
            print(
                f"  hedge: {hedge['issued']} issued, {hedge['won']} won "
                f"(win rate {hedge['win_rate']:.1%})",
                file=out,
            )
    return 0


def _slo(args, out) -> int:
    report, server, _ = _drive_embedded_load(args)
    slo = server.slo_report()
    if args.as_json:
        json.dump({"slo": slo}, out, indent=2, default=str)
        print(file=out)
        return 0
    print(
        f"slo: {report.completed} completed, {report.shed} shed, "
        f"{report.failed} failed ({report.qps:.1f} QPS)",
        file=out,
    )
    availability = slo["availability"]
    print(
        f"  availability: measured={availability['measured']:.4%} "
        f"objective={availability['objective']:.2%} "
        f"burn={availability['burn_rate']:.2f}x "
        f"{'healthy' if availability['healthy'] else 'BREACHED'}",
        file=out,
    )
    latency = slo["latency"]
    print(
        f"  latency<={latency['threshold_s']:.3f}s: "
        f"measured={latency['measured']:.4%} "
        f"objective={latency['objective']:.2%} "
        f"burn={latency['burn_rate']:.2f}x "
        f"{'healthy' if latency['healthy'] else 'BREACHED'}",
        file=out,
    )
    print(
        f"  overall: {'healthy' if slo['healthy'] else 'BREACHED'}",
        file=out,
    )
    return 0


def _record(args, out) -> int:
    _, server, _ = _drive_embedded_load(args)
    recorder = server.scheduler.recorder
    if recorder is None:  # pragma: no cover - CLI always enables it
        print("flight recorder disabled", file=out)
        return 1
    digests = recorder.as_dicts(
        session=args.session, status=args.status, limit=args.limit
    )
    stats = recorder.stats()
    if args.as_json:
        json.dump(
            {"requests": digests, "recorder": stats},
            out, indent=2, default=str,
        )
        print(file=out)
        return 0
    print(
        f"flight recorder: kept {stats['kept']} of "
        f"{stats['observed']} requests "
        f"(showing {len(digests)}, capacity {stats['capacity']})",
        file=out,
    )
    for digest in digests:
        line = (
            f"  {digest['trace_id']} #{digest['request_id']} "
            f"{digest['session']} {digest['kind']} {digest['status']} "
            f"wait={digest['queue_wait_s'] * 1000:.2f}ms "
            f"lat={digest['latency_s'] * 1000:.2f}ms "
            f"kept={digest['kept_because']}"
        )
        if digest["shed_reason"]:
            line += f" reason={digest['shed_reason']}"
        if digest["error"]:
            line += f" error={digest['error']}"
        print(line, file=out)
    return 0


def _ingest(args, out) -> int:
    """Stream seeded mutations through the CDC pipeline and report.

    Builds a Polyphony polystore, bootstraps an incremental collector
    (batch-equivalent full scan), then applies ``--updates`` seeded
    writes in pump batches. With ``--workdir`` the run also keeps a
    WAL, takes an incremental snapshot halfway, and finishes with a
    warm restart that replays only the delta.
    """
    import random
    import shutil
    import tempfile
    import time
    from pathlib import Path

    from repro.cdc import ChangeHub, IncrementalCollector
    from repro.collector import JaroWinklerComparator, PairwiseMatcher
    from repro.collector.matching import AttributeRule
    from repro.core.aindex import AIndex
    from repro.persistence import WriteAheadLog

    def matcher() -> PairwiseMatcher:
        return PairwiseMatcher(
            [AttributeRule("name", "title", JaroWinklerComparator())],
            identity_threshold=0.9,
            matching_threshold=0.6,
        )

    bundle = build_polyphony(
        args.stores,
        PolystoreScale(n_albums=args.albums),
        seed=args.seed,
        with_aindex=False,
    )
    polystore = bundle.polystore
    workdir = Path(args.workdir) if args.workdir else None
    scratch = None
    if workdir is None:
        scratch = tempfile.mkdtemp(prefix="repro-ingest-")
        workdir = Path(scratch)
    try:
        wal = WriteAheadLog(workdir / "wal.jsonl")
        aindex = AIndex()
        hub = ChangeHub(
            polystore, aindex, IncrementalCollector(matcher()), wal=wal
        )
        started = time.perf_counter()
        boot = hub.bootstrap()
        bootstrap_s = time.perf_counter() - started

        rng = random.Random(args.seed)
        catalogue = polystore.database("catalogue")
        transactions = polystore.database("transactions")
        pumps = 0
        applied = {"added": 0, "removed": 0, "events": 0}
        for step in range(args.updates):
            kind = rng.randrange(3)
            seq = rng.randrange(args.albums)
            doc_key = MusicGenerator.album_doc_key(seq)
            if kind == 0:
                try:
                    catalogue.update_one(
                        "albums", doc_key,
                        {"$set": {"title": f"Edition {step} Reissue"}},
                    )
                except ReproError:
                    pass  # a previous seeded delete removed this album
            elif kind == 1:
                new_id = args.albums + step
                title = f"Bonus Disc {new_id}"
                transactions.table("inventory").insert({
                    "id": MusicGenerator.inventory_key(new_id),
                    "seq": new_id,
                    "name": title,
                    "price": 9.99,
                })
                catalogue.insert(
                    "albums",
                    {"_id": MusicGenerator.album_doc_key(new_id),
                     "title": title},
                )
            else:
                catalogue.delete_one("albums", doc_key)
            if (step + 1) % max(args.batch, 1) == 0:
                report = hub.pump()
                pumps += 1
                applied["added"] += report.relations_added
                applied["removed"] += report.relations_removed
                applied["events"] += report.events
        final = hub.pump()
        pumps += 1
        applied["added"] += final.relations_added
        applied["removed"] += final.relations_removed
        applied["events"] += final.events

        snapdir = workdir / "snapshot"
        hub.snapshot(snapdir)
        # Post-snapshot delta: what the warm restart will replay.
        catalogue.insert(
            "albums",
            {"_id": MusicGenerator.album_doc_key(args.albums + args.updates),
             "title": "After The Snapshot"},
        )
        hub.pump()
        started = time.perf_counter()
        hub2, restart = ChangeHub.warm_restart(snapdir, matcher(), wal=wal)
        restart_s = time.perf_counter() - started

        status = hub.status()
        payload = {
            "bootstrap": {
                "objects_scanned": boot.objects_scanned,
                "candidate_pairs": boot.candidate_pairs,
                "relations": boot.relations_added,
                "seconds": bootstrap_s,
            },
            "ingest": {
                "updates": args.updates,
                "pumps": pumps,
                "events": applied["events"],
                "relations_added": applied["added"],
                "relations_removed": applied["removed"],
                "lag": status["lag"],
            },
            "warm_restart": {
                "replayed_events": restart["replayed_events"],
                "seconds": restart_s,
                "index_edges": hub2.aindex.edge_count(),
            },
        }
        if args.as_json:
            json.dump(payload, out, indent=2)
            print(file=out)
            return 0
        boot_info = payload["bootstrap"]
        print(
            f"bootstrap: {boot_info['objects_scanned']} objects, "
            f"{boot_info['candidate_pairs']} candidate pairs -> "
            f"{boot_info['relations']} base relations "
            f"in {boot_info['seconds']:.3f}s",
            file=out,
        )
        ing = payload["ingest"]
        print(
            f"ingest: {ing['updates']} writes in {ing['pumps']} pumps "
            f"({ing['events']} events) -> +{ing['relations_added']} / "
            f"-{ing['relations_removed']} base relations, lag={ing['lag']}",
            file=out,
        )
        warm = payload["warm_restart"]
        print(
            f"warm restart: replayed {warm['replayed_events']} events "
            f"in {warm['seconds']:.3f}s "
            f"({warm['index_edges']} index edges) — "
            f"vs {boot_info['seconds']:.3f}s cold bootstrap",
            file=out,
        )
        return 0
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _inspect(args, out) -> int:
    polystore, aindex = load_snapshot(args.snapshot)
    print(f"snapshot: {args.snapshot}", file=out)
    for name in sorted(polystore):
        store = polystore.database(name)
        print(
            f"  {name:16s} {store.engine:10s} "
            f"{store.count_objects():8d} objects "
            f"({', '.join(store.collections())})",
            file=out,
        )
    print(
        f"  A' index: {aindex.node_count()} nodes, "
        f"{aindex.edge_count()} p-relations",
        file=out,
    )
    return 0


def _explore(args, renderer: TextRenderer, out) -> int:
    quepa = _load(args)
    with quepa.explore(args.database, args.query) as session:
        if not session.results:
            print("the query returned no results", file=out)
            return 1
        current = session.results[0].key
        print(f"start: {current}", file=out)
        for step_number in range(args.steps):
            step = session.select(current)
            if not step.links:
                print("(no further links)", file=out)
                break
            print(renderer.render_links(step.links), file=out)
            current = step.links[0].key
            print(f"step {step_number + 1}: followed strongest link "
                  f"to {current}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
