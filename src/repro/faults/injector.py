"""Deterministic fault injection at the store-call boundary.

A :class:`FaultInjector` is attached to a
:class:`~repro.network.executor.Runtime` (``runtime.faults``); every
``ExecContext.store_call`` consults it before touching the store. With
no injector attached the hot path pays a single ``None`` check, so the
virtual-time benchmark numbers stay bit-identical (pinned by
tests/test_benchmark_guard.py and tests/test_faults.py).

Fault kinds:

``fail``
    The call never reaches the store: it is charged one roundtrip plus
    the per-query overhead and raises
    :class:`~repro.errors.InjectedFaultError`.
``stall``
    The call succeeds but an extra ``stall_seconds`` of latency is
    charged first (a slow network path or an overloaded engine).
``truncate``
    The call succeeds but only a ``keep_fraction`` prefix of the
    results comes back — a store that drops the tail of a batch.
``flap``
    The store alternates between available and unavailable windows
    driven by the *virtual clock*: down for ``down_seconds`` every
    ``up_seconds + down_seconds`` cycle.

Randomized kinds (``rate < 1``) draw from a per-database
``random.Random`` seeded from ``(seed, database)``, so a schedule is a
pure function of the seed, the call order and the clock — reruns are
bit-identical, which is what makes chaos tests assertable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace

KINDS: tuple[str, ...] = ("fail", "stall", "truncate", "flap")


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault on one database."""

    database: str
    kind: str
    #: Probability that an eligible call is affected (ignored by flap;
    #: superseded by ``every`` when set).
    rate: float = 1.0
    #: If > 0, affect every Nth call instead of drawing from the RNG.
    every: int = 0
    #: Extra latency charged by ``stall`` faults, in (virtual) seconds.
    stall_seconds: float = 0.05
    #: Fraction of results kept by ``truncate`` faults.
    keep_fraction: float = 0.5
    #: Flap cycle: available for ``up_seconds`` ...
    up_seconds: float = 1.0
    #: ... then unavailable for ``down_seconds``.
    down_seconds: float = 1.0
    #: Offset into the flap cycle at t = 0.
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}, expected one of {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.every < 0:
            raise ValueError(f"every must be >= 0, got {self.every}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in [0, 1], got {self.keep_fraction}"
            )
        if self.kind == "flap" and (
            self.up_seconds <= 0 or self.down_seconds <= 0
        ):
            raise ValueError("flap windows must be > 0 seconds")

    def as_dict(self) -> dict:
        return {
            "database": self.database,
            "kind": self.kind,
            "rate": self.rate,
            "every": self.every,
            "stall_seconds": self.stall_seconds,
            "keep_fraction": self.keep_fraction,
            "up_seconds": self.up_seconds,
            "down_seconds": self.down_seconds,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one store call."""

    action: str = "ok"  # "ok" | "fail" | "stall" | "truncate"
    extra_seconds: float = 0.0
    keep_fraction: float = 1.0

    @property
    def ok(self) -> bool:
        return self.action == "ok"


_OK = FaultDecision()


class FaultInjector:
    """Seeded, deterministic fault schedules, per database (thread-safe).

    Specs are evaluated in configuration order; the first one that
    fires wins, except that ``stall`` composes with a later ``fail`` /
    ``truncate`` decision (a slow *and* broken store is a realistic
    combination). Every fired fault is counted and, when an event
    journal is bound (see :meth:`bind`), emitted as a
    ``fault_injected`` warning event on the runtime's own clock.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._specs: dict[str, list[FaultSpec]] = {}
        self._rngs: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        self._fired: dict[tuple[str, str], int] = {}
        self._truncated_objects: dict[str, int] = {}
        self._lock = threading.Lock()
        self._journal = None
        self._metrics = None

    # -- configuration -------------------------------------------------------

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Register one fault spec; returns it for chaining."""
        with self._lock:
            self._specs.setdefault(spec.database, []).append(spec)
        return spec

    def inject(self, database: str, kind: str, **params) -> FaultSpec:
        """Shorthand: build and register a :class:`FaultSpec`."""
        return self.add(FaultSpec(database=database, kind=kind, **params))

    def clear(self, database: str | None = None) -> None:
        """Drop the schedules of ``database`` (or all of them)."""
        with self._lock:
            if database is None:
                self._specs.clear()
            else:
                self._specs.pop(database, None)

    def bind(self, obs) -> None:
        """Report injections into an :class:`~repro.obs.Observability`."""
        self._journal = obs.events
        self._metrics = obs.metrics

    # -- the decision hot path ----------------------------------------------

    def decide(self, database: str, now: float) -> FaultDecision:
        """What should happen to the next call against ``database``."""
        specs = self._specs.get(database)
        if not specs:
            return _OK
        with self._lock:
            call = self._calls.get(database, 0) + 1
            self._calls[database] = call
            decision = _OK
            stall = 0.0
            for spec in specs:
                if not self._fires(spec, database, call, now):
                    continue
                self._fired[(database, spec.kind)] = (
                    self._fired.get((database, spec.kind), 0) + 1
                )
                if spec.kind == "stall":
                    stall += spec.stall_seconds
                    self._emit(database, spec, call, now)
                    continue
                action = "fail" if spec.kind == "flap" else spec.kind
                decision = FaultDecision(
                    action=action,
                    keep_fraction=spec.keep_fraction,
                )
                self._emit(database, spec, call, now)
                break
            if stall:
                decision = replace(decision, extra_seconds=stall)
            return decision

    def _fires(
        self, spec: FaultSpec, database: str, call: int, now: float
    ) -> bool:
        if spec.kind == "flap":
            cycle = spec.up_seconds + spec.down_seconds
            return (now + spec.phase) % cycle >= spec.up_seconds
        if spec.every > 0:
            return call % spec.every == 0
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        rng = self._rngs.get(database)
        if rng is None:
            rng = random.Random(f"{self.seed}:{database}")
            self._rngs[database] = rng
        return rng.random() < spec.rate

    def _emit(
        self, database: str, spec: FaultSpec, call: int, now: float
    ) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "faults_injected_total", database=database, kind=spec.kind
            ).inc()
        if self._journal is not None:
            self._journal.emit(
                "fault_injected",
                severity="warning",
                ts=now,
                database=database,
                fault_kind=spec.kind,
                call=call,
            )

    def note_truncation(self, database: str, dropped: int) -> None:
        """Record how many objects a truncate fault dropped."""
        with self._lock:
            self._truncated_objects[database] = (
                self._truncated_objects.get(database, 0) + dropped
            )

    # -- inspection ----------------------------------------------------------

    def specs(self) -> list[FaultSpec]:
        with self._lock:
            return [
                spec for group in self._specs.values() for spec in group
            ]

    def stats(self) -> dict:
        """Injection counters, JSON-ready (the CLI/UI ``faults`` view)."""
        with self._lock:
            fired: dict[str, dict[str, int]] = {}
            for (database, kind), count in sorted(self._fired.items()):
                fired.setdefault(database, {})[kind] = count
            return {
                "seed": self.seed,
                "specs": [
                    spec.as_dict()
                    for group in self._specs.values()
                    for spec in group
                ],
                "calls_by_database": dict(sorted(self._calls.items())),
                "fired_by_database": fired,
                "truncated_objects_by_database": dict(
                    sorted(self._truncated_objects.items())
                ),
            }


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``database:kind[:key=value,...]``.

    Examples::

        catalogue:fail
        catalogue:fail:rate=0.5
        discount:stall:stall_seconds=0.2,every=3
        similar:flap:up_seconds=0.5,down_seconds=0.5
    """
    parts = text.split(":", 2)
    if len(parts) < 2:
        raise ValueError(
            f"fault spec {text!r} must look like 'database:kind[:k=v,...]'"
        )
    database, kind = parts[0], parts[1]
    params: dict[str, float | int] = {}
    if len(parts) == 3 and parts[2]:
        for pair in parts[2].split(","):
            key, _, value = pair.partition("=")
            if not _:
                raise ValueError(f"bad fault parameter {pair!r} in {text!r}")
            key = key.strip()
            params[key] = int(value) if key == "every" else float(value)
    try:
        return FaultSpec(database=database, kind=kind, **params)
    except TypeError as exc:
        raise ValueError(f"bad fault spec {text!r}: {exc}") from None
