"""Resilience at the store boundary: retries, breakers, degradation.

A :class:`ResilienceManager` (one per :class:`~repro.core.system.Quepa`,
reached from connectors) wraps every store call with:

* **retry with exponential backoff + jitter** — virtual-time aware: the
  wait is charged through ``ctx.sleep`` so backoff shows up on the
  virtual clock (deterministically, from a seeded RNG) instead of
  wall-clock sleeping;
* **a per-store circuit breaker** — ``closed -> open`` after
  ``failure_threshold`` consecutive failures, ``open -> half_open``
  once ``recovery_timeout`` (runtime-clock) seconds have passed,
  ``half_open -> closed`` after ``half_open_max_calls`` successful
  probes. Trips and recoveries are emitted as events in the journal
  (``breaker_open`` / ``breaker_half_open`` / ``breaker_closed``).

The timeout budget and graceful degradation live one level up, in
:class:`~repro.core.augmenters.base.Augmenter` — see docs/RESILIENCE.md
for the full fault model.
"""

from __future__ import annotations

import random
import threading
from dataclasses import asdict, dataclass

from repro.errors import CircuitOpenError, StoreError


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilience layer (documented in docs/API.md)."""

    #: Total attempts per store call (1 = no retry).
    retry_max_attempts: int = 3
    #: Backoff before attempt ``k`` is ``base * multiplier**(k-1) *
    #: (1 + jitter * U)`` with ``U`` drawn from the seeded RNG.
    retry_base_delay: float = 0.05
    retry_multiplier: float = 2.0
    retry_jitter: float = 0.0
    retry_seed: int = 0
    #: Consecutive failures that trip a breaker open.
    breaker_failure_threshold: int = 5
    #: Runtime-clock seconds an open breaker waits before half-open.
    breaker_recovery_timeout: float = 1.0
    #: Successful half-open probes required to close again.
    breaker_half_open_max_calls: int = 1
    #: Arm graceful degradation: augmentations skip unreachable stores
    #: and report them instead of raising.
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_base_delay < 0 or self.retry_jitter < 0:
            raise ValueError("retry delays must be >= 0")
        if self.retry_multiplier <= 0:
            raise ValueError("retry_multiplier must be > 0")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_recovery_timeout < 0:
            raise ValueError("breaker_recovery_timeout must be >= 0")
        if self.breaker_half_open_max_calls < 1:
            raise ValueError("breaker_half_open_max_calls must be >= 1")


class CircuitBreaker:
    """Per-store closed/open/half-open breaker on the runtime's clock."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        database: str,
        failure_threshold: int = 5,
        recovery_timeout: float = 1.0,
        half_open_max_calls: int = 1,
        emit=None,
    ) -> None:
        self.database = database
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_max_calls = half_open_max_calls
        self._emit = emit
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self, now: float, trace_id: str | None = None) -> bool:
        """May a call go out right now? (May move open -> half-open.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if now < self._opened_at + self.recovery_timeout:
                    return False
                self._state = self.HALF_OPEN
                self._half_open_inflight = 0
                self._half_open_successes = 0
                self._event(
                    "breaker_half_open", now, trace_id=trace_id
                )
            if self._half_open_inflight >= self.half_open_max_calls:
                return False
            self._half_open_inflight += 1
            return True

    def record_success(
        self, now: float, trace_id: str | None = None
    ) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._release_probe_locked()
                self._half_open_successes += 1
                if self._half_open_successes >= self.half_open_max_calls:
                    self._state = self.CLOSED
                    self._consecutive_failures = 0
                    self.recoveries += 1
                    self._event(
                        "breaker_closed",
                        now,
                        recovered=True,
                        trace_id=trace_id,
                    )
            else:
                self._consecutive_failures = 0

    def record_failure(
        self, now: float, trace_id: str | None = None
    ) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._release_probe_locked()
                self._trip(now, reopened=True, trace_id=trace_id)
                return
            if self._state == self.OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(now, trace_id=trace_id)

    def release(self, now: float) -> None:
        """Return a half-open probe slot without a verdict.

        Called when an admitted call dies of something that is not a
        store error (a cancelled worker, an unrelated exception), so
        the probe neither succeeded nor failed. Without this, every
        such call leaks one ``_half_open_inflight`` slot; with
        ``half_open_max_calls`` slots leaked the breaker would refuse
        all probes and wedge half-open forever under concurrency.
        """
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._release_probe_locked()

    def _release_probe_locked(self) -> None:
        # Probe slots count calls *in flight*, so every admitted probe
        # must give its slot back exactly once, whatever its outcome.
        # A verdict may also land after another thread already closed
        # or re-tripped the breaker (slots were reset); the floor at
        # zero makes such late verdicts harmless.
        if self._half_open_inflight > 0:
            self._half_open_inflight -= 1

    def _trip(
        self,
        now: float,
        reopened: bool = False,
        trace_id: str | None = None,
    ) -> None:
        self._state = self.OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self.trips += 1
        self._event(
            "breaker_open", now, reopened=reopened, trace_id=trace_id
        )

    def _event(self, kind: str, now: float, **attrs) -> None:
        if self._emit is not None:
            # The transition is a store-level fact; the trace id (when
            # present) names the request whose call tipped it over.
            if attrs.get("trace_id") is None:
                attrs.pop("trace_id", None)
            self._emit(kind, now, self.database, **attrs)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "database": self.database,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opened_at": self._opened_at,
                "trips": self.trips,
                "recoveries": self.recoveries,
                "failure_threshold": self.failure_threshold,
                "recovery_timeout": self.recovery_timeout,
            }


class ResilienceManager:
    """Retry + breaker execution of store calls, shared per system.

    ``call`` preserves the :class:`~repro.network.executor.ExecContext`
    contract: cost accounting still flows through ``ctx.store_call``,
    so both runtimes charge every attempt (and every backoff wait)
    on their own clock.
    """

    def __init__(self, config: ResilienceConfig | None = None, obs=None) -> None:
        self.config = config or ResilienceConfig()
        self._obs = obs
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retry_rngs: dict[str, random.Random] = {}
        self._retries: dict[str, int] = {}
        self._fast_fails: dict[str, int] = {}
        self._lock = threading.Lock()

    def bind(self, obs) -> None:
        """Attach the journal/metrics bundle events are reported to."""
        self._obs = obs

    # -- execution -----------------------------------------------------------

    def call(self, ctx, database: str, fn, query=None):
        """Run one store call under the retry + breaker policy."""
        breaker = self.breaker(database)
        trace_id = getattr(ctx, "_trace_id", None)
        if not breaker.allow(ctx.now, trace_id=trace_id):
            self._count_fast_fail(database)
            raise CircuitOpenError(
                f"{database}: circuit breaker is open"
            )
        attempt = 1
        while True:
            try:
                results = ctx.store_call(database, fn, query)
            except StoreError as exc:
                breaker.record_failure(ctx.now, trace_id=trace_id)
                if (
                    attempt >= self.config.retry_max_attempts
                    or not breaker.allow(ctx.now, trace_id=trace_id)
                ):
                    raise
                delay = self.backoff_delay(database, attempt)
                self._count_retry(
                    database, attempt, delay, ctx.now, exc,
                    trace_id=trace_id,
                )
                ctx.sleep(delay)
                attempt += 1
                continue
            except BaseException:
                # Not a store verdict (worker cancelled, unrelated bug):
                # give any half-open probe slot back so the breaker
                # cannot wedge with phantom in-flight probes.
                breaker.release(ctx.now)
                raise
            breaker.record_success(ctx.now, trace_id=trace_id)
            return results

    def backoff_delay(self, database: str, attempt: int) -> float:
        """The wait before retry ``attempt`` (1-based), deterministic.

        Each database consumes its own seeded RNG in retry order, so a
        rerun of the same schedule reproduces the same jitter — and a
        test can replay ``random.Random(f"{seed}:{database}:retry")``
        to predict the exact virtual-time waits.
        """
        config = self.config
        delay = config.retry_base_delay * config.retry_multiplier ** (
            attempt - 1
        )
        if config.retry_jitter:
            with self._lock:
                rng = self._retry_rngs.get(database)
                if rng is None:
                    rng = random.Random(
                        f"{config.retry_seed}:{database}:retry"
                    )
                    self._retry_rngs[database] = rng
                delay *= 1.0 + config.retry_jitter * rng.random()
        return delay

    # -- internals -----------------------------------------------------------

    def breaker(self, database: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(database)
            if breaker is None:
                breaker = CircuitBreaker(
                    database,
                    failure_threshold=self.config.breaker_failure_threshold,
                    recovery_timeout=self.config.breaker_recovery_timeout,
                    half_open_max_calls=(
                        self.config.breaker_half_open_max_calls
                    ),
                    emit=self._breaker_event,
                )
                self._breakers[database] = breaker
            return breaker

    def _breaker_event(
        self, kind: str, now: float, database: str, **attrs
    ) -> None:
        obs = self._obs
        if obs is None:
            return
        severity = "warning" if kind == "breaker_open" else "info"
        obs.events.emit(
            kind, severity=severity, ts=now, database=database, **attrs
        )
        obs.metrics.counter(
            "breaker_transitions_total", database=database, to=kind
        ).inc()

    def _count_retry(
        self,
        database: str,
        attempt: int,
        delay: float,
        now: float,
        exc,
        trace_id: str | None = None,
    ) -> None:
        with self._lock:
            self._retries[database] = self._retries.get(database, 0) + 1
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "store_retries_total", database=database
            ).inc()
            extra = {} if trace_id is None else {"trace_id": trace_id}
            obs.events.emit(
                "retry",
                severity="debug",
                ts=now,
                database=database,
                attempt=attempt,
                delay_s=delay,
                error=str(exc),
                **extra,
            )

    def _count_fast_fail(self, database: str) -> None:
        with self._lock:
            self._fast_fails[database] = (
                self._fast_fails.get(database, 0) + 1
            )
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "breaker_fast_fails_total", database=database
            ).inc()

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Config + breaker states + retry counters, JSON-ready."""
        with self._lock:
            breakers = {
                database: breaker.snapshot()
                for database, breaker in sorted(self._breakers.items())
            }
            return {
                "config": asdict(self.config),
                "breakers": breakers,
                "retries_by_database": dict(sorted(self._retries.items())),
                "fast_fails_by_database": dict(
                    sorted(self._fast_fails.items())
                ),
            }
