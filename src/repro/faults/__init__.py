"""Fault injection and resilience for the polystore boundary.

QUEPA's loose coupling means any store can fail, stall, return
truncated results or flap while the rest of the polystore keeps
answering. This package provides both halves of that story:

* :mod:`repro.faults.injector` — :class:`FaultInjector`, a seeded,
  deterministic fault schedule evaluated inside
  ``ExecContext.store_call`` (virtual-clock driven, so chaos tests are
  reproducible bit-for-bit);
* :mod:`repro.faults.resilience` — :class:`ResilienceManager` with
  per-store retry (exponential backoff + deterministic jitter, charged
  on the runtime's own clock), per-store circuit breakers whose trips
  and recoveries land in the event journal, and the configuration for
  graceful degradation.

See docs/RESILIENCE.md for the fault model, the breaker state machine
and the degradation semantics.
"""

from repro.faults.injector import (
    KINDS,
    FaultDecision,
    FaultInjector,
    FaultSpec,
    parse_fault_spec,
)
from repro.faults.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilienceManager,
)

__all__ = [
    "KINDS",
    "CircuitBreaker",
    "FaultDecision",
    "FaultInjector",
    "FaultSpec",
    "ResilienceConfig",
    "ResilienceManager",
    "parse_fault_spec",
]
