"""The polystore: a registry of named databases living in diverse stores.

``Polystore`` owns no data; it maps database names to :class:`Store`
instances (relational, document, graph, key-value) and resolves global
keys to the store that holds them. This mirrors QUEPA's plug-and-play
posture: each database keeps its native engine and access language.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import UnknownDatabaseError
from repro.model.objects import DataObject, GlobalKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stores.base import Store


class Polystore:
    """A set of databases ``P = {D1, ..., Dn}`` with their engines."""

    def __init__(self) -> None:
        self._databases: dict[str, "Store"] = {}

    # -- registry ----------------------------------------------------------

    def attach(self, name: str, store: "Store") -> None:
        """Register ``store`` under the database name ``name``."""
        if name in self._databases:
            raise ValueError(f"database {name!r} already attached")
        self._databases[name] = store
        store.database_name = name

    def detach(self, name: str) -> "Store":
        """Remove and return the database ``name``."""
        try:
            return self._databases.pop(name)
        except KeyError:
            raise UnknownDatabaseError(name) from None

    def database(self, name: str) -> "Store":
        try:
            return self._databases[name]
        except KeyError:
            raise UnknownDatabaseError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._databases

    def __len__(self) -> int:
        return len(self._databases)

    def __iter__(self) -> Iterator[str]:
        return iter(self._databases)

    @property
    def databases(self) -> Mapping[str, "Store"]:
        return dict(self._databases)

    # -- object access -----------------------------------------------------

    def get(self, key: GlobalKey) -> DataObject:
        """Fetch the object addressed by ``key`` from its home store."""
        return self.database(key.database).get(key)

    def get_many(self, keys: list[GlobalKey]) -> list[DataObject]:
        """Fetch several objects, grouping by database for efficiency.

        Missing objects are silently dropped (the paper's lazy-deletion
        rule: objects gone from the polystore simply vanish from answers).
        The output preserves the input order of the found objects.
        """
        by_database: dict[str, list[GlobalKey]] = {}
        for key in keys:
            by_database.setdefault(key.database, []).append(key)
        found: dict[GlobalKey, DataObject] = {}
        for database, db_keys in by_database.items():
            for obj in self.database(database).multi_get(db_keys):
                found[obj.key] = obj
        return [found[key] for key in keys if key in found]

    def exists(self, key: GlobalKey) -> bool:
        """True if the object addressed by ``key`` is in the polystore."""
        if key.database not in self._databases:
            return False
        return self._databases[key.database].exists(key)

    def total_objects(self) -> int:
        """Total number of data objects across all databases."""
        return sum(store.count_objects() for store in self._databases.values())
