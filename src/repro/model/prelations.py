"""Probabilistic relations between data objects (Definition 1).

A p-relation ``o1 R_p o2`` states that relation ``R`` holds between two
objects with probability ``p`` in ``(0, 1]``. ``R`` is either:

* *identity* (``~``) — reflexive, symmetric, transitive: the two objects
  refer to the same real-world entity;
* *matching* (``=``) — reflexive, symmetric, not necessarily transitive:
  the two objects share some common information.

The Consistency Condition (Section II-A) — ``o1 = o2`` and ``o2 ~ o3``
implies ``o1 = o3`` — is enforced by the A' index at insertion time, not
here; this module only models individual edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import InvalidProbabilityError
from repro.model.objects import GlobalKey


class RelationType(enum.Enum):
    """The two relation types of Definition 1."""

    IDENTITY = "identity"
    MATCHING = "matching"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class PRelation:
    """An undirected probabilistic edge between two global keys.

    Endpoints are normalized so that ``left <= right`` in string order,
    making ``PRelation`` values canonical: the same logical edge always
    compares and hashes equal regardless of argument order.
    """

    left: GlobalKey
    right: GlobalKey
    type: RelationType
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise InvalidProbabilityError(
                f"p-relation probability must be in (0, 1], got {self.probability}"
            )
        if str(self.left) > str(self.right):
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
        if self.left == self.right:
            raise InvalidProbabilityError(
                f"a p-relation must connect two distinct objects: {self.left}"
            )

    @classmethod
    def identity(
        cls, left: GlobalKey, right: GlobalKey, probability: float
    ) -> "PRelation":
        return cls(left, right, RelationType.IDENTITY, probability)

    @classmethod
    def matching(
        cls, left: GlobalKey, right: GlobalKey, probability: float
    ) -> "PRelation":
        return cls(left, right, RelationType.MATCHING, probability)

    def other(self, key: GlobalKey) -> GlobalKey:
        """The endpoint opposite to ``key``."""
        if key == self.left:
            return self.right
        if key == self.right:
            return self.left
        raise KeyError(f"{key} is not an endpoint of {self}")

    def endpoints(self) -> tuple[GlobalKey, GlobalKey]:
        return (self.left, self.right)

    def __str__(self) -> str:
        symbol = "~" if self.type is RelationType.IDENTITY else "="
        return f"{self.left} {symbol}[{self.probability:.3f}] {self.right}"
