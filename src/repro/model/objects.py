"""Data objects and global keys (PDM, Section II-A of the paper).

A data object ``o = (k, v)`` is a key plus an atomic piece of data; a
tuple, a JSON document, a graph node and a key-value entry are all data
objects of their respective stores. Inside a polystore an object is
uniquely addressed by its *global key* ``database.collection.key``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import InvalidGlobalKeyError

#: Separator used in the textual form of a global key.
GLOBAL_KEY_SEPARATOR = "."


@dataclass(frozen=True, slots=True)
class GlobalKey:
    """Unique address of a data object inside a polystore.

    The textual form is ``database.collection.key``. Database and
    collection names must not contain the separator; the local key may
    (e.g. Redis keys such as ``drop.k1:cure:wish``), which is why parsing
    splits on the first two separators only.
    """

    database: str
    collection: str
    key: str
    #: Memoized textual form. Keys are interned all over the hot paths
    #: (plan ordering, answer assembly, freeze determinism), so the join
    #: is computed once per key instead of once per __str__ call.
    _text: str = field(init=False, repr=False, compare=False, default="")
    #: Memoized hash. Keys index every hot dict (cache shards, planner
    #: distance maps, batch regrouping), and the generated dataclass
    #: hash re-tuples three strings per call; 0 means "not yet computed".
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not self.database or GLOBAL_KEY_SEPARATOR in self.database:
            raise InvalidGlobalKeyError(
                f"invalid database name in global key: {self.database!r}"
            )
        if not self.collection or GLOBAL_KEY_SEPARATOR in self.collection:
            raise InvalidGlobalKeyError(
                f"invalid collection name in global key: {self.collection!r}"
            )
        if not self.key:
            raise InvalidGlobalKeyError("empty local key in global key")

    @classmethod
    def parse(cls, text: str) -> "GlobalKey":
        """Parse ``db.collection.key`` (key may itself contain dots)."""
        parts = text.split(GLOBAL_KEY_SEPARATOR, 2)
        if len(parts) != 3:
            raise InvalidGlobalKeyError(
                f"global key must have three dot-separated parts: {text!r}"
            )
        return cls(parts[0], parts[1], parts[2])

    def __str__(self) -> str:
        text = self._text
        if not text:
            text = GLOBAL_KEY_SEPARATOR.join(
                (self.database, self.collection, self.key)
            )
            object.__setattr__(self, "_text", text)
        return text

    def __hash__(self) -> int:
        value = self._hash
        if value == 0:
            value = hash((self.database, self.collection, self.key)) or -1
            object.__setattr__(self, "_hash", value)
        return value


@dataclass(frozen=True, slots=True)
class DataObject:
    """A data object of the polystore: a global key plus its value.

    ``value`` is the store-native payload: a column/value mapping for a
    relational tuple, a (possibly nested) document for a document store,
    a property map for a graph node, or a scalar for a key-value entry.
    Values are stored as-is; equality and hashing are by global key, which
    is what the augmentation operator deduplicates on.
    """

    key: GlobalKey
    value: Any = None
    #: Probability attached by augmentation (1.0 for original results).
    probability: float = 1.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataObject):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def with_probability(self, probability: float) -> "DataObject":
        """Return a copy of this object carrying ``probability``."""
        return DataObject(self.key, self.value, probability)

    def fields(self) -> Iterator[tuple[str, Any]]:
        """Iterate ``(name, value)`` pairs when the payload is a mapping.

        Scalar payloads yield a single ``("value", payload)`` pair so all
        objects can be compared uniformly by the collector.
        """
        if isinstance(self.value, Mapping):
            yield from self.value.items()
        else:
            yield ("value", self.value)


@dataclass(slots=True)
class AugmentedObject:
    """One element of an augmented answer: an object plus its provenance.

    ``source`` is the result object the augmentation started from (None
    for the original results themselves) and ``path`` the chain of global
    keys that led here, useful for explanation and for the exploration UI.
    """

    object: DataObject
    source: GlobalKey | None = None
    path: tuple[GlobalKey, ...] = field(default_factory=tuple)

    @property
    def probability(self) -> float:
        return self.object.probability

    @property
    def key(self) -> GlobalKey:
        return self.object.key
