"""PDM — the Polystore Data Model of the paper (Section II-A).

A polystore is a set of databases, each made of collections of data
objects. A data object is a key/value pair whose key is unique inside its
collection; it is globally identified by a :class:`GlobalKey`
(``database.collection.key``). Objects in different databases are related
by probabilistic :class:`PRelation` links (identity ``~`` or matching
``=``), the raw material of the augmentation operator.
"""

from repro.model.objects import DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation, RelationType

__all__ = [
    "DataObject",
    "GlobalKey",
    "PRelation",
    "Polystore",
    "RelationType",
]
