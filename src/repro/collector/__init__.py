"""The Collector: building an A' index from the polystore (Section III-D).

The paper treats record linkage as a black box pipeline: BLAST-style
unsupervised *blocking* partitions data objects into candidate blocks,
Duke-style *pairwise matching* scores each candidate pair with a
weighted combination of attribute comparators, and thresholds turn
scores into p-relations — identity for scores >= 0.9, matching for
scores in [0.6, 0.9), as the evaluation section calibrates them. A
genetic algorithm tunes comparator weights against labelled pairs, like
Duke's built-in tuner.
"""

from repro.collector.blocking import TokenBlocker
from repro.collector.collector import Collector, CollectorSettings
from repro.collector.comparators import (
    ExactComparator,
    JaroWinklerComparator,
    LevenshteinComparator,
    NumericComparator,
    TokenOverlapComparator,
)
from repro.collector.genetic import GeneticTuner
from repro.collector.matching import MatchDecision, PairwiseMatcher

__all__ = [
    "Collector",
    "CollectorSettings",
    "ExactComparator",
    "GeneticTuner",
    "JaroWinklerComparator",
    "LevenshteinComparator",
    "MatchDecision",
    "NumericComparator",
    "PairwiseMatcher",
    "TokenBlocker",
    "TokenOverlapComparator",
]
