"""Attribute comparators for pairwise matching (the Duke stand-ins).

Each comparator maps a pair of attribute values to a similarity in
[0, 1]. The string metrics (Levenshtein, Jaro, Jaro-Winkler, token
overlap) are implemented from scratch; a numeric comparator handles
quantities with relative tolerance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class Comparator(ABC):
    """Similarity of two attribute values, in [0, 1]."""

    name = "abstract"

    @abstractmethod
    def compare(self, left: Any, right: Any) -> float:
        """Return the similarity of the two values."""

    @staticmethod
    def _text(value: Any) -> str:
        return str(value).strip().lower() if value is not None else ""


class ExactComparator(Comparator):
    """1.0 on equality (case-insensitive for strings), else 0.0."""

    name = "exact"

    def compare(self, left: Any, right: Any) -> float:
        if left is None or right is None:
            return 0.0
        if isinstance(left, str) or isinstance(right, str):
            return 1.0 if self._text(left) == self._text(right) else 0.0
        return 1.0 if left == right else 0.0


def levenshtein_distance(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance (two-row variant)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


class LevenshteinComparator(Comparator):
    """1 - normalized edit distance."""

    name = "levenshtein"

    def compare(self, left: Any, right: Any) -> float:
        a, b = self._text(left), self._text(right)
        if not a and not b:
            return 0.0
        longest = max(len(a), len(b))
        return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity with the standard matching-window definition."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if not b_matched[j] and b[j] == char:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


class JaroWinklerComparator(Comparator):
    """Jaro with the Winkler common-prefix bonus (scaling 0.1, max 4)."""

    name = "jaro_winkler"

    def __init__(self, prefix_scale: float = 0.1, max_prefix: int = 4) -> None:
        self.prefix_scale = prefix_scale
        self.max_prefix = max_prefix

    def compare(self, left: Any, right: Any) -> float:
        a, b = self._text(left), self._text(right)
        if not a or not b:
            return 0.0
        jaro = jaro_similarity(a, b)
        prefix = 0
        for char_a, char_b in zip(a, b):
            if char_a != char_b or prefix >= self.max_prefix:
                break
            prefix += 1
        return jaro + prefix * self.prefix_scale * (1.0 - jaro)


class TokenOverlapComparator(Comparator):
    """Jaccard overlap of whitespace tokens (good for titles)."""

    name = "token_overlap"

    def compare(self, left: Any, right: Any) -> float:
        tokens_a = set(self._text(left).split())
        tokens_b = set(self._text(right).split())
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


class NumericComparator(Comparator):
    """Similarity of two numbers under a relative tolerance.

    Equal values score 1.0; the score decays linearly to 0.0 as the
    relative difference reaches ``tolerance``.
    """

    name = "numeric"

    def __init__(self, tolerance: float = 0.5) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance

    def compare(self, left: Any, right: Any) -> float:
        try:
            a = float(left)
            b = float(right)
        except (TypeError, ValueError):
            return 0.0
        if a == b:
            return 1.0
        scale = max(abs(a), abs(b))
        if scale == 0:
            return 1.0
        relative = abs(a - b) / scale
        if relative >= self.tolerance:
            return 0.0
        return 1.0 - relative / self.tolerance
