"""Genetic tuning of matcher weights and thresholds (Duke's tuner).

Duke ships a genetic algorithm that searches comparator configurations
against labelled pairs; this is the equivalent. A genome is the vector
of rule weights plus the two thresholds; fitness is the F1 score of the
resulting matcher on the labelled pairs. Standard generational GA:
tournament selection, blend crossover, gaussian mutation, elitism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.collector.matching import AttributeRule, PairwiseMatcher
from repro.model.objects import DataObject


@dataclass(frozen=True)
class LabeledPair:
    """A ground-truth example: two objects and whether they match."""

    left: DataObject
    right: DataObject
    is_match: bool


@dataclass
class TunerResult:
    matcher: PairwiseMatcher
    fitness: float
    generations: int


class GeneticTuner:
    """Evolves (weights, thresholds) to maximize F1 on labelled pairs."""

    def __init__(
        self,
        rules: list[AttributeRule],
        population_size: int = 30,
        generations: int = 25,
        mutation_rate: float = 0.25,
        elite: int = 2,
        seed: int = 11,
    ) -> None:
        if population_size < 4:
            raise ValueError("population_size must be at least 4")
        self.rules = rules
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self._rng = random.Random(seed)

    # genome = [w1..wn, matching_threshold, identity_margin]

    def tune(self, examples: list[LabeledPair]) -> TunerResult:
        """Run the GA and return the best matcher found."""
        if not examples:
            raise ValueError("cannot tune without labelled pairs")
        population = [self._random_genome() for __ in range(self.population_size)]
        best_genome = population[0]
        best_fitness = -1.0
        for generation in range(self.generations):
            scored = sorted(
                ((self._fitness(genome, examples), genome) for genome in population),
                key=lambda pair: -pair[0],
            )
            if scored[0][0] > best_fitness:
                best_fitness, best_genome = scored[0]
            if best_fitness >= 0.999:
                return TunerResult(
                    self._matcher(best_genome), best_fitness, generation + 1
                )
            population = self._next_generation(scored)
        return TunerResult(self._matcher(best_genome), best_fitness, self.generations)

    # -- GA machinery --------------------------------------------------------

    def _random_genome(self) -> list[float]:
        weights = [self._rng.uniform(0.1, 1.0) for __ in self.rules]
        matching = self._rng.uniform(0.4, 0.8)
        margin = self._rng.uniform(0.05, 0.3)
        return weights + [matching, margin]

    def _matcher(self, genome: list[float]) -> PairwiseMatcher:
        weights = genome[: len(self.rules)]
        matching = min(max(genome[-2], 0.05), 0.94)
        identity = min(matching + max(genome[-1], 0.01), 1.0)
        rules = [
            AttributeRule(
                rule.left_field, rule.right_field, rule.comparator, max(w, 0.01)
            )
            for rule, w in zip(self.rules, weights)
        ]
        return PairwiseMatcher(
            rules, identity_threshold=identity, matching_threshold=matching
        )

    def _fitness(self, genome: list[float], examples: list[LabeledPair]) -> float:
        matcher = self._matcher(genome)
        true_positive = false_positive = false_negative = 0
        for example in examples:
            predicted = (
                matcher.score(example.left, example.right)
                >= matcher.matching_threshold
            )
            if predicted and example.is_match:
                true_positive += 1
            elif predicted:
                false_positive += 1
            elif example.is_match:
                false_negative += 1
        if true_positive == 0:
            return 0.0
        precision = true_positive / (true_positive + false_positive)
        recall = true_positive / (true_positive + false_negative)
        return 2 * precision * recall / (precision + recall)

    def _next_generation(
        self, scored: list[tuple[float, list[float]]]
    ) -> list[list[float]]:
        population = [genome for __, genome in scored[: self.elite]]
        while len(population) < self.population_size:
            parent_a = self._tournament(scored)
            parent_b = self._tournament(scored)
            child = self._crossover(parent_a, parent_b)
            self._mutate(child)
            population.append(child)
        return population

    def _tournament(
        self, scored: list[tuple[float, list[float]]], size: int = 3
    ) -> list[float]:
        contenders = self._rng.sample(scored, min(size, len(scored)))
        return max(contenders, key=lambda pair: pair[0])[1]

    def _crossover(self, a: list[float], b: list[float]) -> list[float]:
        mix = self._rng.random()
        return [mix * x + (1.0 - mix) * y for x, y in zip(a, b)]

    def _mutate(self, genome: list[float]) -> None:
        for index in range(len(genome)):
            if self._rng.random() < self.mutation_rate:
                genome[index] = max(
                    0.01, genome[index] + self._rng.gauss(0.0, 0.1)
                )
