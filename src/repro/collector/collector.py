"""The Collector pipeline: polystore in, populated A' index out.

Blocking (BLAST stand-in) proposes candidate pairs, pairwise matching
(Duke stand-in) scores them and emits p-relations, the local-dedup rule
prunes conflicting identities, and everything is inserted into the A'
index — where the Consistency Condition materializes the transitive
closure (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.blocking import TokenBlocker
from repro.collector.matching import PairwiseMatcher
from repro.core.aindex import AIndex
from repro.errors import StoreUnavailableError
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation


@dataclass
class CollectorSettings:
    """Knobs of the pipeline; defaults mirror the paper's calibration."""

    max_block_size: int = 50
    min_token_length: int = 3
    #: Stop after this many candidate pairs (None = exhaustive).
    max_candidate_pairs: int | None = None
    #: Keep collecting when a database is unreachable: its objects are
    #: skipped (and reported) instead of failing the whole run. The A'
    #: index stays correct — a skipped store just contributes no new
    #: p-relations until a later run picks it up.
    skip_unavailable: bool = True


@dataclass
class CollectorReport:
    """What one collector run did."""

    objects_scanned: int = 0
    candidate_pairs: int = 0
    relations_found: int = 0
    identities: int = 0
    matchings: int = 0
    relations: list[PRelation] = field(default_factory=list)
    #: Databases whose scan failed under ``skip_unavailable``.
    skipped_databases: tuple[str, ...] = ()
    #: Database -> reason for each skipped scan.
    errors: dict[str, str] = field(default_factory=dict)


class Collector:
    """Discovers p-relations across the polystore and stores them."""

    def __init__(
        self,
        matcher: PairwiseMatcher,
        settings: CollectorSettings | None = None,
    ) -> None:
        self.matcher = matcher
        self.settings = settings or CollectorSettings()
        self.blocker = TokenBlocker(
            max_block_size=self.settings.max_block_size,
            min_token_length=self.settings.min_token_length,
        )

    def collect(self, polystore: Polystore, aindex: AIndex) -> CollectorReport:
        """Run blocking + matching over ``polystore`` into ``aindex``."""
        report = CollectorReport()
        objects = []
        skipped: list[str] = []
        for database in polystore:
            # Chunked multi_get scan: one native batch per chunk rather
            # than one point lookup per object, same objects and order.
            try:
                for obj in polystore.database(database).scan_objects():
                    objects.append(obj)
            except StoreUnavailableError as exc:
                if not self.settings.skip_unavailable:
                    raise
                skipped.append(database)
                report.errors[database] = f"unavailable: {exc}"
        report.skipped_databases = tuple(skipped)
        report.objects_scanned = len(objects)

        pairs = []
        for pair in self.blocker.candidate_pairs(objects):
            pairs.append(pair)
            report.candidate_pairs += 1
            if (
                self.settings.max_candidate_pairs is not None
                and report.candidate_pairs >= self.settings.max_candidate_pairs
            ):
                break

        relations = self.matcher.match_pairs(pairs)
        report.relations = relations
        report.relations_found = len(relations)
        for relation in relations:
            if relation.type.value == "identity":
                report.identities += 1
            else:
                report.matchings += 1
            aindex.add(relation)
        return report
