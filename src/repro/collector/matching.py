"""Pairwise matching (the Duke stand-in).

A :class:`PairwiseMatcher` scores a candidate pair by comparing
configured attribute pairs with weighted comparators; the final score
is the weighted mean of attribute similarities. Thresholds translate
scores into p-relations with the calibration used in the paper's
evaluation: identity for score >= ``identity_threshold`` (0.9),
matching for score >= ``matching_threshold`` (0.6), nothing below.

The matcher also enforces the paper's local-deduplication rule: two
objects of the same database cannot both hold an identity p-relation
with the same object elsewhere — only the most probable one is kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.collector.comparators import Comparator
from repro.model.objects import DataObject, GlobalKey
from repro.model.prelations import PRelation, RelationType


@dataclass(frozen=True)
class AttributeRule:
    """Compare attribute ``left_field`` of one object against
    ``right_field`` of the other with ``comparator`` at ``weight``."""

    left_field: str
    right_field: str
    comparator: Comparator
    weight: float = 1.0


@dataclass
class MatchDecision:
    """The outcome of scoring one candidate pair."""

    left: GlobalKey
    right: GlobalKey
    score: float
    relation: PRelation | None


def _field_value(obj: DataObject, name: str) -> Any:
    if isinstance(obj.value, Mapping):
        return obj.value.get(name)
    if name == "value":
        return obj.value
    return None


class PairwiseMatcher:
    """Weighted-mean attribute matching with thresholding."""

    def __init__(
        self,
        rules: list[AttributeRule],
        identity_threshold: float = 0.9,
        matching_threshold: float = 0.6,
    ) -> None:
        if not rules:
            raise ValueError("at least one attribute rule is required")
        if not 0 < matching_threshold <= identity_threshold <= 1:
            raise ValueError(
                "thresholds must satisfy 0 < matching <= identity <= 1"
            )
        self.rules = rules
        self.identity_threshold = identity_threshold
        self.matching_threshold = matching_threshold

    def score(self, left: DataObject, right: DataObject) -> float:
        """Weighted mean similarity over the attribute rules.

        Rules whose fields are absent on both sides are skipped, so
        heterogeneous objects are compared only on shared evidence.
        """
        total_weight = 0.0
        total = 0.0
        for rule in self.rules:
            a = _field_value(left, rule.left_field)
            b = _field_value(right, rule.right_field)
            if a is None and b is None:
                # The rule's fields may live on the opposite sides (the
                # blocker orients pairs canonically, not by schema), so
                # heterogeneous rules like ("name", "title") apply in
                # whichever direction finds the evidence.
                a = _field_value(right, rule.left_field)
                b = _field_value(left, rule.right_field)
            if a is None and b is None:
                continue
            total += rule.weight * rule.comparator.compare(a, b)
            total_weight += rule.weight
        if total_weight == 0.0:
            return 0.0
        return total / total_weight

    def decide(self, left: DataObject, right: DataObject) -> MatchDecision:
        """Score a pair and emit its p-relation, if any."""
        score = self.score(left, right)
        relation: PRelation | None = None
        if score >= self.identity_threshold:
            relation = PRelation.identity(left.key, right.key, min(score, 1.0))
        elif score >= self.matching_threshold:
            relation = PRelation.matching(left.key, right.key, score)
        return MatchDecision(left.key, right.key, score, relation)

    def match_pairs(
        self, pairs: Iterable[tuple[DataObject, DataObject]]
    ) -> list[PRelation]:
        """Decide every candidate pair, then apply local dedup."""
        relations = [
            decision.relation
            for decision in (self.decide(left, right) for left, right in pairs)
            if decision.relation is not None
        ]
        return enforce_local_dedup(relations)


def enforce_local_dedup(relations: list[PRelation]) -> list[PRelation]:
    """Keep, per (target object, source database), only the most
    probable identity p-relation (Section III-D).

    Matching p-relations are unaffected: the rule only concerns
    identities, because deduplication within a database is assumed to be
    a local responsibility.

    The winner of each slot is chosen by probability, with exact ties
    broken by the canonically smaller endpoint pair — so the surviving
    set depends only on the relations themselves, never on the order
    they were discovered in. Order-independence is what lets the
    incremental collector (``repro.cdc``) recompute deduplication from
    its pair set and land on the same base relations as a batch run.
    """
    best: dict[tuple[GlobalKey, str], PRelation] = {}
    kept: list[PRelation] = []
    for relation in relations:
        if relation.type is not RelationType.IDENTITY:
            kept.append(relation)
            continue
        for target, source in (
            (relation.left, relation.right),
            (relation.right, relation.left),
        ):
            slot = (target, source.database)
            current = best.get(slot)
            if current is None or _outranks(relation, current):
                best[slot] = relation

    # An identity occupies two slots (one per endpoint); it survives
    # only if it is the most probable in both.
    winner_count: dict[int, int] = {}
    for winner in best.values():
        winner_count[id(winner)] = winner_count.get(id(winner), 0) + 1
    for relation in relations:
        if (
            relation.type is RelationType.IDENTITY
            and winner_count.get(id(relation), 0) == 2
        ):
            kept.append(relation)
    return kept


def _outranks(candidate: PRelation, incumbent: PRelation) -> bool:
    """Deterministic slot ordering: higher probability wins; exact ties
    go to the canonically smaller endpoint pair."""
    if candidate.probability != incumbent.probability:
        return candidate.probability > incumbent.probability
    return (str(candidate.left), str(candidate.right)) < (
        str(incumbent.left), str(incumbent.right)
    )
