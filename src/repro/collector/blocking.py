"""Unsupervised blocking (the BLAST stand-in).

Blocking partitions the data objects of the polystore into candidate
blocks so that pairwise matching only compares objects within a block.
Like BLAST, it needs no prior knowledge of the sources: every object is
keyed by the normalized tokens of its textual attribute values, and
objects sharing a token land in the same block. Oversized blocks (stop
words, common tokens) are dropped, which is the standard meta-blocking
cleanup step.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from repro.model.objects import DataObject

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _oriented(
    left: DataObject, right: DataObject
) -> tuple[DataObject, DataObject]:
    """Canonical pair orientation (by key text).

    Blockers emit every pair in this orientation so matching scores are
    independent of scan order — incremental maintenance (:mod:`repro.cdc`)
    re-scores pairs out of scan context and must land on the same score
    a full batch run computes.
    """
    return (left, right) if str(left.key) <= str(right.key) else (right, left)


def tokenize_value(value: object) -> set[str]:
    """Normalized alphanumeric tokens of one attribute value."""
    if value is None:
        return set()
    return set(_TOKEN_RE.findall(str(value).lower()))


class TokenBlocker:
    """Token blocking with oversized-block pruning.

    ``max_block_size`` drops blocks keyed by uninformative tokens;
    ``min_token_length`` skips very short tokens ("a", "of", ids).
    """

    def __init__(self, max_block_size: int = 50, min_token_length: int = 3) -> None:
        self.max_block_size = max_block_size
        self.min_token_length = min_token_length

    def blocks(
        self, objects: Iterable[DataObject]
    ) -> dict[str, list[DataObject]]:
        """Group objects by shared token."""
        buckets: dict[str, list[DataObject]] = defaultdict(list)
        for obj in objects:
            for token in self._object_tokens(obj):
                buckets[token].append(obj)
        return {
            token: members
            for token, members in buckets.items()
            if 2 <= len(members) <= self.max_block_size
        }

    def candidate_pairs(
        self, objects: Iterable[DataObject]
    ) -> Iterator[tuple[DataObject, DataObject]]:
        """Distinct cross-database pairs sharing at least one block.

        Deduplication is a *local* responsibility in the paper's model,
        so pairs within the same database are not candidates.
        """
        emitted: set[tuple[str, str]] = set()
        for members in self.blocks(objects).values():
            for i, left in enumerate(members):
                for right in members[i + 1:]:
                    if left.key.database == right.key.database:
                        continue
                    pair_ids = tuple(sorted((str(left.key), str(right.key))))
                    if pair_ids in emitted:
                        continue
                    emitted.add(pair_ids)  # type: ignore[arg-type]
                    yield _oriented(left, right)

    def _object_tokens(self, obj: DataObject) -> set[str]:
        tokens: set[str] = set()
        for name, value in obj.fields():
            if name.startswith("_"):
                continue
            for token in tokenize_value(value):
                if len(token) >= self.min_token_length and not token.isdigit():
                    tokens.add(token)
        return tokens


class SortedNeighborhoodBlocker:
    """Sorted-neighborhood blocking: the classic alternative to token
    blocking.

    Objects are sorted by a blocking key (the concatenated normalized
    tokens of their textual attributes) and a window of size ``window``
    slides over the sorted list; objects within the same window are
    candidates. Produces far fewer candidate pairs than token blocking
    at the cost of missing pairs whose keys sort far apart — the
    standard recall/efficiency trade-off, measurable with the
    benchmarks' ablation.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = window

    def blocking_key(self, obj: DataObject) -> str:
        tokens: list[str] = []
        for name, value in sorted(obj.fields()):
            if name.startswith("_"):
                continue
            tokens.extend(sorted(tokenize_value(value)))
        return " ".join(tokens)

    def candidate_pairs(
        self, objects: Iterable[DataObject]
    ) -> Iterator[tuple[DataObject, DataObject]]:
        """Cross-database pairs within the sliding window."""
        ordered = sorted(objects, key=self.blocking_key)
        emitted: set[tuple[str, str]] = set()
        for index, left in enumerate(ordered):
            for right in ordered[index + 1: index + self.window]:
                if left.key.database == right.key.database:
                    continue
                pair_ids = tuple(sorted((str(left.key), str(right.key))))
                if pair_ids in emitted:
                    continue
                emitted.add(pair_ids)  # type: ignore[arg-type]
                yield _oriented(left, right)
