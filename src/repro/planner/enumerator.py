"""Plan enumeration: which physical plans are admissible for a query.

The enumerator produces the full candidate set the engine costs and the
equivalence suite executes. Admission is the only pruning that happens
here — a collect/import strategy whose *predicted* peak footprint
already exceeds the memory budget is reported as inadmissible rather
than enumerated (executing it could only hit the OOM guard). Cost-based
ranking happens in the engine; the enumerator is deliberately
deterministic and exhaustive so tests can iterate every plan.
"""

from __future__ import annotations

from repro.planner.costs import PlanCostModel
from repro.planner.logical import QueryContext
from repro.planner.plans import (
    CollectJoinPlan,
    EtlCastPlan,
    MultiModelPlan,
    PhysicalPlan,
    PushdownPlan,
)

#: The push-down variants enumerated per query: the three points of the
#: paper's network-optimization spectrum (one call per object, one call
#: per batch, batched calls across threads).
PUSHDOWN_VARIANTS = (
    ("sequential", 1, 1),
    ("batch", 64, 1),
    ("outer_batch", 64, 4),
)


def enumerate_plans(
    qctx: QueryContext,
    model: PlanCostModel,
    memory_budget: int = 200_000,
) -> tuple[list[PhysicalPlan], list[dict]]:
    """All admissible plans for ``qctx`` plus the rejections.

    Returns ``(plans, rejected)``; each rejection is a JSON-ready dict
    naming the strategy and why it was not enumerated.
    """
    plans: list[PhysicalPlan] = [
        PushdownPlan(augmenter, batch_size, threads_size)
        for augmenter, batch_size, threads_size in PUSHDOWN_VARIANTS
    ]
    rejected: list[dict] = []
    for candidate in (CollectJoinPlan(), EtlCastPlan(), MultiModelPlan()):
        footprint = model.footprint_estimate(candidate.kind, qctx)
        if footprint is not None and footprint > memory_budget:
            rejected.append(
                {
                    "strategy": candidate.strategy,
                    "reason": (
                        f"estimated footprint {footprint} objects exceeds "
                        f"memory budget {memory_budget}"
                    ),
                }
            )
            continue
        plans.append(candidate)
    return plans, rejected
