"""Cost-based cross-store query planner (ROADMAP item 3).

A federated engine over the polystore: declarative queries in
(:class:`LogicalQuery`), physical plans enumerated across four
architectural families — A'-index push-down, middleware collect-and-join,
ETL store-to-store cast, multi-model import — costed from per-store
EXPLAIN estimates plus learned calibration factors, and executed through
the existing connectors. Every plan returns the identical answer; the
planner only ever changes cost. See docs/PLANNING.md.
"""

from repro.planner.costs import (
    RATIO_BAND,
    CalibrationStore,
    CostEstimate,
    PlanCostModel,
)
from repro.planner.engine import FederatedEngine, PlannerExecution
from repro.planner.enumerator import PUSHDOWN_VARIANTS, enumerate_plans
from repro.planner.logical import (
    LogicalQuery,
    PlanResult,
    QueryContext,
    answer_signature,
)
from repro.planner.plans import (
    CollectJoinPlan,
    EtlCastPlan,
    ExecutionEnv,
    MultiModelPlan,
    PhysicalPlan,
    PushdownPlan,
)

__all__ = [
    "RATIO_BAND",
    "PUSHDOWN_VARIANTS",
    "CalibrationStore",
    "CollectJoinPlan",
    "CostEstimate",
    "EtlCastPlan",
    "ExecutionEnv",
    "FederatedEngine",
    "LogicalQuery",
    "MultiModelPlan",
    "PhysicalPlan",
    "PlanCostModel",
    "PlanResult",
    "PlannerExecution",
    "PushdownPlan",
    "QueryContext",
    "answer_signature",
    "enumerate_plans",
]
