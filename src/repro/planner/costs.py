"""The planner's cost model and its learned calibration factors.

Raw costs are analytic: each strategy's formula mirrors the virtual-time
charges its execution actually makes — store roundtrips from the
deployment profile, scan paging from per-collection cardinalities,
push-down fetch schedules from the :class:`CostBasedOptimizer` formulas
of :mod:`repro.optimizer.costbased`, and the middleware constants the
strategies were promoted from. Cardinalities come from the per-store
``explain()`` estimates plus the A' index plan, both available before
any store is contacted on the clock.

Analytic formulas drift from measured reality (contention, cache
behaviour, modelling gaps), so each strategy carries a learned
*calibration factor*: an EWMA of measured/predicted ratios observed
after executions. ``total = raw * factor``. Factors start at 1.0 and
are clamped to a sane band so one pathological observation cannot
poison the ranking. ``tests/test_planner_costs.py`` asserts the raw
estimates stay within :data:`RATIO_BAND` of measurements, and that
calibration tightens them.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.core.augmentation import AugmentationConfig
from repro.core.runlog import QueryFeatures
from repro.middleware import etl, federated, multimodel
from repro.middleware.base import SCAN_PAGE
from repro.model.polystore import Polystore
from repro.network.latency import DeploymentProfile
from repro.optimizer.costbased import AssumedCosts, CostBasedOptimizer
from repro.planner.logical import QueryContext

#: Documented estimated-vs-actual band for *uncalibrated* raw costs:
#: ``RATIO_BAND[0] <= actual / raw <= RATIO_BAND[1]`` on the fault-free
#: workloads of the cost tests. The band is deliberately generous — the
#: formulas abstract pool scheduling and cache hits — and calibration
#: exists to tighten what it cannot.
RATIO_BAND = (0.2, 5.0)


@dataclass
class CostEstimate:
    """One strategy's predicted cost: raw formula times learned factor."""

    strategy: str
    raw: float
    calibration: float
    total: float
    breakdown: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "estimated_cost_s": self.total,
            "raw_cost_s": self.raw,
            "calibration_factor": self.calibration,
            "breakdown": dict(self.breakdown),
        }


class CalibrationStore:
    """Per-strategy EWMA of measured/predicted cost ratios (thread-safe).

    ``observe`` folds one execution's ratio into the strategy's factor;
    ``factor`` is what estimates are multiplied by. Ratios and factors
    are clamped to ``[min_factor, max_factor]`` so a degenerate run
    (near-zero prediction, faulted execution) cannot blow up the model.
    """

    def __init__(
        self,
        alpha: float = 0.4,
        min_factor: float = 0.05,
        max_factor: float = 20.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.min_factor = min_factor
        self.max_factor = max_factor
        self._factors: dict[str, float] = {}
        self._observations: dict[str, int] = {}
        self._lock = threading.Lock()

    def factor(self, strategy: str) -> float:
        with self._lock:
            return self._factors.get(strategy, 1.0)

    def observe(self, strategy: str, raw: float, actual: float) -> float:
        """Fold one (predicted, measured) pair in; returns the new factor."""
        if raw <= 0.0 or actual < 0.0:
            return self.factor(strategy)
        ratio = min(self.max_factor, max(self.min_factor, actual / raw))
        with self._lock:
            current = self._factors.get(strategy)
            if current is None:
                updated = ratio
            else:
                updated = (1.0 - self.alpha) * current + self.alpha * ratio
            updated = min(self.max_factor, max(self.min_factor, updated))
            self._factors[strategy] = updated
            self._observations[strategy] = (
                self._observations.get(strategy, 0) + 1
            )
            return updated

    def snapshot(self) -> dict:
        with self._lock:
            return {
                strategy: {
                    "factor": factor,
                    "observations": self._observations.get(strategy, 0),
                }
                for strategy, factor in sorted(self._factors.items())
            }


class PlanCostModel:
    """Analytic raw-cost formulas for every plan kind.

    Per-database collection cardinalities are snapshotted lazily (first
    use per database) and reused across estimates; :meth:`refresh`
    drops the snapshot after bulk mutations.
    """

    def __init__(
        self,
        profile: DeploymentProfile,
        polystore: Polystore,
        aindex=None,
        memory_budget: int = 200_000,
    ) -> None:
        self.profile = profile
        self.polystore = polystore
        self.aindex = aindex
        self.memory_budget = memory_budget
        self._collection_stats: dict[str, dict[str, int]] = {}

    # -- cardinality snapshots ----------------------------------------------

    def refresh(self) -> None:
        """Drop cached cardinalities (call after bulk store mutations)."""
        self._collection_stats = {}

    def collection_stats(self, database: str) -> dict[str, int]:
        stats = self._collection_stats.get(database)
        if stats is None:
            store = self.polystore.database(database)
            with store.lock:
                stats = store.collection_stats()
            self._collection_stats[database] = stats
        return stats

    def database_objects(self, database: str) -> int:
        return sum(self.collection_stats(database).values())

    # -- shared cost pieces ---------------------------------------------------

    def _roundtrip(self, database: str) -> float:
        return self.profile.site(database).roundtrip

    def scan_cost(self, database: str) -> float:
        """Paged full scan of one database through a middleware connector."""
        cost = self.profile.cost_model
        roundtrip = self._roundtrip(database)
        total = 0.0
        for count in self.collection_stats(database).values():
            pages = math.ceil(count / SCAN_PAGE) if count else 0
            total += pages * (roundtrip + cost.per_query_overhead)
            total += count * (
                cost.per_object_service + cost.per_object_cpu
            )
        return total

    def local_query_cost(self, qctx: QueryContext) -> float:
        """The local query through its connector, on the clock."""
        cost = self.profile.cost_model
        rows = len(qctx.originals)
        return (
            self._roundtrip(qctx.query.database)
            + cost.per_query_overhead
            + rows * (cost.per_object_service + cost.per_object_cpu)
        )

    def _planning_cpu(self, qctx: QueryContext) -> float:
        cost = self.profile.cost_model
        return qctx.edges_examined * cost.aindex_edge_cost

    def _index_edges(self) -> int:
        if self.aindex is None:
            return 0
        return self.aindex.edge_count()

    # -- admission (footprint) estimates --------------------------------------

    def footprint_estimate(self, kind: str, qctx: QueryContext) -> int | None:
        """Predicted peak middleware footprint, ``None`` for streaming."""
        if kind == "collect_join":
            scanned = sum(
                self.database_objects(database) for database in qctx.targets
            )
            return (
                len(qctx.originals) + 2 * scanned + qctx.unique_fetch_count
            )
        if kind == "multimodel":
            databases = dict.fromkeys(
                (qctx.query.database,) + qctx.targets
            )
            scanned = sum(
                self.database_objects(database) for database in databases
            )
            return scanned + self._index_edges()
        return None

    # -- per-strategy raw costs -----------------------------------------------

    def estimate(self, plan, qctx: QueryContext) -> tuple[float, dict]:
        """Raw predicted seconds for ``plan`` plus a breakdown."""
        if plan.kind == "pushdown":
            return self._pushdown(plan, qctx)
        if plan.kind == "collect_join":
            return self._collect_join(qctx)
        if plan.kind == "etl_cast":
            return self._etl_cast(qctx)
        if plan.kind == "multimodel":
            return self._multimodel(qctx)
        raise ValueError(f"no cost formula for plan kind {plan.kind!r}")

    def _pushdown(self, plan, qctx: QueryContext) -> tuple[float, dict]:
        cost = self.profile.cost_model
        by_database = qctx.fetches_by_database()
        if by_database:
            mean_roundtrip = sum(
                self._roundtrip(database) for database in by_database
            ) / len(by_database)
        else:
            mean_roundtrip = self._roundtrip(qctx.query.database)
        assumed = AssumedCosts(
            roundtrip_latency=mean_roundtrip,
            per_query_overhead=cost.per_query_overhead,
            per_object_service=cost.per_object_service,
            thread_spawn_overhead=cost.thread_spawn_overhead,
            pool_create_overhead=cost.pool_create_overhead,
            cores=self.profile.quepa_machine.cores,
        )
        features = QueryFeatures(
            engine="",
            database=qctx.query.database,
            level=qctx.query.level,
            original_count=len(qctx.seeds),
            planned_fetches=qctx.fetch_count,
            store_count=len(by_database) + 1,
            deployment=self.profile.name,
        )
        config = AugmentationConfig(
            augmenter=plan.augmenter,
            batch_size=plan.batch_size,
            threads_size=plan.threads_size,
        )
        local = self.local_query_cost(qctx)
        planning = self._planning_cpu(qctx)
        fetch = CostBasedOptimizer(assumed).estimate(features, config)
        if qctx.fetch_count == 0:
            # The optimizer formulas floor n at 1; nothing is fetched.
            fetch = 0.0
        breakdown = {"local_query": local, "planning": planning, "fetch": fetch}
        total = local + planning + fetch
        breakdown["total"] = total
        return total, breakdown

    def _collect_join(self, qctx: QueryContext) -> tuple[float, dict]:
        local = self.local_query_cost(qctx)
        scans = 0.0
        join_cpu = 0.0
        seeds = len(qctx.seeds)
        for database in qctx.targets:
            scans += self.scan_cost(database)
            stats = self.collection_stats(database)
            join_cpu += federated.CONVERT_CPU_PER_OBJECT * sum(stats.values())
            join_cpu += federated.PROBE_CPU * seeds * len(stats)
        convert = federated.CONVERT_CPU_PER_OBJECT * qctx.fetch_count
        breakdown = {
            "local_query": local,
            "scan": scans,
            "join_cpu": join_cpu,
            "convert": convert,
        }
        total = local + scans + join_cpu + convert
        breakdown["total"] = total
        return total, breakdown

    def _etl_cast(self, qctx: QueryContext) -> tuple[float, dict]:
        local = self.local_query_cost(qctx)
        scans = 0.0
        staging_cpu = 0.0
        for database in qctx.targets:
            scans += self.scan_cost(database)
            staging_cpu += etl.LOOKUP_BUILD_CPU * self.database_objects(
                database
            )
        records = len(qctx.originals) + qctx.fetch_count
        pipeline = records * etl.PIPELINE_STAGES * etl.PER_RECORD_STAGE_CPU
        breakdown = {
            "startup": etl.STARTUP_COST,
            "local_query": local,
            "scan": scans,
            "staging_cpu": staging_cpu,
            "pipeline": pipeline,
        }
        total = etl.STARTUP_COST + local + scans + staging_cpu + pipeline
        breakdown["total"] = total
        return total, breakdown

    def _multimodel(self, qctx: QueryContext) -> tuple[float, dict]:
        cost = self.profile.cost_model
        databases = dict.fromkeys((qctx.query.database,) + qctx.targets)
        scans = 0.0
        imported = 0
        for database in databases:
            scans += self.scan_cost(database)
            imported += self.database_objects(database)
        imported += self._index_edges()
        import_cpu = multimodel.IMPORT_CPU_PER_OBJECT * imported
        utilization = min(1.0, imported / max(1, self.memory_budget))
        pressure = 1.0 + (
            multimodel.PRESSURE_FACTOR - 1.0
        ) * utilization * utilization
        lookups = (
            multimodel.LOOKUP_CPU * len(qctx.originals) * pressure
            + qctx.edges_examined * cost.aindex_edge_cost
            + multimodel.LOOKUP_CPU * 2.0 * pressure * qctx.fetch_count
        )
        breakdown = {
            "scan": scans,
            "import_cpu": import_cpu,
            "pressure": pressure,
            "lookups": lookups,
        }
        total = scans + import_cpu + lookups
        breakdown["total"] = total
        return total, breakdown
