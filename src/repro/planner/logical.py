"""The planner's logical query form and plan-execution results.

A :class:`LogicalQuery` is the declarative input of the federated
engine: a native query against one member store plus the augmentation
reach — level, optional target databases, optional probability floor.
It says *what* related objects the answer must contain; the physical
plans (:mod:`repro.planner.plans`) disagree only on *how* they are
materialized and therefore on cost, never on the answer itself. That
invariant — every enumerated plan returns a bit-identical result set —
is what :func:`answer_signature` exists to check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.augmentation import AugmentationPlan, PlannedFetch
from repro.core.search import AugmentedAnswer
from repro.model.objects import DataObject, GlobalKey
from repro.model.polystore import Polystore


@dataclass(frozen=True)
class LogicalQuery:
    """One declarative cross-store query.

    ``database``/``query`` is the native local query (Definition 3's
    ``Q``); ``level`` the augmentation level; ``targets`` optionally
    restricts which databases may contribute augmented objects (``None``
    = every database of the polystore). ``targets`` never restricts the
    local query itself — originals always come from ``database``.
    """

    database: str
    query: Any
    level: int = 0
    targets: tuple[str, ...] | None = None
    min_probability: float = 0.0

    def resolve_targets(self, polystore: Polystore) -> tuple[str, ...]:
        """The concrete, ordered set of augmentation target databases."""
        if self.targets is None:
            return tuple(sorted(name for name in polystore.databases))
        return tuple(sorted(dict.fromkeys(self.targets)))


@dataclass
class QueryContext:
    """A logical query prepared for enumeration and costing.

    Built off-clock by :meth:`~repro.planner.engine.FederatedEngine.prepare`
    — like ``Quepa.explain``, preparation runs the local query and the
    index traversal without charging virtual time, so estimates can use
    the true cardinalities the paper's planner would read from
    ``explain()`` and the A' index.
    """

    query: LogicalQuery
    targets: tuple[str, ...]
    originals: list[DataObject]
    seeds: list[GlobalKey]
    #: Augmentation plan already restricted to the targets.
    plan: AugmentationPlan
    #: Per-store EXPLAIN of the local query (access path, row estimates).
    store_report: dict = field(default_factory=dict)

    @property
    def fetches(self) -> list[PlannedFetch]:
        return self.plan.all_fetches()

    @property
    def fetch_count(self) -> int:
        """Planned fetches, duplicates included (what executions pay)."""
        return self.plan.total_fetches()

    @property
    def unique_fetch_count(self) -> int:
        """Distinct planned keys (what the answer can maximally gain)."""
        return len({fetch.key for fetch in self.fetches})

    @property
    def edges_examined(self) -> int:
        return self.plan.edges_examined

    def fetches_by_database(self) -> dict[str, int]:
        """Planned fetch counts per home database (duplicates included)."""
        counts: dict[str, int] = {}
        for fetch in self.fetches:
            database = fetch.key.database
            counts[database] = counts.get(database, 0) + 1
        return dict(sorted(counts.items()))


@dataclass
class PlanResult:
    """What executing one physical plan produced, with its measured cost.

    ``answer`` follows the exact :func:`~repro.core.search.assemble_answer`
    semantics of the QUEPA search path, so results are comparable across
    strategies (and against ``Quepa.augmented_search`` itself).
    """

    strategy: str
    answer: AugmentedAnswer
    #: Virtual-time seconds of the whole plan execution.
    elapsed: float = 0.0
    #: Native store queries issued (scans, local query, fetches).
    queries_issued: int = 0
    #: Peak middleware-side object footprint (collect/cast strategies).
    footprint: int = 0
    out_of_memory: bool = False
    #: True iff a fault cost this answer planned objects.
    degraded: bool = False
    #: Databases skipped because they were unreachable.
    unavailable: tuple[str, ...] = ()
    #: Database -> reason for every store that misbehaved.
    errors: dict[str, str] = field(default_factory=dict)

    def signature(self) -> tuple:
        """Canonical form of the answer for plan-equivalence checks."""
        return answer_signature(self.answer)


def answer_signature(answer: AugmentedAnswer) -> tuple:
    """A hashable, order-sensitive fingerprint of an augmented answer.

    Covers the originals (key and payload, in answer order) and the
    ranked augmentation (key, exact probability, provenance). Two plans
    are equivalent iff their signatures compare equal — probabilities
    are compared bit-for-bit, not rounded.
    """
    originals = tuple(
        (str(obj.key), repr(obj.value)) for obj in answer.originals
    )
    augmented = tuple(
        (str(entry.key), entry.probability, str(entry.source))
        for entry in answer.augmented
    )
    return (originals, augmented)
