"""Physical plans: the execution strategies the planner chooses among.

Every strategy answers the same :class:`~repro.planner.logical.LogicalQuery`
— local answer plus probability-ranked augmentation assembled by
:func:`~repro.core.search.assemble_answer` — but takes a different
architectural route to the augmented objects:

* **push-down** (``pushdown:*``) — QUEPA's own path: plan over the A'
  index, then fetch each planned object from its home store through the
  connectors (sequential, batched, or threaded-batched);
* **collect-and-join** (``collect_join``) — the federated-middleware
  route (META-NAT): pull every target collection into middleware memory
  and hash-join against the local answer on the linking values;
* **store-to-store cast** (``etl_cast``) — the ETL route (TALEND):
  stage every target store into lookup tables, then stream the answer
  rows through a fixed pipeline that resolves related objects;
* **multi-model import** (``multimodel_import``) — the ARANGO route:
  import the touched databases plus the A' index into one in-memory
  engine and answer there under memory pressure.

The cost *structure* of each route reuses the constants of the
:mod:`repro.middleware` emulators it was promoted from, so the planner's
trade-offs match Fig 13's. The answers, however, are all computed with
full fidelity — same dedup, same probabilities, same ordering — which
is the plan-equivalence invariant ``tests/test_planner_props.py`` checks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from repro.core.augmentation import (
    Augmentation,
    AugmentationConfig,
    AugmentationPlan,
    PlannedFetch,
)
from repro.core.augmenters import make_augmenter
from repro.core.augmenters.base import _augmented
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.core.search import AugmentedAnswer, SearchStats, assemble_answer
from repro.errors import OutOfMemoryError, StoreUnavailableError
from repro.middleware import etl, federated, multimodel
from repro.middleware.base import page_scan
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.network.executor import ExecContext
from repro.planner.logical import LogicalQuery, PlanResult


@dataclass
class ExecutionEnv:
    """Everything one plan execution needs, bundled.

    The engine builds a fresh env per run — own virtual context, own
    cache, own connector registry — so executions are independent and
    their virtual-time costs comparable. ``resilience`` (shared across
    runs, so breaker state persists) and ``degrade`` mirror the Quepa
    search path: with ``degrade`` set, an unreachable store shrinks the
    answer instead of failing it, identically for every strategy.
    """

    ctx: ExecContext
    polystore: Polystore
    aindex: object
    augmentation: Augmentation
    registry: ConnectorRegistry
    cache: LruCache
    resilience: object | None = None
    memory_budget: int = 200_000
    degrade: bool = True
    base_config: AugmentationConfig = field(default_factory=AugmentationConfig)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _locked_execute(store, query):
    with store.lock:
        return store.execute(query)


def _issue(env: ExecutionEnv, database: str, op, query=None):
    """One store call, through the resilience layer when attached."""
    if env.resilience is not None:
        return env.resilience.call(env.ctx, database, op, query=query)
    return env.ctx.store_call(database, op, query=query)


def local_originals(
    env: ExecutionEnv, q: LogicalQuery
) -> tuple[list[DataObject] | None, Exception | None]:
    """Run the local query against its home store, charged on the clock.

    Returns ``(originals, None)`` normally. When the home store is
    unreachable and degradation is armed, returns ``(None, error)`` so
    every strategy produces the identical empty degraded answer.
    """
    store = env.polystore.database(q.database)
    op = lambda: _locked_execute(store, q.query)  # noqa: E731
    try:
        results = _issue(env, q.database, op, query=q.query)
    except StoreUnavailableError as exc:
        if not env.degrade:
            raise
        return None, exc
    return list(results), None


def result_seeds(originals: list[DataObject]) -> list[GlobalKey]:
    """Augmentation seeds: every original that is a stored object
    (computed ``_result`` rows have no index entry, as in Quepa)."""
    return [
        obj.key for obj in originals if obj.key.collection != "_result"
    ]


def restrict_plan(
    plan: AugmentationPlan, targets: tuple[str, ...]
) -> AugmentationPlan:
    """The plan narrowed to fetches homed in ``targets``.

    ``edges_examined`` is preserved: the traversal walked the whole
    index regardless of which databases the caller cares about.
    """
    allowed = set(targets)
    restricted = AugmentationPlan(
        level=plan.level,
        seeds=list(plan.seeds),
        edges_examined=plan.edges_examined,
    )
    for seed in plan.seeds:
        restricted.fetches_by_seed[seed] = [
            fetch
            for fetch in plan.fetches_by_seed.get(seed, [])
            if fetch.key.database in allowed
        ]
    return restricted


def materialize(
    env: ExecutionEnv, fetches: list[PlannedFetch]
) -> list[AugmentedObject]:
    """Build augmented entries from objects already held middleware-side.

    The collect/cast/import strategies have paid their architecture's
    price for holding the objects (scan roundtrips, conversion CPU,
    import CPU); resolving a planned fetch against that staged copy is
    a plain in-memory lookup, so this reads the stores under their lock
    without charging the execution context. Missing keys drop out, as
    everywhere (lazy deletion semantics).
    """
    unique: dict[str, list[GlobalKey]] = {}
    for fetch in fetches:
        unique.setdefault(fetch.key.database, []).append(fetch.key)
    by_key: dict[GlobalKey, DataObject] = {}
    for database, keys in unique.items():
        store = env.polystore.database(database)
        with store.lock:
            for obj in store.multi_get(keys):
                by_key[obj.key] = obj
    entries: list[AugmentedObject] = []
    for fetch in fetches:
        obj = by_key.get(fetch.key)
        if obj is not None:
            entries.append(_augmented(obj, fetch))
    return entries


def scan_database(env: ExecutionEnv, database: str) -> list[list[GlobalKey]]:
    """Paged scans of every collection of one database, on the clock.

    Raises :class:`StoreUnavailableError` when the store cannot be
    reached (routed through the resilience layer when attached, so an
    open breaker fails the scan exactly as it fails a fetch).
    """
    store = env.polystore.database(database)
    issue = None
    if env.resilience is not None:
        issue = lambda ctx, db, op: env.resilience.call(ctx, db, op)  # noqa: E731
    return [
        page_scan(env.ctx, store, database, collection, issue=issue)
        for collection in store.collections()
    ]


def _check_memory(strategy: str, footprint: int, budget: int) -> None:
    if footprint > budget:
        raise OutOfMemoryError(
            f"{strategy}: footprint {footprint} objects exceeds "
            f"budget {budget}",
            footprint=footprint,
            budget=budget,
        )


def _stats(q: LogicalQuery, strategy: str) -> SearchStats:
    return SearchStats(database=q.database, level=q.level, augmenter=strategy)


def _degraded_empty(
    strategy: str, q: LogicalQuery, exc: Exception
) -> PlanResult:
    """The answer every strategy gives when the home store is down."""
    return PlanResult(
        strategy=strategy,
        answer=AugmentedAnswer([], [], _stats(q, strategy)),
        degraded=True,
        unavailable=(q.database,),
        errors={q.database: f"unavailable: {exc}"},
    )


def _assemble(
    strategy: str,
    q: LogicalQuery,
    originals: list[DataObject],
    entries: list[AugmentedObject],
) -> AugmentedAnswer:
    return assemble_answer(originals, entries, _stats(q, strategy))


def _lost_to_faults(
    fetches: list[PlannedFetch], unavailable: set[str]
) -> bool:
    """Did skipping the unavailable databases cost planned objects?"""
    return any(fetch.key.database in unavailable for fetch in fetches)


# ---------------------------------------------------------------------------
# The plan interface
# ---------------------------------------------------------------------------


class PhysicalPlan(ABC):
    """One executable route to the logical query's answer.

    ``strategy`` is the stable name used in explain output, fixtures and
    calibration; ``kind`` selects the cost formula of
    :class:`~repro.planner.costs.PlanCostModel`.
    """

    strategy: str = "abstract"
    kind: str = "abstract"

    @abstractmethod
    def execute(self, env: ExecutionEnv, q: LogicalQuery) -> PlanResult:
        """Run the plan to completion on ``env``'s virtual context."""

    def describe(self) -> dict:
        """JSON-ready description for explain output."""
        return {"strategy": self.strategy, "kind": self.kind}

    def estimate(self, model, qctx) -> tuple[float, dict]:
        """Predicted raw cost in virtual seconds plus its breakdown."""
        return model.estimate(self, qctx)


# ---------------------------------------------------------------------------
# Push-down over the A' index (QUEPA's own path)
# ---------------------------------------------------------------------------


class PushdownPlan(PhysicalPlan):
    """Per-store push-down: plan on the A' index, fetch via connectors.

    One instance per augmenter configuration; the three enumerated
    variants (sequential, batch, threaded outer-batch) span the
    network-optimization spectrum of Section V.
    """

    kind = "pushdown"

    def __init__(
        self, augmenter: str, batch_size: int = 64, threads_size: int = 4
    ) -> None:
        self.augmenter = augmenter
        self.batch_size = batch_size
        self.threads_size = threads_size
        self.strategy = f"pushdown:{augmenter}"

    def describe(self) -> dict:
        return {
            "strategy": self.strategy,
            "kind": self.kind,
            "augmenter": self.augmenter,
            "batch_size": self.batch_size,
            "threads_size": self.threads_size,
        }

    def execute(self, env: ExecutionEnv, q: LogicalQuery) -> PlanResult:
        ctx = env.ctx
        originals, failure = local_originals(env, q)
        if originals is None:
            return _degraded_empty(self.strategy, q, failure)
        seeds = result_seeds(originals)
        plan = env.augmentation.plan(seeds, q.level, q.min_probability)
        ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
        plan = restrict_plan(plan, q.resolve_targets(env.polystore))
        config = replace(
            env.base_config,
            augmenter=self.augmenter,
            batch_size=self.batch_size,
            threads_size=self.threads_size,
            min_probability=q.min_probability,
            skip_unavailable=env.degrade,
        )
        augmenter = make_augmenter(self.augmenter, env.registry, env.cache)
        outcome = augmenter.execute(ctx, plan, config)
        answer = _assemble(self.strategy, q, originals, outcome.objects)
        return PlanResult(
            strategy=self.strategy,
            answer=answer,
            degraded=outcome.degraded,
            unavailable=outcome.unavailable_databases,
            errors=dict(outcome.errors),
        )


# ---------------------------------------------------------------------------
# Collect-and-join in the middleware (META-NAT's architecture)
# ---------------------------------------------------------------------------


class CollectJoinPlan(PhysicalPlan):
    """Pull target collections into middleware memory and hash-join.

    Cost structure of :class:`~repro.middleware.federated.FederatedMiddleware`
    in native mode: every target collection is scanned page by page into
    a footprint-checked staging area (rows plus hash build table), join
    CPU is paid per probe, and matched objects are converted into the
    middleware's row model. No A' index traversal is charged — the joins
    discover relatedness from the values themselves.
    """

    strategy = "collect_join"
    kind = "collect_join"

    def execute(self, env: ExecutionEnv, q: LogicalQuery) -> PlanResult:
        ctx = env.ctx
        budget = env.memory_budget
        originals, failure = local_originals(env, q)
        if originals is None:
            return _degraded_empty(self.strategy, q, failure)
        footprint = len(originals)
        _check_memory(self.strategy, footprint, budget)
        seeds = result_seeds(originals)
        plan = env.augmentation.plan(seeds, q.level, q.min_probability)
        targets = q.resolve_targets(env.polystore)
        staged: set[str] = set()
        unavailable: list[str] = []
        errors: dict[str, str] = {}
        for database in targets:
            try:
                collections = scan_database(env, database)
            except StoreUnavailableError as exc:
                if not env.degrade:
                    raise
                unavailable.append(database)
                errors[database] = f"unavailable: {exc}"
                continue
            for keys in collections:
                # Pulled rows plus the hash-join build table over them.
                footprint += 2 * len(keys)
                _check_memory(self.strategy, footprint, budget)
                ctx.cpu(federated.CONVERT_CPU_PER_OBJECT * len(keys))
                ctx.cpu(federated.PROBE_CPU * len(seeds))
            staged.add(database)
        fetches = [
            fetch
            for fetch in plan.all_fetches()
            if fetch.key.database in staged
        ]
        # Joined matches are converted into the middleware's row model.
        ctx.cpu(federated.CONVERT_CPU_PER_OBJECT * len(fetches))
        entries = materialize(env, fetches)
        footprint += len(entries)
        _check_memory(self.strategy, footprint, budget)
        planned = restrict_plan(plan, targets).all_fetches()
        return PlanResult(
            strategy=self.strategy,
            answer=_assemble(self.strategy, q, originals, entries),
            footprint=footprint,
            degraded=_lost_to_faults(planned, set(unavailable)),
            unavailable=tuple(sorted(set(unavailable))),
            errors=errors,
        )


# ---------------------------------------------------------------------------
# Store-to-store cast via the ETL pipeline (TALEND's architecture)
# ---------------------------------------------------------------------------


class EtlCastPlan(PhysicalPlan):
    """Stage every target store, then stream rows through the pipeline.

    Cost structure of :class:`~repro.middleware.etl.EtlWorkflow`: fixed
    start-up, one full scan per target store into lookup tables
    (streamed — no OOM, Talend spills), then row-at-a-time pipeline CPU
    for every answer row and every resolved related object (duplicates
    included; the output is distinct).
    """

    strategy = "etl_cast"
    kind = "etl_cast"

    def execute(self, env: ExecutionEnv, q: LogicalQuery) -> PlanResult:
        ctx = env.ctx
        ctx.cpu(etl.STARTUP_COST)
        targets = q.resolve_targets(env.polystore)
        staged: set[str] = set()
        unavailable: list[str] = []
        errors: dict[str, str] = {}
        for database in targets:
            try:
                collections = scan_database(env, database)
            except StoreUnavailableError as exc:
                if not env.degrade:
                    raise
                unavailable.append(database)
                errors[database] = f"unavailable: {exc}"
                continue
            for keys in collections:
                ctx.cpu(etl.LOOKUP_BUILD_CPU * len(keys))
            staged.add(database)
        originals, failure = local_originals(env, q)
        if originals is None:
            return _degraded_empty(self.strategy, q, failure)
        seeds = result_seeds(originals)
        plan = env.augmentation.plan(seeds, q.level, q.min_probability)
        fetches = [
            fetch
            for fetch in plan.all_fetches()
            if fetch.key.database in staged
        ]
        records = len(originals) + len(fetches)
        ctx.cpu(records * etl.PIPELINE_STAGES * etl.PER_RECORD_STAGE_CPU)
        entries = materialize(env, fetches)
        planned = restrict_plan(plan, targets).all_fetches()
        return PlanResult(
            strategy=self.strategy,
            answer=_assemble(self.strategy, q, originals, entries),
            degraded=_lost_to_faults(planned, set(unavailable)),
            unavailable=tuple(sorted(set(unavailable))),
            errors=errors,
        )


# ---------------------------------------------------------------------------
# Multi-model import (ARANGO's architecture)
# ---------------------------------------------------------------------------


class MultiModelPlan(PhysicalPlan):
    """Import the touched databases plus the A' index, answer in memory.

    Cost structure of :class:`~repro.middleware.multimodel.MultiModelStore`
    in augmented mode: per-object import CPU at warm-up (footprint
    checked against the budget), then per-lookup CPU inflated by the
    quadratic memory-pressure factor. The home database must import
    successfully for the local query to run at all.
    """

    strategy = "multimodel_import"
    kind = "multimodel"

    def execute(self, env: ExecutionEnv, q: LogicalQuery) -> PlanResult:
        ctx = env.ctx
        budget = env.memory_budget
        targets = q.resolve_targets(env.polystore)
        imported = 0
        staged: set[str] = set()
        unavailable: list[str] = []
        errors: dict[str, str] = {}
        for database in dict.fromkeys((q.database,) + targets):
            try:
                collections = scan_database(env, database)
            except StoreUnavailableError as exc:
                if not env.degrade:
                    raise
                unavailable.append(database)
                errors[database] = f"unavailable: {exc}"
                continue
            imported += sum(len(keys) for keys in collections)
            _check_memory(self.strategy, imported, budget)
            staged.add(database)
        imported += env.aindex.edge_count()
        _check_memory(self.strategy, imported, budget)
        ctx.cpu(multimodel.IMPORT_CPU_PER_OBJECT * imported)
        utilization = min(1.0, imported / max(1, budget))
        pressure = 1.0 + (
            multimodel.PRESSURE_FACTOR - 1.0
        ) * utilization * utilization
        if q.database not in staged:
            result = _degraded_empty(
                self.strategy, q, StoreUnavailableError(errors[q.database])
            )
            result.errors = errors
            result.unavailable = tuple(sorted(set(unavailable)))
            result.footprint = imported
            return result
        # The local query runs against the in-memory copy: lookup CPU
        # under pressure, no network roundtrip.
        store = env.polystore.database(q.database)
        originals = list(_locked_execute(store, q.query))
        ctx.cpu(multimodel.LOOKUP_CPU * len(originals) * pressure)
        seeds = result_seeds(originals)
        plan = env.augmentation.plan(seeds, q.level, q.min_probability)
        ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
        fetches = [
            fetch
            for fetch in plan.all_fetches()
            if fetch.key.database in staged and fetch.key.database in targets
        ]
        ctx.cpu(multimodel.LOOKUP_CPU * 2.0 * pressure * len(fetches))
        entries = materialize(env, fetches)
        planned = restrict_plan(plan, targets).all_fetches()
        return PlanResult(
            strategy=self.strategy,
            answer=_assemble(self.strategy, q, originals, entries),
            footprint=imported,
            degraded=_lost_to_faults(planned, set(unavailable)),
            unavailable=tuple(sorted(set(unavailable))),
            errors=errors,
        )
