"""The federated engine: enumerate, cost, pick, execute.

:class:`FederatedEngine` is the planner's front door. Given a
:class:`~repro.planner.logical.LogicalQuery` it

1. *prepares* the query off-clock (local answer, per-store EXPLAIN,
   A' index plan restricted to the targets),
2. *enumerates* admissible physical plans,
3. *costs* each one — analytic raw formula times the strategy's learned
   calibration factor — and
4. *executes* the cheapest (or a named strategy) on a fresh virtual
   runtime, feeding the measured time back into calibration.

``execute_all`` runs every enumerated plan, which is what the
plan-equivalence suite and the best-of-all-plans oracle benchmark use;
``explain_section`` renders the whole decision for ``Quepa.explain()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.augmentation import Augmentation, AugmentationConfig
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.core.search import AugmentedAnswer, SearchStats
from repro.errors import OutOfMemoryError, UnknownStrategyError
from repro.faults.resilience import ResilienceConfig, ResilienceManager
from repro.model.polystore import Polystore
from repro.network.executor import VirtualRuntime
from repro.network.latency import DeploymentProfile, centralized_profile
from repro.planner.costs import CalibrationStore, CostEstimate, PlanCostModel
from repro.planner.enumerator import enumerate_plans
from repro.planner.logical import (
    LogicalQuery,
    PlanResult,
    QueryContext,
)
from repro.planner.plans import (
    ExecutionEnv,
    PhysicalPlan,
    restrict_plan,
    result_seeds,
)


@dataclass
class PlannerExecution:
    """One planner decision plus the execution it led to."""

    query: LogicalQuery
    chosen: str
    estimates: list[CostEstimate] = field(default_factory=list)
    rejected: list[dict] = field(default_factory=list)
    result: PlanResult | None = None


class FederatedEngine:
    """Cost-based cross-store planner over one polystore + A' index.

    ``resilience`` accepts a :class:`ResilienceConfig` (a manager is
    built), a ready :class:`ResilienceManager` (shared with a Quepa
    instance, so breaker state is common), or ``None`` (no retry/breaker
    layer). ``faults`` is an optional fault injector armed on every
    execution runtime, mirroring ``Quepa``.
    """

    def __init__(
        self,
        polystore: Polystore,
        aindex,
        profile: DeploymentProfile | None = None,
        memory_budget: int = 200_000,
        config: AugmentationConfig | None = None,
        resilience=None,
        faults=None,
        calibration: CalibrationStore | None = None,
        degrade: bool = True,
    ) -> None:
        self.polystore = polystore
        self.aindex = aindex
        self.profile = profile or centralized_profile(
            sorted(polystore.databases)
        )
        self.memory_budget = memory_budget
        self.config = config or AugmentationConfig()
        if isinstance(resilience, ResilienceConfig):
            resilience = ResilienceManager(resilience)
        self.resilience = resilience
        self.faults = faults
        self.calibration = calibration or CalibrationStore()
        self.degrade = degrade
        self.augmentation = Augmentation(aindex)
        self.model = PlanCostModel(
            self.profile,
            polystore,
            aindex=aindex,
            memory_budget=memory_budget,
        )

    # -- preparation -----------------------------------------------------------

    def prepare(
        self,
        q: LogicalQuery,
        originals=None,
        store_report: dict | None = None,
    ) -> QueryContext:
        """Prepare ``q`` off-clock: originals, EXPLAIN, restricted plan.

        ``originals``/``store_report`` may be passed in when the caller
        already ran them (``Quepa.explain`` does), so preparation adds
        zero extra store executions there.
        """
        store = self.polystore.database(q.database)
        if originals is None:
            with store.lock:
                originals = store.execute(q.query)
        originals = list(originals)
        if store_report is None:
            with store.lock:
                store_report = store.estimate_query(q.query)
        seeds = result_seeds(originals)
        plan = self.augmentation.plan(seeds, q.level, q.min_probability)
        targets = q.resolve_targets(self.polystore)
        return QueryContext(
            query=q,
            targets=targets,
            originals=originals,
            seeds=seeds,
            plan=restrict_plan(plan, targets),
            store_report=store_report,
        )

    # -- enumeration + costing ---------------------------------------------------

    def candidates(
        self, q: LogicalQuery, qctx: QueryContext | None = None
    ) -> tuple[list[tuple[PhysicalPlan, CostEstimate]], list[dict]]:
        """Admissible plans with estimates, cheapest first, plus rejections.

        Ties break on strategy name so the ranking is deterministic.
        """
        if qctx is None:
            qctx = self.prepare(q)
        plans, rejected = enumerate_plans(
            qctx, self.model, self.memory_budget
        )
        ranked: list[tuple[PhysicalPlan, CostEstimate]] = []
        for plan in plans:
            raw, breakdown = plan.estimate(self.model, qctx)
            factor = self.calibration.factor(plan.strategy)
            ranked.append(
                (
                    plan,
                    CostEstimate(
                        strategy=plan.strategy,
                        raw=raw,
                        calibration=factor,
                        total=raw * factor,
                        breakdown=breakdown,
                    ),
                )
            )
        ranked.sort(key=lambda pair: (pair[1].total, pair[1].strategy))
        return ranked, rejected

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        q: LogicalQuery,
        strategy: str | None = None,
        record: bool = True,
    ) -> PlannerExecution:
        """Plan and run ``q``; ``strategy`` forces a named plan.

        ``record`` feeds the measured time back into the calibration
        store (skipped automatically for faulted/OOM runs, whose times
        do not reflect the formula's fault-free assumption).
        """
        qctx = self.prepare(q)
        ranked, rejected = self.candidates(q, qctx)
        if not ranked:
            raise UnknownStrategyError(
                f"no admissible plan for query on {q.database!r}"
            )
        if strategy is None:
            plan, estimate = ranked[0]
        else:
            for plan, estimate in ranked:
                if plan.strategy == strategy:
                    break
            else:
                known = [p.strategy for p, __ in ranked]
                raise UnknownStrategyError(
                    f"unknown or inadmissible strategy {strategy!r}; "
                    f"admissible: {known}"
                )
        result = self._run_plan(plan, q)
        if (
            record
            and not result.out_of_memory
            and not result.degraded
            and not result.errors
        ):
            self.calibration.observe(
                plan.strategy, estimate.raw, result.elapsed
            )
        return PlannerExecution(
            query=q,
            chosen=plan.strategy,
            estimates=[entry for __, entry in ranked],
            rejected=rejected,
            result=result,
        )

    def execute_all(
        self, q: LogicalQuery, record: bool = False
    ) -> dict[str, PlanResult]:
        """Run EVERY admissible plan (equivalence suite / oracle input)."""
        qctx = self.prepare(q)
        ranked, __ = self.candidates(q, qctx)
        results: dict[str, PlanResult] = {}
        for plan, estimate in ranked:
            result = self._run_plan(plan, q)
            results[plan.strategy] = result
            if (
                record
                and not result.out_of_memory
                and not result.degraded
                and not result.errors
            ):
                self.calibration.observe(
                    plan.strategy, estimate.raw, result.elapsed
                )
        return results

    def _run_plan(self, plan: PhysicalPlan, q: LogicalQuery) -> PlanResult:
        """One plan on a fresh virtual runtime; OOM reported, not raised."""
        runtime = VirtualRuntime(self.profile)
        runtime.faults = self.faults
        ctx = runtime.root()
        env = ExecutionEnv(
            ctx=ctx,
            polystore=self.polystore,
            aindex=self.aindex,
            augmentation=self.augmentation,
            registry=ConnectorRegistry(self.polystore, self.resilience),
            cache=LruCache(self.config.cache_size),
            resilience=self.resilience,
            memory_budget=self.memory_budget,
            degrade=self.degrade,
            base_config=self.config,
        )
        try:
            result = plan.execute(env, q)
        except OutOfMemoryError as oom:
            result = PlanResult(
                strategy=plan.strategy,
                answer=AugmentedAnswer(
                    [], [], SearchStats(database=q.database, level=q.level)
                ),
                footprint=oom.footprint,
                out_of_memory=True,
                errors={"memory": str(oom)},
            )
        result.elapsed = runtime.elapsed
        result.queries_issued = runtime.meter.total_queries
        return result

    # -- explain ---------------------------------------------------------------

    def explain_section(
        self,
        q: LogicalQuery,
        originals=None,
        store_report: dict | None = None,
        analyze: bool = False,
    ) -> dict:
        """The ``planner`` section of ``Quepa.explain()``: JSON-ready.

        ``analyze=True`` additionally executes the chosen plan and
        reports measured time next to the estimate.
        """
        qctx = self.prepare(q, originals=originals, store_report=store_report)
        ranked, rejected = self.candidates(q, qctx)
        section = {
            "targets": list(qctx.targets),
            "planned_fetches": qctx.fetch_count,
            "unique_fetches": qctx.unique_fetch_count,
            "fetches_by_database": qctx.fetches_by_database(),
            "strategies": [entry.as_dict() for __, entry in ranked],
            "inadmissible": rejected,
            "chosen": ranked[0][0].strategy if ranked else None,
            "calibration": self.calibration.snapshot(),
        }
        if analyze and ranked:
            plan, estimate = ranked[0]
            result = self._run_plan(plan, q)
            ratio = (
                result.elapsed / estimate.raw if estimate.raw > 0 else None
            )
            section["actual"] = {
                "strategy": plan.strategy,
                "elapsed_s": result.elapsed,
                "estimated_cost_s": estimate.total,
                "ratio_to_raw": ratio,
                "queries_issued": result.queries_issued,
                "answer_size": len(result.answer),
                "out_of_memory": result.out_of_memory,
                "degraded": result.degraded,
            }
        return section
