"""A cost-based optimizer baseline (what the paper argues against).

Section V: "Traditional cost-based optimizers are difficult to
implement in a polystore because we might not have enough knowledge
about each database system in play." This module implements exactly
such an optimizer so the claim can be examined: it predicts the
execution time of every configuration from an analytic cost formula
and picks the argmin.

Its formulas need per-store parameters — roundtrip latency, per-query
overhead, service time — that a real deployment would have to measure
or guess. :class:`CostBasedOptimizer` therefore takes *assumed*
parameters; when they match the true deployment it is near-optimal,
and when they are off (the realistic polystore situation: closed
stores, shifting load) its choices degrade — which is the ablation
``benchmarks/test_ablation_optimizers.py`` runs against ADAPTIVE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.augmentation import AugmentationConfig
from repro.core.augmenters import available_augmenters
from repro.core.runlog import QueryFeatures

#: The parameter grid the cost model searches (same as the baselines').
BATCH_SIZES = (1, 16, 64, 256, 1024)
THREADS_SIZES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class AssumedCosts:
    """What the optimizer believes about the deployment."""

    roundtrip_latency: float = 0.001
    per_query_overhead: float = 0.0005
    per_object_service: float = 0.00002
    thread_spawn_overhead: float = 0.0006
    pool_create_overhead: float = 0.001
    cores: int = 16


class CostBasedOptimizer:
    """Analytic argmin over (augmenter, batch_size, threads_size)."""

    def __init__(self, assumed: AssumedCosts | None = None) -> None:
        self.assumed = assumed or AssumedCosts()

    def configure(
        self, features: QueryFeatures, current_cache_size: int
    ) -> AugmentationConfig:
        best: tuple[float, AugmentationConfig] | None = None
        for augmenter in available_augmenters():
            for batch_size in self._batch_options(augmenter):
                for threads_size in self._thread_options(augmenter):
                    config = AugmentationConfig(
                        augmenter=augmenter,
                        batch_size=batch_size,
                        threads_size=threads_size,
                        cache_size=current_cache_size,
                    )
                    cost = self.estimate(features, config)
                    if best is None or cost < best[0]:
                        best = (cost, config)
        assert best is not None
        return best[1]

    @staticmethod
    def _batch_options(augmenter: str):
        return BATCH_SIZES if augmenter in ("batch", "outer_batch") else (1,)

    @staticmethod
    def _thread_options(augmenter: str):
        if augmenter in ("inner", "outer", "outer_batch", "outer_inner"):
            return THREADS_SIZES
        return (1,)

    # -- the analytic cost formulas -----------------------------------------------

    def estimate(
        self, features: QueryFeatures, config: AugmentationConfig
    ) -> float:
        """Predicted execution time of ``config`` on ``features``."""
        a = self.assumed
        n = max(1, features.planned_fetches)
        seeds = max(1, features.original_count)
        per_seed = n / seeds
        fetch = a.roundtrip_latency + a.per_query_overhead + a.per_object_service
        if config.augmenter == "sequential":
            return n * fetch
        if config.augmenter == "batch":
            queries = self._group_count(features, config, n)
            return queries * (
                a.roundtrip_latency + a.per_query_overhead
            ) + n * a.per_object_service
        if config.augmenter == "inner":
            pool_cost = seeds * a.pool_create_overhead
            spawn = n * a.thread_spawn_overhead
            effective = min(config.threads_size, a.cores, math.ceil(per_seed))
            return pool_cost + spawn + seeds * math.ceil(
                per_seed / effective
            ) * fetch
        if config.augmenter == "outer":
            spawn = seeds * a.thread_spawn_overhead
            effective = min(config.threads_size, a.cores)
            waves = math.ceil(seeds / effective)
            return a.pool_create_overhead + spawn + waves * per_seed * fetch
        if config.augmenter == "outer_batch":
            queries = self._group_count(features, config, n)
            spawn = queries * a.thread_spawn_overhead
            effective = min(config.threads_size, a.cores)
            waves = math.ceil(queries / effective)
            per_query = (
                a.roundtrip_latency
                + a.per_query_overhead
                + config.batch_size * a.per_object_service
            )
            return a.pool_create_overhead + spawn + waves * per_query
        if config.augmenter == "outer_inner":
            half = max(1, config.threads_size // 2)
            spawn = (seeds + n) * a.thread_spawn_overhead
            waves = math.ceil(seeds / min(half, a.cores))
            inner_waves = math.ceil(per_seed / max(1, half))
            return (
                a.pool_create_overhead * (1 + seeds)
                + spawn
                + waves * inner_waves * fetch
            )
        return float("inf")

    @staticmethod
    def _group_count(
        features: QueryFeatures, config: AugmentationConfig, n: float
    ) -> float:
        stores = max(1, features.store_count - 1)
        per_store = n / stores
        return stores * max(1.0, math.ceil(per_store / config.batch_size))
