"""The run-log repository: Phase 1 of the adaptive optimizer.

Collects :class:`~repro.core.runlog.RunRecord` entries (it can be
attached directly to ``Quepa.run_listeners``) and derives the training
sets of Phase 2: for each distinct query signature, the run with the
minimum execution time defines the *best* augmenter and parameters for
that query's feature vector.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.runlog import RunRecord
from repro.ml.dataset import Example


class RunLogRepository:
    """Accumulates run records and derives labelled training examples."""

    def __init__(self) -> None:
        self.records: list[RunRecord] = []

    def __call__(self, record: RunRecord) -> None:
        """Listener form, for ``quepa.run_listeners.append(repo)``."""
        self.add(record)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    # -- training-set derivation --------------------------------------------

    def best_runs(self) -> list[RunRecord]:
        """The fastest run of each distinct query signature."""
        groups: dict[tuple, RunRecord] = {}
        for record in self.records:
            signature = record.query_signature()
            current = groups.get(signature)
            if current is None or record.elapsed < current.elapsed:
                groups[signature] = record
        return list(groups.values())

    def augmenter_examples(self) -> list[Example]:
        """T1 training set: features -> best augmenter name."""
        return [
            Example(best.features.as_dict(), best.augmenter)
            for best in self.best_runs()
        ]

    def batch_size_examples(self) -> list[Example]:
        """T2 training set: features -> best BATCH_SIZE (batching runs)."""
        return [
            Example(best.features.as_dict(), best.batch_size)
            for best in self.best_runs()
            if best.augmenter in ("batch", "outer_batch")
        ]

    def threads_size_examples(self) -> list[Example]:
        """T3 training set: features -> best THREADS_SIZE (concurrent runs)."""
        return [
            Example(best.features.as_dict(), best.threads_size)
            for best in self.best_runs()
            if best.augmenter in ("inner", "outer", "outer_batch", "outer_inner")
        ]

    def cache_size_examples(self) -> list[Example]:
        """T4 training set: features -> CACHE_SIZE of the best run."""
        return [
            Example(best.features.as_dict(), best.cache_size)
            for best in self.best_runs()
        ]

    # -- diagnostics -------------------------------------------------------------

    def runs_per_signature(self) -> dict[tuple, int]:
        counts: dict[tuple, int] = defaultdict(int)
        for record in self.records:
            counts[record.query_signature()] += 1
        return dict(counts)
