"""HUMAN and RANDOM optimizers: the Fig 12 comparison baselines.

* :class:`HumanOptimizer` encodes the expert rules a practitioner would
  apply (and that the paper's authors applied by hand): batch hard in
  distributed deployments, go sequential for tiny answers, size thread
  pools to the plan, keep the cache moderate.
* :class:`RandomOptimizer` draws a configuration uniformly from the
  parameter grid, seeded for reproducibility.

Both produce *parameterizations only* — in the Fig 12 campaign each is
combined with all six augmenters, exactly as the paper describes.
"""

from __future__ import annotations

import random

from repro.core.augmentation import AugmentationConfig
from repro.core.augmenters import available_augmenters
from repro.core.runlog import QueryFeatures

#: The parameter grid the experiments sweep.
BATCH_SIZES = (1, 4, 16, 64, 256, 1024)
THREADS_SIZES = (1, 2, 4, 8, 16, 32)
CACHE_SIZES = (0, 256, 1024, 4096, 16384)


class HumanOptimizer:
    """Deterministic expert heuristics for one run's parameters."""

    def configure(
        self, features: QueryFeatures, current_cache_size: int
    ) -> AugmentationConfig:
        distributed = features.deployment == "distributed"
        planned = features.planned_fetches
        # Expert rule 1: tiny answers -> no point threading or batching.
        if planned <= 32:
            return AugmentationConfig(
                augmenter="sequential",
                batch_size=1,
                threads_size=1,
                cache_size=current_cache_size,
            )
        # Expert rule 2: batch hard when the network is far away.
        if distributed:
            batch_size = 256
        else:
            batch_size = 64
        # Expert rule 3: threads proportional to work per store.
        per_store = max(1, planned // max(1, features.store_count))
        if per_store >= 512:
            threads_size = 16
        elif per_store >= 64:
            threads_size = 8
        else:
            threads_size = 4
        # Expert rule 4: cache helps repeated/overlapping access only.
        cache_size = 4096 if (distributed or features.level > 0) else 1024
        return AugmentationConfig(
            augmenter="outer_batch",  # the expert's favourite; the
            # campaign overrides this with each of the six augmenters
            batch_size=batch_size,
            threads_size=threads_size,
            cache_size=cache_size,
        )


class RandomOptimizer:
    """Uniform random parameterization over the grid."""

    def __init__(self, seed: int = 23) -> None:
        self._rng = random.Random(seed)

    def configure(
        self, features: QueryFeatures, current_cache_size: int
    ) -> AugmentationConfig:
        return AugmentationConfig(
            augmenter=self._rng.choice(available_augmenters()),
            batch_size=self._rng.choice(BATCH_SIZES),
            threads_size=self._rng.choice(THREADS_SIZES),
            cache_size=self._rng.choice(CACHE_SIZES),
        )
