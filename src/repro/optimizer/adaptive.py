"""ADAPTIVE: the rule-based optimizer of Section V.

Phase 2 (training): T1 — a C4.5 decision tree choosing the augmenter;
T2, T3, T4 — RepTree regressors for BATCH_SIZE, THREADS_SIZE and
CACHE_SIZE. Phase 3 (prediction): T1 first, then T2/T3 as the chosen
augmenter requires, then T4 — applied not directly but through the
paper's smoothing formula::

    new_cache = current + (predicted - current) / 10

because cache benefits are spread over future queries, so only gentle
variations of CACHE_SIZE make sense.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.augmentation import AugmentationConfig
from repro.core.runlog import QueryFeatures
from repro.errors import NotTrainedError, TrainingError
from repro.ml.decision_tree import C45Tree
from repro.ml.regression_tree import RepTree
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.logs import RunLogRepository

_BATCHING = ("batch", "outer_batch")
_CONCURRENT = ("inner", "outer", "outer_batch", "outer_inner")


@dataclass
class TrainingReport:
    """Sizes and quality of the four trained models."""

    runs: int = 0
    signatures: int = 0
    t1_examples: int = 0
    t2_examples: int = 0
    t3_examples: int = 0
    t4_examples: int = 0
    t1_accuracy: float = 0.0


class AdaptiveOptimizer:
    """Trains T1-T4 from run logs and predicts configurations.

    Implements the ``Optimizer`` protocol of :mod:`repro.core.system`,
    so an instance can be handed straight to ``Quepa(optimizer=...)``.
    ``retrain_every`` mirrors the paper's periodic retraining: when that
    many new records accumulate, the next prediction retrains first.
    """

    def __init__(
        self,
        logs: RunLogRepository | None = None,
        retrain_every: int | None = None,
        fallback: AugmentationConfig | None = None,
    ) -> None:
        self.logs = logs or RunLogRepository()
        self.retrain_every = retrain_every
        self.fallback = fallback or AugmentationConfig()
        self.t1: C45Tree | None = None
        self.t2: RepTree | None = None
        self.t3: RepTree | None = None
        self.t4: RepTree | None = None
        self._trained_at = 0
        self.report = TrainingReport()
        #: Observability hook; ``Quepa`` binds its own registry here so
        #: the choose/record path shows up in the system's metrics.
        self.metrics: MetricsRegistry | None = None

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Report optimizer activity into ``metrics`` (the Quepa hook)."""
        self.metrics = metrics

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    # -- Phase 2: training -------------------------------------------------------

    def train(self) -> TrainingReport:
        """Fit T1-T4 from the current run logs."""
        t1_examples = self.logs.augmenter_examples()
        if len(t1_examples) < 2:
            raise TrainingError(
                "need at least two distinct query signatures to train"
            )
        self.t1 = C45Tree(min_leaf=2).fit(t1_examples)
        t2_examples = self.logs.batch_size_examples()
        t3_examples = self.logs.threads_size_examples()
        t4_examples = self.logs.cache_size_examples()
        self.t2 = RepTree().fit(t2_examples) if len(t2_examples) >= 4 else None
        self.t3 = RepTree().fit(t3_examples) if len(t3_examples) >= 4 else None
        self.t4 = RepTree().fit(t4_examples) if len(t4_examples) >= 4 else None
        self._trained_at = len(self.logs)
        self._count("optimizer_trainings_total")
        self.report = TrainingReport(
            runs=len(self.logs),
            signatures=len(self.logs.best_runs()),
            t1_examples=len(t1_examples),
            t2_examples=len(t2_examples),
            t3_examples=len(t3_examples),
            t4_examples=len(t4_examples),
            t1_accuracy=self.t1.accuracy(t1_examples),
        )
        return self.report

    @property
    def is_trained(self) -> bool:
        return self.t1 is not None

    def _maybe_retrain(self) -> None:
        if self.retrain_every is None:
            return
        if len(self.logs) - self._trained_at >= self.retrain_every:
            try:
                self.train()
            except TrainingError:
                pass  # keep the previous models until enough logs exist

    # -- Phase 3: prediction --------------------------------------------------------

    def configure(
        self, features: QueryFeatures, current_cache_size: int
    ) -> AugmentationConfig:
        """Predict the configuration for one query (the Quepa hook)."""
        self._maybe_retrain()
        if self.t1 is None:
            self._count("optimizer_fallbacks_total")
            return self.fallback
        row = features.as_dict()
        augmenter = self.t1.predict(row)
        self._count("optimizer_predictions_total", augmenter=augmenter)
        batch_size = self.fallback.batch_size
        if augmenter in _BATCHING and self.t2 is not None:
            batch_size = max(1, round(self.t2.predict(row)))
        threads_size = self.fallback.threads_size
        if augmenter in _CONCURRENT and self.t3 is not None:
            threads_size = max(1, round(self.t3.predict(row)))
        cache_size = current_cache_size
        if self.t4 is not None:
            predicted = max(0.0, self.t4.predict(row))
            cache_size = self.smooth_cache_size(current_cache_size, predicted)
        return AugmentationConfig(
            augmenter=augmenter,
            batch_size=batch_size,
            threads_size=threads_size,
            cache_size=cache_size,
        )

    @staticmethod
    def smooth_cache_size(current: int, predicted: float) -> int:
        """The paper's formula: current + (predicted - current) / 10."""
        return max(0, round(current + (predicted - current) / 10.0))

    def explain_choice(
        self, features: QueryFeatures, current_cache_size: int
    ) -> dict:
        """The configuration :meth:`configure` would pick, plus which
        rules (T1-T4) fired and why.

        Side-effect free: no retraining is triggered and no metrics are
        bumped, so EXPLAIN never perturbs what it observes.
        """
        rules: list[dict] = []
        if self.t1 is None:
            rules.append(
                {
                    "tree": "T1",
                    "role": "augmenter",
                    "fired": False,
                    "outcome": self.fallback.augmenter,
                    "detail": "not trained; fallback config used",
                }
            )
            return {"config": self.fallback, "rules": rules}
        row = features.as_dict()
        augmenter = self.t1.predict(row)
        rules.append(
            {
                "tree": "T1",
                "role": "augmenter",
                "fired": True,
                "outcome": augmenter,
                "detail": " / ".join(self.t1.decision_path(row)),
            }
        )
        batch_size = self.fallback.batch_size
        if augmenter in _BATCHING and self.t2 is not None:
            batch_size = max(1, round(self.t2.predict(row)))
            rules.append(
                {
                    "tree": "T2",
                    "role": "batch_size",
                    "fired": True,
                    "outcome": batch_size,
                    "detail": f"{augmenter} batches, regressor predicted "
                    f"{self.t2.predict(row):g}",
                }
            )
        else:
            rules.append(
                {
                    "tree": "T2",
                    "role": "batch_size",
                    "fired": False,
                    "outcome": batch_size,
                    "detail": (
                        f"{augmenter} does not batch"
                        if augmenter not in _BATCHING
                        else "not trained"
                    ),
                }
            )
        threads_size = self.fallback.threads_size
        if augmenter in _CONCURRENT and self.t3 is not None:
            threads_size = max(1, round(self.t3.predict(row)))
            rules.append(
                {
                    "tree": "T3",
                    "role": "threads_size",
                    "fired": True,
                    "outcome": threads_size,
                    "detail": f"{augmenter} is concurrent, regressor "
                    f"predicted {self.t3.predict(row):g}",
                }
            )
        else:
            rules.append(
                {
                    "tree": "T3",
                    "role": "threads_size",
                    "fired": False,
                    "outcome": threads_size,
                    "detail": (
                        f"{augmenter} is sequential"
                        if augmenter not in _CONCURRENT
                        else "not trained"
                    ),
                }
            )
        cache_size = current_cache_size
        if self.t4 is not None:
            predicted = max(0.0, self.t4.predict(row))
            cache_size = self.smooth_cache_size(current_cache_size, predicted)
            rules.append(
                {
                    "tree": "T4",
                    "role": "cache_size",
                    "fired": True,
                    "outcome": cache_size,
                    "detail": f"smoothed {current_cache_size} toward "
                    f"predicted {predicted:g}: current + (predicted - "
                    f"current) / 10",
                }
            )
        else:
            rules.append(
                {
                    "tree": "T4",
                    "role": "cache_size",
                    "fired": False,
                    "outcome": cache_size,
                    "detail": "not trained; cache size unchanged",
                }
            )
        return {
            "config": AugmentationConfig(
                augmenter=augmenter,
                batch_size=batch_size,
                threads_size=threads_size,
                cache_size=cache_size,
            ),
            "rules": rules,
        }

    # -- inspection -----------------------------------------------------------------

    def describe(self) -> str:
        """T1 rendered as text (the shape of the paper's Fig 8)."""
        if self.t1 is None:
            raise NotTrainedError("optimizer is not trained")
        return self.t1.to_text()
