"""Adaptive augmentation (Section V): the rule-based optimizer.

QUEPA logs every completed augmentation run (:mod:`repro.core.runlog`);
the :class:`~repro.optimizer.adaptive.AdaptiveOptimizer` trains four
trees over those logs — T1 picks the augmenter, T2/T3 its BATCH_SIZE /
THREADS_SIZE, T4 the CACHE_SIZE — and then predicts a configuration for
each incoming query. The HUMAN and RANDOM baselines of Fig 12 are in
:mod:`repro.optimizer.baselines`.
"""

from repro.optimizer.adaptive import AdaptiveOptimizer
from repro.optimizer.baselines import HumanOptimizer, RandomOptimizer
from repro.optimizer.logs import RunLogRepository

__all__ = [
    "AdaptiveOptimizer",
    "HumanOptimizer",
    "RandomOptimizer",
    "RunLogRepository",
]
