"""A partitioned QUEPA cluster: instances own shards, not replicas.

:class:`~repro.cluster.cluster.QuepaCluster` scales reads by giving
every instance a *full replica* of the A' index. ``ShardedCluster``
grows that into a partitioned deployment: one authoritative
:class:`~repro.sharding.aindex.ShardedAIndex` whose partitions are
owned by instances (``shard % instances``), with every instance's QUEPA
reading through a view of the shared structure. Queries still dispatch
by policy exactly as in the replica cluster, but index *maintenance* is
no longer a broadcast to everyone:

* ``add_relation`` is delivered only to the owners of the two
  endpoints' shards;
* ``remove_object`` is delivered only to the owners of the partitions
  that actually hold adjacency entries for the key (its home shard plus
  the shards holding cross-shard stubs, from the cross-edge table);
* lazy deletions discovered during a batch are applied through the same
  ownership routing, and ``drain()`` re-delivers them idempotently to
  owners only.

The last point is the partitioned-case fix for the replica cluster's
``_sync_lazy_deletions``: that method union-diffs per-instance node
sets and re-broadcasts every difference as a deletion. Under
partitioning, a key absent from a non-owning partition is absent *by
design* — the union-diff would "re-broadcast" every node of every other
partition as a deletion and wipe the index. ``ShardedCluster``
overrides the sync to route recorded deletions by ownership instead of
inferring deletions from node-set differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cluster.cluster import DispatchPolicy, QuepaCluster, _Instance
from repro.core.augmentation import AugmentationConfig
from repro.core.system import Quepa
from repro.errors import ConfigurationError
from repro.model.objects import GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation, RelationType
from repro.network.latency import DeploymentProfile, centralized_profile
from repro.sharding.aindex import ShardedAIndex


@dataclass(frozen=True)
class Delivery:
    """One maintenance message delivered to one instance."""

    operation: str
    target: Any


@dataclass
class _OwnedInstance(_Instance):
    """A cluster member plus the shards and messages it owns/received."""

    shards: list[int] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)


class _InstanceIndexView:
    """One instance's window onto the shared partitioned index.

    Reads delegate to the authoritative :class:`ShardedAIndex` (frozen
    snapshots included, so the plan cache keys on the shared snapshot).
    Mutations route through the cluster's ownership-aware broadcast —
    a lazy deletion one instance discovers is recorded against that
    instance and applied exactly once, to owners only.
    """

    partitioned = True

    def __init__(self, cluster: "ShardedCluster", instance: int) -> None:
        self._cluster = cluster
        self.instance = instance

    # -- delegated reads -----------------------------------------------------

    @property
    def _index(self) -> ShardedAIndex:
        return self._cluster.aindex

    @property
    def generation(self) -> int:
        return self._index.generation

    @property
    def refreezes(self) -> int:
        return self._index.refreezes

    @property
    def shards(self) -> int:
        return self._index.shards

    def frozen(self):
        return self._index.frozen()

    def neighbors(self, key: GlobalKey, rel_type: RelationType | None = None):
        return self._index.neighbors(key, rel_type)

    def neighbor_arcs(self, key: GlobalKey):
        return self._index.neighbor_arcs(key)

    def relation(self, a: GlobalKey, b: GlobalKey):
        return self._index.relation(a, b)

    def degree(self, key: GlobalKey) -> int:
        return self._index.degree(key)

    def nodes(self) -> Iterator[GlobalKey]:
        return self._index.nodes()

    def node_count(self) -> int:
        return self._index.node_count()

    def edge_count(self) -> int:
        return self._index.edge_count()

    def __contains__(self, key: GlobalKey) -> bool:
        return key in self._index

    # -- routed mutations ----------------------------------------------------

    def add(self, relation: PRelation) -> None:
        self._cluster.add_relation(relation)

    def remove_object(self, key: GlobalKey) -> int:
        return self._cluster._lazy_delete(self.instance, key)


class ShardedCluster(QuepaCluster):
    """N QUEPA instances over one polystore, each owning index shards."""

    def __init__(
        self,
        polystore: Polystore,
        aindex: ShardedAIndex,
        instances: int = 2,
        policy: DispatchPolicy = DispatchPolicy.LEAST_LOADED,
        profile: DeploymentProfile | None = None,
        config: AugmentationConfig | None = None,
    ) -> None:
        if not isinstance(aindex, ShardedAIndex):
            raise ConfigurationError(
                "ShardedCluster needs a ShardedAIndex; use QuepaCluster "
                "for replica deployments"
            )
        if instances < 1:
            raise ConfigurationError(
                f"a cluster needs at least one instance, got {instances}"
            )
        if instances > aindex.shards:
            raise ConfigurationError(
                f"{instances} instances cannot each own a shard of a "
                f"{aindex.shards}-shard index"
            )
        self.polystore = polystore
        self.aindex = aindex
        self.policy = policy
        profile = profile or centralized_profile(list(polystore))
        #: shard -> owning instance (round-robin assignment).
        self.ownership = {
            shard: shard % instances for shard in range(aindex.shards)
        }
        self._pending_deletions: list[tuple[int, GlobalKey]] = []
        self._instances = [
            _OwnedInstance(
                Quepa(
                    polystore,
                    _InstanceIndexView(self, index),
                    profile=profile,
                    config=config,
                ),
                shards=[
                    shard
                    for shard, owner in self.ownership.items()
                    if owner == index
                ],
            )
            for index in range(instances)
        ]
        self._clock = 0.0
        self._round_robin = 0
        self._pending = []

    # -- ownership -----------------------------------------------------------

    def owner_of(self, shard: int) -> int:
        return self.ownership[shard]

    def owned_shards(self, instance: int) -> list[int]:
        return list(self._instances[instance].shards)

    def deliveries(self, instance: int) -> list[Delivery]:
        return list(self._instances[instance].deliveries)

    def _deliver(self, shards: set[int], delivery: Delivery) -> set[int]:
        owners = {self.owner_of(shard) for shard in shards}
        for owner in sorted(owners):
            self._instances[owner].deliveries.append(delivery)
        return owners

    # -- index maintenance (ownership-routed) --------------------------------

    def add_relation(self, relation: PRelation) -> None:
        """Insert a p-relation, delivered only to the owning shards."""
        shards = {
            self.aindex.shard_of(relation.left),
            self.aindex.shard_of(relation.right),
        }
        self._deliver(shards, Delivery("add_relation", relation))
        self.aindex.add(relation)

    def remove_object(self, key: GlobalKey) -> int:
        """Lazy-delete an object, delivered only to the partitions that
        hold adjacency entries for it (home shard + cross-edge stubs)."""
        shards = self.aindex.owning_shards(key)
        self._deliver(shards, Delivery("remove_object", key))
        return self.aindex.remove_object(key)

    def _lazy_delete(self, instance: int, key: GlobalKey) -> int:
        self._pending_deletions.append((instance, key))
        return self.remove_object(key)

    def _sync_lazy_deletions(self) -> None:
        """Partitioned-case deletion sync.

        Unlike the replica cluster, deletions are *recorded* when an
        instance discovers them and re-delivered idempotently to owners
        only — never inferred by diffing per-instance node sets, which
        under partitioning would mistake by-design absence for deletion
        and wipe every partition of the index.
        """
        for __, key in self._pending_deletions:
            if key in self.aindex:
                self.remove_object(key)
        self._pending_deletions = []
