"""A cluster of QUEPA instances answering independent queries.

Each instance owns an A' index **replica** and its own cache and
runtime; the underlying polystore is shared (QUEPA stores no data).
Queries submitted to the cluster are dispatched by policy:

* ``round_robin`` — instance ``i = n mod size``;
* ``least_loaded`` — the instance that becomes free earliest.

Timing model: instance ``i`` is busy until the completion of its
previous query; a query submitted at cluster time ``t`` on instance
``i`` completes at ``max(t, free_i) + elapsed`` where ``elapsed`` is
the instance's measured (virtual) execution time. ``drain()`` returns
when every submitted query is done and reports the makespan, so tests
can verify that adding instances shortens a batch of independent
queries — the property the paper's architecture section claims.

Index maintenance (new p-relations, promotions, lazy deletions) must
reach every replica; the cluster exposes :meth:`add_relation` /
:meth:`remove_object` broadcasts, and per-instance lazy deletions are
re-broadcast on drain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.aindex import AIndex
from repro.core.augmentation import AugmentationConfig
from repro.core.search import AugmentedAnswer
from repro.core.system import Quepa
from repro.errors import ConfigurationError
from repro.model.objects import GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation
from repro.network.latency import DeploymentProfile, centralized_profile


class DispatchPolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"


@dataclass
class ClusterResult:
    """One completed query: its answer plus cluster-level timing."""

    answer: AugmentedAnswer
    instance: int
    submitted_at: float
    started_at: float
    completed_at: float

    @property
    def waited(self) -> float:
        return self.started_at - self.submitted_at


@dataclass
class _Instance:
    quepa: Quepa
    free_at: float = 0.0
    queries_served: int = 0


@dataclass
class ClusterReport:
    """What one drain() observed."""

    results: list[ClusterResult] = field(default_factory=list)
    makespan: float = 0.0

    def per_instance_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for result in self.results:
            counts[result.instance] = counts.get(result.instance, 0) + 1
        return counts


class QuepaCluster:
    """N QUEPA instances over one polystore."""

    def __init__(
        self,
        polystore: Polystore,
        aindex: AIndex,
        instances: int = 2,
        policy: DispatchPolicy = DispatchPolicy.LEAST_LOADED,
        profile: DeploymentProfile | None = None,
        config: AugmentationConfig | None = None,
    ) -> None:
        if instances < 1:
            raise ConfigurationError(
                f"a cluster needs at least one instance, got {instances}"
            )
        self.polystore = polystore
        self.policy = policy
        profile = profile or centralized_profile(list(polystore))
        self._instances = [
            _Instance(
                Quepa(
                    polystore,
                    aindex.copy(),  # each instance: its own replica
                    profile=profile,
                    config=config,
                )
            )
            for __ in range(instances)
        ]
        self._clock = 0.0
        self._round_robin = 0
        self._pending: list[ClusterResult] = []

    # -- sizing -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instances)

    def instance(self, index: int) -> Quepa:
        return self._instances[index].quepa

    # -- query dispatch ------------------------------------------------------------

    def submit(
        self,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
    ) -> ClusterResult:
        """Dispatch one query; returns its result with cluster timing."""
        index = self._pick_instance()
        instance = self._instances[index]
        submitted = self._clock
        started = max(submitted, instance.free_at)
        answer = instance.quepa.augmented_search(
            database, query, level=level, config=config
        )
        completed = started + answer.stats.elapsed
        instance.free_at = completed
        instance.queries_served += 1
        result = ClusterResult(
            answer=answer,
            instance=index,
            submitted_at=submitted,
            started_at=started,
            completed_at=completed,
        )
        self._pending.append(result)
        return result

    def drain(self) -> ClusterReport:
        """Finish the current batch: report results and the makespan."""
        report = ClusterReport(results=list(self._pending))
        if report.results:
            report.makespan = max(r.completed_at for r in report.results)
            self._clock = report.makespan
        self._pending = []
        self._sync_lazy_deletions()
        return report

    def _pick_instance(self) -> int:
        if self.policy is DispatchPolicy.ROUND_ROBIN:
            index = self._round_robin % len(self._instances)
            self._round_robin += 1
            return index
        return min(
            range(len(self._instances)),
            key=lambda i: (self._instances[i].free_at, i),
        )

    # -- index maintenance broadcast --------------------------------------------------

    def add_relation(self, relation: PRelation) -> None:
        """Insert a p-relation into every replica."""
        for instance in self._instances:
            instance.quepa.aindex.add(relation)

    def remove_object(self, key: GlobalKey) -> None:
        """Lazy-delete an object from every replica."""
        for instance in self._instances:
            instance.quepa.aindex.remove_object(key)

    def _sync_lazy_deletions(self) -> None:
        """Re-broadcast deletions one replica discovered during a batch
        (an object missing in the polystore is missing for everyone).

        Replica-only reconciliation: inferring deletions from node-set
        differences is correct precisely because every instance holds a
        *full* replica. A partitioned index (per-instance node sets
        differ by design) must never run this union-diff — a key absent
        from a non-owning partition would be mistaken for a deletion
        and re-broadcast everywhere. ``ShardedCluster`` overrides this
        with ownership-routed delivery of *recorded* deletions.
        """
        if any(
            getattr(instance.quepa.aindex, "partitioned", False)
            for instance in self._instances
        ):
            raise ConfigurationError(
                "replica-style deletion sync cannot run over partitioned "
                "indexes; use ShardedCluster"
            )
        all_nodes: list[set[GlobalKey]] = [
            set(instance.quepa.aindex.nodes()) for instance in self._instances
        ]
        union: set[GlobalKey] = set().union(*all_nodes) if all_nodes else set()
        for nodes in all_nodes:
            for gone in union - nodes:
                self.remove_object(gone)
