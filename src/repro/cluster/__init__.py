"""Multi-instance QUEPA deployment (Section III-A).

"Since QUEPA does not store any data, it is easy to deploy multiple
instances of the system that can answer independent queries in
parallel. In this case, each instance has its own A' index replica and
its own augmenter." This package implements that deployment:
:class:`~repro.cluster.cluster.QuepaCluster` runs N instances over one
polystore, dispatches independent queries across them, keeps the
replicas in sync on index maintenance, and accounts completion times on
the shared virtual clock.
:class:`~repro.cluster.sharded.ShardedCluster` grows the deployment
from replicas to partitions: instances own disjoint shards of a
:class:`~repro.sharding.aindex.ShardedAIndex` and index maintenance is
routed only to owning shards.
"""

from repro.cluster.cluster import ClusterResult, DispatchPolicy, QuepaCluster
from repro.cluster.sharded import Delivery, ShardedCluster

__all__ = [
    "ClusterResult",
    "Delivery",
    "DispatchPolicy",
    "QuepaCluster",
    "ShardedCluster",
]
