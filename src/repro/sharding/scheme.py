"""Partition schemes: how a store's objects map onto shards.

The polystore literature (BigDAWG's islands, Polybase's partitioned
external tables) exposes one core placement trade-off that QUEPA's
augmentation workload makes vivid:

* **hash-by-entity-key** — every local key deterministically owns one
  shard, so point lookups and ``multi_get`` (the augmentation hot path)
  route to exactly the owning shards and all other partitions are
  *provably* prunable. Scans, lacking key knowledge, fan out.
* **range-by-key** — objects are placed by a numeric token (the
  workload's ``seq`` attribute), so windowed scans touch only the
  partitions whose token interval overlaps the query window. Point
  lookups cannot derive the token from an opaque key and must probe
  every shard.

Both schemes answer two questions: *where does this object live*
(placement, decided once when the store is split) and *which shards can
possibly answer this request* (pruning, decided per request). Pruning
is exact for hash placement (key arithmetic) and interval-based for
range placement (shard boundary overlap).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence
from zlib import crc32

from repro.errors import ConfigurationError
from repro.model.objects import GlobalKey


def hash_shard(local_key: str, shards: int) -> int:
    """The canonical key→shard map: CRC-32 of the local key.

    CRC-32 rather than ``hash()``: Python string hashing is salted per
    process (PYTHONHASHSEED), and placement must be stable across
    processes, snapshots and reruns.
    """
    return crc32(local_key.encode("utf-8")) % shards


@dataclass
class KeyRouting:
    """Where a batch of keys must be fetched from.

    ``groups`` lists ``(shard, keys)`` pairs for every partition that
    must be probed; ``scanned``/``pruned`` are the partition ids probed
    and provably skipped. ``fanout`` is the number of per-shard calls
    one scatter-gather fetch issues.
    """

    placement: str
    shards: int
    groups: list[tuple[int, list[GlobalKey]]] = field(default_factory=list)
    scanned: list[int] = field(default_factory=list)
    pruned: list[int] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.groups)

    @property
    def per_key_fanout(self) -> float:
        """Mean number of shards probed per requested key (1.0 when
        every key routes to exactly its owning shard)."""
        keys = len({key for __, group in self.groups for key in group})
        if not keys:
            return 0.0
        probes = sum(len(group) for __, group in self.groups)
        return probes / keys


class PartitionScheme(ABC):
    """Placement + pruning policy for one sharded store."""

    placement: str = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"a partition scheme needs at least one shard, got {shards}"
            )
        self.shards = shards

    @abstractmethod
    def shard_of_key(self, local_key: str) -> int | None:
        """The owning shard derivable from the key alone, or ``None``
        when placement cannot be inferred from an opaque key (range
        placement) and every shard must be probed."""

    @abstractmethod
    def shard_of_object(
        self, collection: str, local_key: str, value: Any
    ) -> int:
        """The placement decision for one object (split time)."""

    def prepare(self, store) -> None:
        """Hook called before splitting ``store`` (e.g. to fit range
        boundaries from the observed token distribution)."""

    def scan_candidates(
        self, interval: tuple[float, float] | None
    ) -> list[int]:
        """Shards that can possibly answer a scan over ``interval``
        (a half-open ``[lo, hi)`` token window, or ``None`` when the
        query's token window is unknown)."""
        return list(range(self.shards))

    def describe(self) -> dict[str, Any]:
        return {"placement": self.placement, "shards": self.shards}


class HashScheme(PartitionScheme):
    """Entity-keyed placement: ``crc32(local_key) % shards``."""

    placement = "hash"

    def shard_of_key(self, local_key: str) -> int | None:
        return hash_shard(local_key, self.shards)

    def shard_of_object(
        self, collection: str, local_key: str, value: Any
    ) -> int:
        return hash_shard(local_key, self.shards)


class RangeScheme(PartitionScheme):
    """Range placement over a numeric token carried by the object.

    ``boundaries`` holds ``shards - 1`` ascending cut points; shard
    ``i`` owns tokens in ``[boundaries[i-1], boundaries[i])`` with
    implicit ±infinity at the ends. Objects without the token field
    fall back to shard 0 (and disable pruning shard 0 away).
    """

    placement = "range"

    def __init__(
        self,
        shards: int,
        token_field: str = "seq",
        boundaries: Sequence[float] | None = None,
    ) -> None:
        super().__init__(shards)
        self.token_field = token_field
        self.boundaries: list[float] | None = (
            sorted(boundaries) if boundaries is not None else None
        )
        if self.boundaries is not None and len(self.boundaries) != shards - 1:
            raise ConfigurationError(
                f"range placement over {shards} shards needs "
                f"{shards - 1} boundaries, got {len(self.boundaries)}"
            )
        #: Observed token range per shard, for EXPLAIN output.
        self.observed: dict[int, tuple[float, float]] = {}
        #: True once an object without the token was placed on shard 0.
        self.has_untokened = False

    def fit(self, tokens: Sequence[float]) -> None:
        """Choose boundaries as equal-count quantiles of ``tokens``."""
        ordered = sorted(tokens)
        if not ordered:
            self.boundaries = [0.0] * (self.shards - 1)
            return
        self.boundaries = [
            ordered[min(len(ordered) - 1, (i * len(ordered)) // self.shards)]
            for i in range(1, self.shards)
        ]

    def prepare(self, store) -> None:
        if self.boundaries is not None:
            return
        tokens: list[float] = []
        for collection in store.collections():
            for local_key in store.collection_keys(collection):
                token = self._token(store.get_value(collection, local_key))
                if token is not None:
                    tokens.append(token)
        self.fit(tokens)

    def _token(self, value: Any) -> float | None:
        if isinstance(value, Mapping):
            token = value.get(self.token_field)
            if isinstance(token, (int, float)) and not isinstance(token, bool):
                return float(token)
        return None

    def shard_of_token(self, token: float) -> int:
        assert self.boundaries is not None, "fit boundaries before placing"
        low = 0
        for cut in self.boundaries:
            if token < cut:
                break
            low += 1
        return low

    def shard_of_key(self, local_key: str) -> int | None:
        # The token is not derivable from an opaque key: point lookups
        # must probe every shard. This is the cost side of the
        # range-placement trade-off, and it is deliberate.
        return None

    def shard_of_object(
        self, collection: str, local_key: str, value: Any
    ) -> int:
        token = self._token(value)
        if token is None:
            self.has_untokened = True
            return 0
        if self.boundaries is None:
            raise ConfigurationError(
                "range scheme has no boundaries; call fit()/prepare() first"
            )
        shard = self.shard_of_token(token)
        lo, hi = self.observed.get(shard, (token, token))
        self.observed[shard] = (min(lo, token), max(hi, token))
        return shard

    def shard_interval(self, shard: int) -> tuple[float, float]:
        """The half-open token interval shard ``shard`` owns."""
        assert self.boundaries is not None
        lo = float("-inf") if shard == 0 else self.boundaries[shard - 1]
        hi = (
            float("inf")
            if shard == self.shards - 1
            else self.boundaries[shard]
        )
        return lo, hi

    def scan_candidates(
        self, interval: tuple[float, float] | None
    ) -> list[int]:
        if interval is None or self.boundaries is None:
            return list(range(self.shards))
        lo, hi = interval
        candidates = []
        for shard in range(self.shards):
            shard_lo, shard_hi = self.shard_interval(shard)
            if shard_lo < hi and shard_hi > lo:
                candidates.append(shard)
        if self.has_untokened and 0 not in candidates:
            candidates.insert(0, 0)
        return candidates

    def describe(self) -> dict[str, Any]:
        report = super().describe()
        report["token_field"] = self.token_field
        report["boundaries"] = list(self.boundaries or [])
        if self.observed:
            report["observed"] = {
                shard: list(bounds)
                for shard, bounds in sorted(self.observed.items())
            }
        return report


def make_scheme(
    placement: str, shards: int, token_field: str = "seq"
) -> PartitionScheme:
    """Factory used by the CLI and the benchmark sweeps."""
    if placement == "hash":
        return HashScheme(shards)
    if placement == "range":
        return RangeScheme(shards, token_field=token_field)
    raise ConfigurationError(
        f"unknown placement {placement!r}; expected 'hash' or 'range'"
    )


#: ``seq >= A AND seq < B`` — the exact window shape the workload's SQL
#: queries use. Compiled per token field on demand.
_SQL_WINDOW = "{tok}\\s*>=\\s*(-?\\d+)\\s+AND\\s+{tok}\\s*<\\s*(-?\\d+)"


def query_interval(
    engine: str, query: Any, token_field: str = "seq"
) -> tuple[float, float] | None:
    """The half-open token window a native query provably stays inside.

    Returns ``None`` when no window can be derived — the caller must
    then treat every partition as a candidate. Only *provable* windows
    are returned; a wrong interval would silently drop answers, so the
    extraction is deliberately conservative.
    """
    if engine == "relational" and isinstance(query, str):
        match = re.search(
            _SQL_WINDOW.format(tok=re.escape(token_field)), query
        )
        if match:
            return float(match.group(1)), float(match.group(2))
        return None
    if engine == "document":
        condition = None
        if isinstance(query, Mapping):
            filter_ = query.get("filter")
            if isinstance(filter_, Mapping):
                condition = filter_.get(token_field)
        if isinstance(condition, Mapping):
            lo = condition.get("$gte")
            if lo is None and "$gt" in condition:
                lo = condition["$gt"] + 1
            hi = condition.get("$lt")
            if hi is None and "$lte" in condition:
                hi = condition["$lte"] + 1
            if isinstance(lo, (int, float)) and isinstance(hi, (int, float)):
                return float(lo), float(hi)
        return None
    return None
