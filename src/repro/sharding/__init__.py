"""Sharding: partitioned stores, a partitioned A' index, and
scatter-gather augmentation with partition pruning."""

from repro.sharding.aindex import (
    ShardedAIndex,
    ShardedFrozenAIndex,
    default_index_placement,
    shard_aindex,
)
from repro.sharding.connector import ShardConnector
from repro.sharding.scheme import (
    HashScheme,
    KeyRouting,
    PartitionScheme,
    RangeScheme,
    hash_shard,
    make_scheme,
    query_interval,
)
from repro.sharding.store import (
    ShardedStore,
    partition_store,
    shard_polystore,
)

__all__ = [
    "HashScheme",
    "KeyRouting",
    "PartitionScheme",
    "RangeScheme",
    "ShardConnector",
    "ShardedAIndex",
    "ShardedFrozenAIndex",
    "ShardedStore",
    "default_index_placement",
    "hash_shard",
    "make_scheme",
    "partition_store",
    "query_interval",
    "shard_aindex",
    "shard_polystore",
]
