"""Scatter-gather key fetches against a sharded store.

``ShardConnector`` replaces the plain connector whenever a database of
the polystore is a :class:`~repro.sharding.store.ShardedStore`. The
``PlannedFetch`` layer above is unchanged: augmenters still hand whole
key groups to ``fetch_many``. The connector routes the group through
the store's partition scheme and:

* **fan-out 1** (hash placement, or one shard) — delegates to the base
  connector path: one native batch call, identical virtual cost to the
  unsharded store, accelerator (coalescing/hedging) still applies.
  This is what keeps the fig09 guard bit-identical for one shard.
* **fan-out N** — issues one per-shard ``multi_get`` per owning
  partition *in parallel* through ``ctx.pool``, the same gated executor
  the augmenters use, then merges preserving first-occurrence key
  order. Partitions the scheme proves empty for the group are pruned
  (never called). The parallel scatter path bypasses the store-call
  accelerator: hedging a call that is already fanned out per shard
  would double-count capacity.

Every routed fetch records the fan-out histogram and the scanned/pruned
partition counters on the runtime's metrics registry.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.connectors import Connector
from repro.model.objects import DataObject, GlobalKey
from repro.network.executor import ExecContext
from repro.sharding.scheme import KeyRouting

#: Shard-count buckets for the fan-out histogram (latency buckets make
#: no sense for small integer counts).
FANOUT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class ShardConnector(Connector):
    """Key-based access to one sharded database of the polystore."""

    def fetch_one(
        self, ctx: ExecContext, key: GlobalKey
    ) -> DataObject | None:
        results = self.fetch_many(ctx, (key,))
        return results[0] if results else None

    def fetch_many(
        self, ctx: ExecContext, keys: Sequence[GlobalKey]
    ) -> list[DataObject]:
        if not keys:
            return []
        routing = self.store.route_keys(keys)
        self._record_routing(ctx, routing)
        if routing.fanout <= 1:
            # Single owning shard: the facade's own multi_get routes it,
            # with the exact cost/accelerator behaviour of the base path.
            return super().fetch_many(ctx, keys)
        self.store.stats.multi_gets += 1
        with ctx.span(
            "scatter_gather",
            database=self.database,
            fanout=routing.fanout,
            keys=len(keys),
            scanned=len(routing.scanned),
            pruned=len(routing.pruned),
        ):
            pool = ctx.pool(routing.fanout)
            for shard, shard_keys in routing.groups:
                pool.submit(self._shard_task(shard, shard_keys))
            fetched: dict[GlobalKey, DataObject] = {}
            for chunk in pool.join():
                if not chunk:
                    continue
                for obj in chunk:
                    fetched.setdefault(obj.key, obj)
        found = [
            fetched[key] for key in dict.fromkeys(keys) if key in fetched
        ]
        self.store.stats.objects_returned += len(found)
        return found

    def _shard_task(self, shard: int, shard_keys: list[GlobalKey]):
        engine = self.store.shards[shard]

        def op() -> list[DataObject]:
            # Per-shard engine lock, not the facade's: shards are
            # independent services and must not serialize on one
            # another under the real runtime.
            with engine.lock:
                return engine.multi_get(shard_keys)

        query = ("multi_get", len(shard_keys), f"shard={shard}")

        def task(child_ctx):
            # One child span per owning shard: the scatter's fan-out
            # becomes visible per partition in the request's trace.
            with child_ctx.span(
                "shard_fetch",
                database=self.database,
                shard=shard,
                keys=len(shard_keys),
            ):
                return self._issue(child_ctx, op, query)

        return task

    def _record_routing(self, ctx: ExecContext, routing: KeyRouting) -> None:
        metrics = ctx.obs.metrics
        metrics.histogram(
            "augment_fanout_shards",
            buckets=FANOUT_BUCKETS,
            database=self.database,
        ).observe(float(routing.fanout))
        metrics.counter(
            "shard_partitions_scanned_total", database=self.database
        ).inc(len(routing.scanned))
        metrics.counter(
            "shard_partitions_pruned_total", database=self.database
        ).inc(len(routing.pruned))
