"""A partitioned A' index whose p-relations may cross shard boundaries.

``ShardedAIndex`` keeps the exact insertion semantics of
:class:`~repro.core.aindex.AIndex` — supersedence, the Consistency
Condition's identity/matching propagation, lineage, generations, lazy
deletion — but stores each node's neighbour list in the partition that
*owns the node*: an edge ``a -- b`` with ``shard(a) = i`` and
``shard(b) = j`` records ``a → b`` in partition ``i`` and ``b → a`` in
partition ``j``. Edges with ``i != j`` are additionally tracked in a
cross-shard edge table, which is what cluster maintenance uses to route
a deletion to every partition that holds a stub of the node.

Freezing produces a :class:`ShardedFrozenAIndex`: one per-partition
:class:`~repro.core.compressed.FrozenAIndex` CSR snapshot plus the
cross-edge table. Because every node's full neighbour list lives in its
owning partition (cross-shard neighbours included, as stubs), routing a
traversal step to the owner's snapshot reproduces the unsharded
``FrozenAIndex`` semantics edge-for-edge — per-node adjacency order is
preserved, so the planner's tie-breaking is unchanged.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterable, Iterator
from zlib import crc32

from repro.core.aindex import AIndex, Neighbor, _pair
from repro.errors import ConfigurationError
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType


def default_index_placement(shards: int) -> Callable[[GlobalKey], int]:
    """Deterministic key→shard map for index nodes (CRC-32 of the
    textual global key — stable across processes, like store routing)."""

    def placement(key: GlobalKey) -> int:
        return crc32(str(key).encode("utf-8")) % shards

    return placement


class ShardedAIndex:
    """An A' index partitioned into per-shard adjacency maps."""

    #: Marker for cluster machinery: node sets differ per partition by
    #: design, so replica-style union-diff reconciliation must not run.
    partitioned = True

    def __init__(
        self,
        shards: int = 2,
        enforce_consistency: bool = True,
        placement: Callable[[GlobalKey], int] | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"a sharded index needs at least one shard, got {shards}"
            )
        self.shards = shards
        self._placement = placement or default_index_placement(shards)
        #: shard -> key -> neighbour key -> (type, probability)
        self._partitions: list[
            dict[GlobalKey, dict[GlobalKey, tuple[RelationType, float]]]
        ] = [{} for __ in range(shards)]
        #: cross-shard edge table: pair -> (shard(a), shard(b))
        self._cross: dict[
            tuple[GlobalKey, GlobalKey], tuple[int, int]
        ] = {}
        self._lineage: dict[
            tuple[GlobalKey, GlobalKey], set[tuple[GlobalKey, GlobalKey]]
        ] = {}
        self.enforce_consistency = enforce_consistency
        self.generation = 0
        self.refreezes = 0
        self._frozen_snapshot = None
        self._frozen_generation = -1
        self._mutex = threading.RLock()

    # -- partitioning ----------------------------------------------------------

    def shard_of(self, key: GlobalKey) -> int:
        return self._placement(key)

    def owning_shards(self, key: GlobalKey) -> set[int]:
        """Partitions holding any adjacency entry for ``key``: its home
        shard plus every shard owning one of its neighbours (which hold
        reverse stubs). This is the broadcast target set for a
        deletion."""
        with self._mutex:
            home = self.shard_of(key)
            owners = {home}
            for other in self._partitions[home].get(key, {}):
                owners.add(self.shard_of(other))
            return owners

    def cross_edges(self) -> dict[tuple[GlobalKey, GlobalKey], tuple[int, int]]:
        with self._mutex:
            return dict(self._cross)

    def partition_node_counts(self) -> list[int]:
        with self._mutex:
            return [len(partition) for partition in self._partitions]

    # -- size ------------------------------------------------------------------

    def node_count(self) -> int:
        return sum(len(partition) for partition in self._partitions)

    def edge_count(self) -> int:
        with self._mutex:
            return (
                sum(
                    len(adjacency)
                    for partition in self._partitions
                    for adjacency in partition.values()
                )
                // 2
            )

    def __contains__(self, key: GlobalKey) -> bool:
        return key in self._partitions[self.shard_of(key)]

    def nodes(self) -> Iterator[GlobalKey]:
        return itertools.chain.from_iterable(self._partitions)

    # -- insertion (AIndex semantics, partition-aware storage) -----------------

    def add(self, relation: PRelation) -> None:
        with self._mutex:
            inferred = self._set_edge(
                relation.left,
                relation.right,
                relation.type,
                relation.probability,
            )
            if not inferred or not self.enforce_consistency:
                return
            if relation.type is RelationType.IDENTITY:
                self._propagate_identity(relation)
            else:
                self._propagate_matching(relation)

    def add_all(self, relations: Iterable[PRelation]) -> None:
        with self._mutex:
            for relation in relations:
                self.add(relation)

    def _adjacency_of(
        self, key: GlobalKey
    ) -> dict[GlobalKey, tuple[RelationType, float]]:
        return self._partitions[self.shard_of(key)].get(key, {})

    def _set_edge(
        self,
        a: GlobalKey,
        b: GlobalKey,
        rel_type: RelationType,
        probability: float,
    ) -> bool:
        if a == b:
            return False
        shard_a = self.shard_of(a)
        shard_b = self.shard_of(b)
        existing = self._partitions[shard_a].get(a, {}).get(b)
        if existing is not None:
            current_type, current_probability = existing
            if (
                current_type is RelationType.IDENTITY
                and rel_type is RelationType.MATCHING
            ):
                return False
            if current_type is rel_type and current_probability >= probability:
                return False
        self._partitions[shard_a].setdefault(a, {})[b] = (
            rel_type, probability,
        )
        self._partitions[shard_b].setdefault(b, {})[a] = (
            rel_type, probability,
        )
        if shard_a != shard_b:
            self._cross[_pair(a, b)] = (shard_a, shard_b)
        self.generation += 1
        return True

    def _propagate_identity(self, relation: PRelation) -> None:
        for anchor, other in (
            (relation.left, relation.right),
            (relation.right, relation.left),
        ):
            for neighbor_key, (n_type, n_prob) in list(
                self._adjacency_of(other).items()
            ):
                if neighbor_key == anchor:
                    continue
                combined = relation.probability * n_prob
                if combined <= 0.0:
                    continue
                if self._set_edge(anchor, neighbor_key, n_type, combined):
                    self._record_lineage(
                        anchor, neighbor_key,
                        supports=[(anchor, other), (other, neighbor_key)],
                    )
                    if n_type is RelationType.IDENTITY:
                        self._propagate_identity(
                            PRelation.identity(anchor, neighbor_key, combined)
                        )

    def _propagate_matching(self, relation: PRelation) -> None:
        left_class = self._identity_class(relation.left)
        right_class = self._identity_class(relation.right)
        for x, p_left in left_class.items():
            for y, p_right in right_class.items():
                if x == y or (x, y) == (relation.left, relation.right):
                    continue
                combined = p_left * relation.probability * p_right
                if combined <= 0.0:
                    continue
                if self._set_edge(x, y, RelationType.MATCHING, combined):
                    self._record_lineage(
                        x, y, supports=[(relation.left, relation.right)],
                    )

    def _identity_class(self, key: GlobalKey) -> dict[GlobalKey, float]:
        members = {key: 1.0}
        for neighbor_key, (n_type, n_prob) in self._adjacency_of(key).items():
            if n_type is RelationType.IDENTITY:
                members[neighbor_key] = n_prob
        return members

    def _record_lineage(
        self,
        a: GlobalKey,
        b: GlobalKey,
        supports: list[tuple[GlobalKey, GlobalKey]],
    ) -> None:
        self._lineage.setdefault(_pair(a, b), set()).update(
            _pair(x, y) for x, y in supports
        )

    def copy(self) -> "ShardedAIndex":
        replica = ShardedAIndex(
            shards=self.shards,
            enforce_consistency=self.enforce_consistency,
            placement=self._placement,
        )
        with self._mutex:
            replica._partitions = [
                {key: dict(adjacency) for key, adjacency in partition.items()}
                for partition in self._partitions
            ]
            replica._cross = dict(self._cross)
            replica._lineage = {
                pair: set(supports)
                for pair, supports in self._lineage.items()
            }
        return replica

    # -- read snapshot ---------------------------------------------------------

    def frozen(self) -> "ShardedFrozenAIndex":
        if self._frozen_generation == self.generation:
            return self._frozen_snapshot
        with self._mutex:
            if self._frozen_generation != self.generation:
                self._frozen_snapshot = ShardedFrozenAIndex.freeze(self)
                self._frozen_generation = self.generation
                self.refreezes += 1
            return self._frozen_snapshot

    # -- queries ---------------------------------------------------------------

    def neighbors(
        self, key: GlobalKey, rel_type: RelationType | None = None
    ) -> list[Neighbor]:
        with self._mutex:
            adjacency = self._adjacency_of(key)
            if not adjacency:
                return []
            return [
                Neighbor(other, edge_type, probability)
                for other, (edge_type, probability) in adjacency.items()
                if rel_type is None or edge_type is rel_type
            ]

    def neighbor_arcs(
        self, key: GlobalKey
    ) -> list[tuple[GlobalKey, float]]:
        with self._mutex:
            adjacency = self._adjacency_of(key)
            if not adjacency:
                return []
            return [
                (other, probability)
                for other, (__, probability) in adjacency.items()
            ]

    def relation(self, a: GlobalKey, b: GlobalKey) -> PRelation | None:
        edge = self._adjacency_of(a).get(b)
        if edge is None:
            return None
        edge_type, probability = edge
        return PRelation(a, b, edge_type, probability)

    def degree(self, key: GlobalKey) -> int:
        return len(self._adjacency_of(key))

    # -- deletion --------------------------------------------------------------

    def remove_object(self, key: GlobalKey) -> int:
        with self._mutex:
            home = self.shard_of(key)
            adjacency = self._partitions[home].pop(key, None)
            if adjacency is None:
                return 0
            for other in adjacency:
                owner = self.shard_of(other)
                self._partitions[owner].get(other, {}).pop(key, None)
                self._cross.pop(_pair(key, other), None)
            self.generation += 1
            return len(adjacency)

    def excise(self, keys: Iterable[GlobalKey]) -> int:
        """Remove a set of nodes, their incident edges (cross-shard
        stubs included), and every lineage record touching them, in one
        generation bump — the partition-aware twin of
        :meth:`repro.core.aindex.AIndex.excise`. Returns the number of
        nodes removed."""
        targets = set(keys)
        if not targets:
            return 0
        with self._mutex:
            removed = 0
            for key in targets:
                home = self.shard_of(key)
                adjacency = self._partitions[home].pop(key, None)
                if adjacency is None:
                    continue
                removed += 1
                for other in adjacency:
                    if other not in targets:
                        owner = self.shard_of(other)
                        self._partitions[owner].get(other, {}).pop(key, None)
                    self._cross.pop(_pair(key, other), None)
            changed = removed > 0
            for pair in list(self._lineage):
                if pair[0] in targets or pair[1] in targets:
                    del self._lineage[pair]
                    changed = True
                    continue
                supports = self._lineage[pair]
                stale = [
                    s for s in supports
                    if s[0] in targets or s[1] in targets
                ]
                if stale:
                    supports.difference_update(stale)
                    changed = True
                    if not supports:
                        del self._lineage[pair]
            if changed:
                self.generation += 1
            return removed

    def remove_relation(
        self, a: GlobalKey, b: GlobalKey, cascade: bool = False
    ) -> int:
        with self._mutex:
            shard_a = self.shard_of(a)
            if self._partitions[shard_a].get(a, {}).pop(b, None) is None:
                return 0
            shard_b = self.shard_of(b)
            self._partitions[shard_b].get(b, {}).pop(a, None)
            self._cross.pop(_pair(a, b), None)
            self.generation += 1
            removed = 1
            removed_pair = _pair(a, b)
            self._lineage.pop(removed_pair, None)
            if cascade:
                dependents = [
                    pair
                    for pair, supports in self._lineage.items()
                    if removed_pair in supports
                ]
                for pair in dependents:
                    removed += self.remove_relation(
                        pair[0], pair[1], cascade=True
                    )
            return removed

    def is_inferred(self, a: GlobalKey, b: GlobalKey) -> bool:
        return _pair(a, b) in self._lineage


class _PartitionView:
    """A read adapter over one partition, shaped for
    :meth:`FrozenAIndex.freeze` (``nodes()`` + ``neighbors()``)."""

    def __init__(self, index: ShardedAIndex, shard: int) -> None:
        self._partition = index._partitions[shard]
        self.generation = index.generation

    def nodes(self) -> Iterator[GlobalKey]:
        return iter(self._partition)

    def neighbors(self, key: GlobalKey) -> list[Neighbor]:
        return [
            Neighbor(other, edge_type, probability)
            for other, (edge_type, probability) in self._partition.get(
                key, {}
            ).items()
        ]


class ShardedFrozenAIndex:
    """Per-shard CSR snapshots plus the cross-shard edge table.

    Reads route to the owner's snapshot; since each node's full
    neighbour list (cross-shard stubs included) lives in its owning
    partition, traversal semantics match the unsharded
    :class:`~repro.core.compressed.FrozenAIndex` exactly.
    """

    partitioned = True

    def __init__(
        self,
        snapshots: list,
        placement: Callable[[GlobalKey], int],
        cross: dict[tuple[GlobalKey, GlobalKey], tuple[int, int]],
        generation: int | None,
        edge_total: int,
        owned_counts: list[int],
    ) -> None:
        self._snapshots = snapshots
        self._placement = placement
        self._cross = cross
        self.generation = generation
        self._edge_total = edge_total
        #: Real (owned) nodes per partition snapshot. A snapshot's key
        #: table additionally interns cross-shard ghost targets after
        #: the owned nodes, so counting/iteration must stop here.
        self._owned_counts = owned_counts

    @classmethod
    def freeze(cls, index: ShardedAIndex) -> "ShardedFrozenAIndex":
        from repro.core.compressed import FrozenAIndex

        with index._mutex:
            snapshots = [
                FrozenAIndex.freeze(_PartitionView(index, shard))
                for shard in range(index.shards)
            ]
            return cls(
                snapshots,
                index._placement,
                dict(index._cross),
                index.generation,
                index.edge_count(),
                [len(partition) for partition in index._partitions],
            )

    @property
    def shards(self) -> int:
        return len(self._snapshots)

    def _snapshot_of(self, key: GlobalKey):
        return self._snapshots[self._placement(key)]

    def shard_snapshot(self, shard: int):
        return self._snapshots[shard]

    def cross_edges(self) -> dict[tuple[GlobalKey, GlobalKey], tuple[int, int]]:
        return dict(self._cross)

    # -- AIndex read protocol --------------------------------------------------

    def neighbors(
        self, key: GlobalKey, rel_type: RelationType | None = None
    ) -> list[Neighbor]:
        return self._snapshot_of(key).neighbors(key, rel_type)

    def neighbor_arcs(
        self, key: GlobalKey
    ) -> list[tuple[GlobalKey, float]]:
        return self._snapshot_of(key).neighbor_arcs(key)

    def relation(self, a: GlobalKey, b: GlobalKey) -> PRelation | None:
        return self._snapshot_of(a).relation(a, b)

    def degree(self, key: GlobalKey) -> int:
        return self._snapshot_of(key).degree(key)

    def __contains__(self, key: GlobalKey) -> bool:
        return key in self._snapshot_of(key)

    def nodes(self) -> Iterator[GlobalKey]:
        return itertools.chain.from_iterable(
            itertools.islice(snapshot.nodes(), owned)
            for snapshot, owned in zip(self._snapshots, self._owned_counts)
        )

    def node_count(self) -> int:
        return sum(self._owned_counts)

    def edge_count(self) -> int:
        return self._edge_total

    def frozen(self) -> "ShardedFrozenAIndex":
        return self

    # -- immutability guards ---------------------------------------------------

    def add(self, relation: PRelation) -> None:
        raise TypeError(
            "ShardedFrozenAIndex is read-only; mutate the live "
            "ShardedAIndex and refreeze"
        )

    def remove_object(self, key: GlobalKey) -> int:
        raise TypeError(
            "ShardedFrozenAIndex is read-only; mutate the live "
            "ShardedAIndex and refreeze"
        )


def shard_aindex(
    index: AIndex,
    shards: int,
    placement: Callable[[GlobalKey], int] | None = None,
) -> ShardedAIndex:
    """Partition an existing A' index without re-running propagation.

    The source index already materialized the Consistency Condition, so
    edges are copied verbatim (first-seen per undirected pair, in node
    iteration order). Answers are identical to the source index's;
    per-node adjacency order may interleave differently, which can only
    swap equal-probability tie-breaks, never probabilities or keys.
    """
    sharded = ShardedAIndex(
        shards=shards, enforce_consistency=False, placement=placement
    )
    seen: set[tuple[GlobalKey, GlobalKey]] = set()
    for node in index.nodes():
        for neighbor in index.neighbors(node):
            pair = _pair(node, neighbor.key)
            if pair in seen:
                continue
            seen.add(pair)
            sharded._set_edge(
                node, neighbor.key, neighbor.type, neighbor.probability
            )
    sharded._lineage = {
        pair: set(supports) for pair, supports in index._lineage.items()
    }
    sharded.enforce_consistency = index.enforce_consistency
    return sharded
