"""A partitioned store behind the ordinary ``Store`` interface.

``ShardedStore`` wraps N engine instances of the same family and routes
every operation through a :class:`~repro.sharding.scheme.PartitionScheme`:

* ``multi_get``/``get_value`` route per key — to exactly the owning
  shard under hash placement, to every shard under range placement
  (the token is not derivable from an opaque key);
* ``execute`` fans out to the candidate shards and merges, pruning
  partitions that provably cannot answer: per-key exact for a KV MGET
  under hash placement, token-interval overlap for windowed queries
  under range placement, no pruning otherwise.

The wrapper is a real :class:`~repro.stores.base.Store`, so the
polystore, connectors, validator and EXPLAIN all work unchanged; with
one shard it degenerates to pass-through routing and adds no virtual
cost (the fig09 guard covers this).

``partition_store`` splits an existing single-engine store into shards
— schema, secondary indexes and (for the graph engine) co-located edges
are replicated per shard; cross-shard graph edges are counted and
dropped from the per-shard engines (the A' index, not the store graph,
carries cross-partition relations).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ConfigurationError, KeyNotFoundError, QueryError
from repro.model.objects import DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.sharding.scheme import (
    KeyRouting,
    PartitionScheme,
    make_scheme,
    query_interval,
)
from repro.stores.base import Store, StoreCapabilities

#: SQL verbs a sharded relational store refuses through ``execute``:
#: writes must target the owning shard explicitly (the serving layer's
#: writers hold a single shard's lock, never the whole fleet's).
_SQL_WRITE_VERBS = {"INSERT", "UPDATE", "DELETE", "CREATE", "DROP"}


class ShardedStore(Store):
    """N same-engine shards behind one ``Store`` facade."""

    #: Marker the connector registry and EXPLAIN dispatch on.
    sharded = True

    def __init__(
        self,
        shards: list[Store],
        scheme: PartitionScheme,
        engine: str | None = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded store needs at least one shard")
        if len(shards) != scheme.shards:
            raise ConfigurationError(
                f"scheme expects {scheme.shards} shards, got {len(shards)}"
            )
        # Assigned before Store.__init__: the database_name property
        # setter (invoked there) propagates the name to every shard.
        self.shards = list(shards)
        self.scheme = scheme
        super().__init__()
        self.engine = engine or self.shards[0].engine
        #: Partition-pruning tallies for native scans (the connector
        #: publishes the equivalent counters for key fetches).
        self.partitions_scanned_total = 0
        self.partitions_pruned_total = 0
        #: Cross-shard graph edges dropped at split time (graph engine).
        self.cut_edges = 0

    # -- identity ------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def database_name(self) -> str:
        return self._database_name

    @database_name.setter
    def database_name(self, name: str) -> None:
        self._database_name = name
        for shard in getattr(self, "shards", ()):
            shard.database_name = name

    # -- routing -------------------------------------------------------------

    def route_keys(self, keys) -> KeyRouting:
        """Group keys by the shards that must be probed for them.

        Pure routing — no fetching, no counters — so EXPLAIN can call
        it without perturbing what a later real run observes.
        """
        unique = list(dict.fromkeys(keys))
        routing = KeyRouting(
            placement=self.scheme.placement, shards=self.shard_count
        )
        if not unique:
            routing.pruned = list(range(self.shard_count))
            return routing
        groups: dict[int, list[GlobalKey]] = {}
        routable = True
        for key in unique:
            shard = self.scheme.shard_of_key(key.key)
            if shard is None:
                routable = False
                break
            groups.setdefault(shard, []).append(key)
        if not routable:
            # Range placement: the token is not derivable from the key,
            # so every shard is probed with the full key list.
            groups = {
                shard: list(unique) for shard in range(self.shard_count)
            }
        routing.groups = sorted(groups.items())
        routing.scanned = [shard for shard, __ in routing.groups]
        routing.pruned = [
            shard for shard in range(self.shard_count) if shard not in groups
        ]
        return routing

    def route_scan(
        self, query: Any
    ) -> tuple[list[tuple[int, Any]], list[int]]:
        """``(targets, pruned)`` for one native query.

        ``targets`` is ``(shard, per-shard query)`` for every candidate
        partition. A KV MGET under hash placement splits its key list
        exactly; windowed queries under range placement keep only the
        partitions whose token interval overlaps the window; anything
        else fans out to every shard.
        """
        if (
            self.engine == "keyvalue"
            and isinstance(query, tuple)
            and len(query) == 2
            and str(query[0]).lower() == "mget"
            and self.scheme.placement == "hash"
        ):
            groups: dict[int, list[str]] = {}
            for local_key in query[1]:
                shard = self.scheme.shard_of_key(local_key)
                groups.setdefault(shard, []).append(local_key)
            targets = [
                (shard, ("mget", local_keys))
                for shard, local_keys in sorted(groups.items())
            ]
            pruned = [
                shard
                for shard in range(self.shard_count)
                if shard not in groups
            ]
            return targets, pruned
        token_field = getattr(self.scheme, "token_field", "seq")
        interval = query_interval(self.engine, query, token_field)
        candidates = self.scheme.scan_candidates(interval)
        pruned = [
            shard
            for shard in range(self.shard_count)
            if shard not in candidates
        ]
        return [(shard, query) for shard in candidates], pruned

    # -- native access -------------------------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        if (
            self.engine == "relational"
            and isinstance(query, str)
            and query.lstrip().split(None, 1)[0].upper() in _SQL_WRITE_VERBS
        ):
            raise QueryError(
                "sharded stores are read-only through execute(); "
                "route writes to the owning shard"
            )
        targets, pruned = self.route_scan(query)
        self.partitions_scanned_total += len(targets)
        self.partitions_pruned_total += len(pruned)
        results: list[DataObject] = []
        seen: set[GlobalKey] = set()
        for shard, subquery in targets:
            for obj in self.shards[shard].execute(subquery):
                if obj.key.collection == "_result" and len(targets) > 1:
                    # Synthetic result rows (joins, aggregates) are
                    # per-shard local; re-key them so rows from
                    # different shards never collide.
                    obj = DataObject(
                        GlobalKey(
                            obj.key.database,
                            "_result",
                            f"s{shard}-{obj.key.key}",
                        ),
                        obj.value,
                        obj.probability,
                    )
                if obj.key in seen:
                    continue
                seen.add(obj.key)
                results.append(obj)
        self.stats.queries += 1
        self.stats.objects_returned += len(results)
        return results

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        targets, pruned = self.route_scan(query)
        per_shard = [
            {"shard": shard, **self.shards[shard]._explain_plan(subquery)}
            for shard, subquery in targets
        ]
        return {
            "access_path": "sharded_fanout",
            "index": None,
            "placement": self.scheme.placement,
            "shards": self.shard_count,
            "scanned_partitions": [shard for shard, __ in targets],
            "pruned_partitions": pruned,
            "estimated_rows": sum(
                plan.get("estimated_rows", 0) for plan in per_shard
            ),
            "estimated_cost": float(
                sum(plan.get("estimated_cost", 0.0) for plan in per_shard)
            ),
            "per_shard": per_shard,
        }

    # -- key access ----------------------------------------------------------

    def get_value(self, collection: str, key: str) -> Any:
        shard = self.scheme.shard_of_key(key)
        if shard is not None:
            return self.shards[shard].get_value(collection, key)
        for candidate in self.shards:
            try:
                return candidate.get_value(collection, key)
            except KeyNotFoundError:
                continue
        raise KeyNotFoundError(f"{collection}.{key} (no shard owns it)")

    def multi_get(self, keys) -> list[DataObject]:  # type: ignore[override]
        """Batch fetch routed per key, merged in first-occurrence order.

        One ``multi_gets`` on the facade regardless of fan-out; the
        per-shard engines additionally count their own operations.
        """
        self.stats.multi_gets += 1
        unique = list(dict.fromkeys(keys))
        fetched: dict[GlobalKey, DataObject] = {}
        for shard, shard_keys in self.route_keys(unique).groups:
            for obj in self.shards[shard].multi_get(shard_keys):
                fetched.setdefault(obj.key, obj)
        found = [fetched[key] for key in unique if key in fetched]
        self.stats.objects_returned += len(found)
        return found

    def collections(self) -> list[str]:
        seen: dict[str, None] = {}
        for shard in self.shards:
            for collection in shard.collections():
                seen.setdefault(collection)
        return list(seen)

    def collection_keys(self, collection: str) -> Iterator[str]:
        for shard in self.shards:
            yield from shard.collection_keys(collection)

    def count_objects(self) -> int:
        return sum(shard.count_objects() for shard in self.shards)

    def capabilities(self) -> StoreCapabilities:
        return self.shards[0].capabilities()

    def describe_sharding(self) -> dict[str, Any]:
        report = self.scheme.describe()
        report["engine"] = self.engine
        report["objects_per_shard"] = [
            shard.count_objects() for shard in self.shards
        ]
        report["partitions_scanned_total"] = self.partitions_scanned_total
        report["partitions_pruned_total"] = self.partitions_pruned_total
        if self.cut_edges:
            report["cut_edges"] = self.cut_edges
        return report


# -- splitters ---------------------------------------------------------------


def _split_relational(store, scheme: PartitionScheme) -> list[Store]:
    from repro.stores.relational.engine import RelationalStore

    shards: list[Store] = [RelationalStore() for __ in range(scheme.shards)]
    for name in store.tables():
        table = store.table(name)
        for shard in shards:
            shard_table = shard.create_table(name, table.schema)
            for column in table._indexes:
                shard_table.create_index(column)
        for pk, row in table.rows():
            owner = scheme.shard_of_object(name, pk, row)
            shards[owner].insert_row(name, dict(row))
    return shards


def _split_document(store, scheme: PartitionScheme) -> list[Store]:
    from repro.stores.document.store import DocumentStore

    shards: list[Store] = [DocumentStore() for __ in range(scheme.shards)]
    for collection in store.collections():
        for shard in shards:
            shard.create_collection(collection)
        for doc_id in list(store.collection_keys(collection)):
            document = store.get_value(collection, doc_id)
            owner = scheme.shard_of_object(collection, doc_id, document)
            shards[owner].insert(collection, dict(document))
        for field in store._indexes.get(collection, {}):
            for shard in shards:
                shard.create_index(collection, field)
    return shards


def _split_keyvalue(store, scheme: PartitionScheme) -> list[Store]:
    from repro.stores.keyvalue.store import KeyValueStore

    shards: list[Store] = [
        KeyValueStore(keyspace=store.keyspace) for __ in range(scheme.shards)
    ]
    for local_key in list(store.collection_keys(store.keyspace)):
        value = store.get_value(store.keyspace, local_key)
        owner = scheme.shard_of_object(store.keyspace, local_key, value)
        shards[owner].set(local_key, value)
    return shards


def _split_graph(store, scheme: PartitionScheme) -> tuple[list[Store], int]:
    from repro.stores.graph.store import GraphStore

    shards: list[Store] = [GraphStore() for __ in range(scheme.shards)]
    placed: dict[str, int] = {}
    for node_id, node in store._nodes.items():
        owner = scheme.shard_of_object(
            node.primary_label, node_id, node.properties
        )
        placed[node_id] = owner
        shards[owner].create_node(
            node.labels, node.properties, node_id=node_id
        )
    cut = 0
    for edge in store._edges.values():
        start_owner = placed[edge.start]
        end_owner = placed[edge.end]
        if start_owner == end_owner:
            shards[start_owner].create_edge(
                edge.start, edge.type, edge.end, edge.properties
            )
        else:
            # Cross-shard edges are not representable inside one engine
            # shard; the A' index's cross-shard edge table carries
            # cross-partition relations instead.
            cut += 1
    return shards, cut


def partition_store(store: Store, scheme: PartitionScheme) -> ShardedStore:
    """Split one engine store into shards behind a ``ShardedStore``."""
    scheme.prepare(store)
    cut_edges = 0
    if store.engine == "relational":
        shards = _split_relational(store, scheme)
    elif store.engine == "document":
        shards = _split_document(store, scheme)
    elif store.engine == "keyvalue":
        shards = _split_keyvalue(store, scheme)
    elif store.engine == "graph":
        shards, cut_edges = _split_graph(store, scheme)
    else:
        raise ConfigurationError(
            f"no splitter for engine {store.engine!r}"
        )
    sharded = ShardedStore(shards, scheme, engine=store.engine)
    sharded.cut_edges = cut_edges
    sharded.database_name = store.database_name
    return sharded


def shard_polystore(
    polystore: Polystore,
    shards: int,
    placement: str = "hash",
    token_field: str = "seq",
) -> Polystore:
    """A parallel polystore with every database partitioned.

    Each database gets its own scheme instance (range boundaries are
    fitted per store from its observed token distribution).
    """
    sharded = Polystore()
    for name, store in polystore.databases.items():
        scheme = make_scheme(placement, shards, token_field=token_field)
        sharded.attach(name, partition_store(store, scheme))
    return sharded
