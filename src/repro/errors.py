"""Exception hierarchy for the QUEPA reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies mirror the main
subsystems: stores, query languages, the polystore model, the A' index,
augmentation, and the middleware baselines.
"""

from __future__ import annotations

import copy


class ReproError(Exception):
    """Base class for all errors raised by this package."""


def clone_exception(exc: BaseException) -> BaseException:
    """A fresh exception equivalent to ``exc``, safe to re-raise.

    Re-raising a *stored* exception object (a worker's failure handed to
    a waiting client, a coalesced flight's error shared by followers)
    mutates its ``__traceback__`` in place, so a second re-raise shows a
    stale, ever-growing traceback — and concurrent re-raises race on the
    same object. Cloning gives every raise site its own object while
    preserving the original's type, args, attributes and cause chain.

    Falls back to the original object if the exception resists copying
    (exotic ``__init__`` signatures); that keeps behaviour no worse than
    the pre-clone world.
    """
    try:
        clone = copy.copy(exc)
    except Exception:
        return exc
    if clone is exc or type(clone) is not type(exc):
        return exc
    # Carry the chain and the original frames: the clone raises with the
    # worker-side traceback attached, and propagation prepends the new
    # frames onto a fresh linked list without touching the original's.
    clone.__cause__ = exc.__cause__
    clone.__context__ = exc.__context__
    clone.__suppress_context__ = exc.__suppress_context__
    clone.__traceback__ = exc.__traceback__
    return clone


# --------------------------------------------------------------------------
# Model / polystore errors
# --------------------------------------------------------------------------


class ModelError(ReproError):
    """Errors in the polystore data model (PDM)."""


class InvalidGlobalKeyError(ModelError):
    """A global key string could not be parsed as ``db.collection.key``."""


class UnknownDatabaseError(ModelError):
    """A database name does not exist in the polystore."""


class InvalidProbabilityError(ModelError):
    """A p-relation probability is outside the half-open interval (0, 1]."""


# --------------------------------------------------------------------------
# Store errors
# --------------------------------------------------------------------------


class StoreError(ReproError):
    """Base for all storage-engine errors."""


class KeyNotFoundError(StoreError):
    """A requested key does not exist in the store."""


class DuplicateKeyError(StoreError):
    """An insert collides with an existing primary key."""


class SchemaError(StoreError):
    """A row does not conform to its table schema."""


class FaultError(StoreError):
    """Base for fault-layer errors (see :mod:`repro.faults`).

    Covers injected faults, open circuit breakers and exhausted timeout
    budgets. A ``FaultError`` is still a :class:`StoreError`, so code
    that treats store trouble generically keeps working.
    """


class StoreUnavailableError(FaultError):
    """A store could not be reached (down, timing out, flaky)."""


class InjectedFaultError(StoreUnavailableError):
    """A configured fault schedule failed this call on purpose."""


class CircuitOpenError(StoreUnavailableError):
    """The per-store circuit breaker is open; the call was not sent."""


class TimeoutExceeded(FaultError):
    """A per-augmentation timeout budget was exhausted."""


class QueryError(StoreError):
    """A native query is malformed or references unknown names."""


class SqlSyntaxError(QueryError):
    """The SQL parser rejected the statement."""


class UnsupportedQueryError(QueryError):
    """The query uses a feature the engine does not implement."""


# --------------------------------------------------------------------------
# Core / augmentation errors
# --------------------------------------------------------------------------


class AugmentationError(ReproError):
    """Base for errors during augmented query answering."""


class NotAugmentableError(AugmentationError):
    """The validator rejected a query for augmented execution."""


class UnknownAugmenterError(AugmentationError):
    """A configuration names an augmenter that is not registered."""


class ConfigurationError(AugmentationError):
    """An augmenter configuration parameter is invalid."""


# --------------------------------------------------------------------------
# Serving errors
# --------------------------------------------------------------------------


class ServingError(ReproError):
    """Base for serving-layer (scheduler/server) errors."""


class ServerBusy(ServingError):
    """The admission queue is full; the request was shed (load shedding).

    Clients should back off and retry; the server remains healthy.
    """


class RequestDeadlineExceeded(ServingError):
    """A request's deadline expired while it was still queued.

    A deadline that expires *during* execution surfaces as
    :class:`TimeoutExceeded` instead, via the augmentation timeout
    budget the deadline was translated into.
    """


# --------------------------------------------------------------------------
# Optimizer / ML errors
# --------------------------------------------------------------------------


class OptimizerError(ReproError):
    """Base for adaptive-optimizer errors."""


class NotTrainedError(OptimizerError):
    """Prediction was requested before the models were trained."""


class TrainingError(OptimizerError):
    """The training set is unusable (empty, degenerate, malformed)."""


# --------------------------------------------------------------------------
# Middleware baseline errors
# --------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base for middleware-emulator errors."""


class OutOfMemoryError(MiddlewareError):
    """A middleware run exceeded its memory budget (the red 'X' in Fig 13)."""

    def __init__(self, message: str, footprint: int = 0, budget: int = 0):
        super().__init__(message)
        self.footprint = footprint
        self.budget = budget


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class PlannerError(ReproError):
    """Base for cross-store planner errors (see repro.planner)."""


class UnknownStrategyError(PlannerError):
    """A physical-plan strategy name that no enumerated plan carries."""
