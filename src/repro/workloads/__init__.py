"""Workload generation: the Polyphony polystore of the evaluation.

The paper populates its testbed from Last.fm / MusicBrainz data plus
synthetic sales; it also notes that the semantics of the data are
irrelevant to the performance study — what matters is the number of
objects per store, the uniform density of the A' index, and
size-controlled queries. :mod:`repro.workloads.music` generates exactly
that, deterministically from a seed; :mod:`repro.workloads.builder`
replicates databases into the 4/7/10/13-store variants and builds the
ground-truth A' index; :mod:`repro.workloads.queries` produces native
queries with exact result sizes per store.
"""

from repro.workloads.builder import PolystoreBundle, PolystoreScale, build_polyphony
from repro.workloads.music import MusicGenerator
from repro.workloads.queries import QueryWorkload

__all__ = [
    "MusicGenerator",
    "PolystoreBundle",
    "PolystoreScale",
    "QueryWorkload",
    "build_polyphony",
]
