"""Polystore builder: the 4/7/10/13-store variants of Section VII-A.

The base polystore is the four-department Polyphony scenario. Larger
variants replicate the three departmental databases (never Redis, per
the paper) — each replica runs as a separate store and, from QUEPA's
perspective, is a completely different database.

The ground-truth A' index is generated directly (the collector is
exercised separately; the paper likewise prepares the index offline):

* every entity forms an **identity clique** across all stores holding
  it, with probabilities in [0.9, 1.0) — the materialized transitive
  closure the Consistency Condition would produce;
* every object carries a bounded number of **matching** edges
  (probability [0.6, 0.89]) to the "next" entity in the "next"
  database, giving the uniformly dense, linearly growing index the
  paper requires ("queries of the same size return answers with a
  comparable number of data objects, and the number of data objects
  increases linearly with the number of results").

Consistency enforcement is disabled during this bulk load because the
generated edge set is already closed for identities and kept bounded
for matchings; enabling it would only inflate density quadratically in
the store count and distort the scaling experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation
from repro.workloads.music import MusicGenerator

#: Engine kind of each base database.
BASE_DATABASES = (
    ("transactions", "relational"),
    ("catalogue", "document"),
    ("similar", "graph"),
    ("discount", "keyvalue"),
)

#: Collection and key pattern per engine kind, for entity ``j``.
_ENTITY_ADDRESS = {
    "relational": ("inventory", MusicGenerator.inventory_key),
    "document": ("albums", MusicGenerator.album_doc_key),
    "graph": ("Item", MusicGenerator.item_node_key),
    "keyvalue": ("drop", MusicGenerator.discount_key),
}


@dataclass(frozen=True)
class PolystoreScale:
    """Size knobs of one generated polystore."""

    n_albums: int = 1000
    n_sales: int | None = None
    n_customers: int | None = None
    similar_neighbors: int = 3


@dataclass
class PolystoreBundle:
    """A generated polystore plus its A' index and addressing metadata."""

    polystore: Polystore
    aindex: AIndex
    scale: PolystoreScale
    #: (database name, engine kind) in attachment order.
    databases: list[tuple[str, str]] = field(default_factory=list)

    def database_names(self, kind: str | None = None) -> list[str]:
        return [
            name for name, engine in self.databases
            if kind is None or engine == kind
        ]

    def entity_key(self, database: str, seq: int) -> GlobalKey:
        """Global key of entity ``seq`` in ``database``."""
        kind = dict(self.databases)[database]
        collection, key_fn = _ENTITY_ADDRESS[kind]
        return GlobalKey(database, collection, key_fn(seq))

    @property
    def store_count(self) -> int:
        return len(self.databases)


def plan_databases(stores: int) -> list[tuple[str, str]]:
    """Database names/kinds for a polystore of ``stores`` databases.

    4 stores = the base Polyphony; every +3 adds one replica of each
    non-Redis database (7, 10, 13 ... as in the paper).
    """
    if stores < 4:
        raise ValueError("the Polyphony polystore needs at least 4 stores")
    if (stores - 4) % 3 != 0:
        raise ValueError(
            "store counts follow the paper's 4 + 3k scheme (4, 7, 10, 13, ...)"
        )
    databases = list(BASE_DATABASES)
    replica = 2
    while len(databases) < stores:
        for name, kind in BASE_DATABASES:
            if kind == "keyvalue":
                continue  # Redis remains a single instance (VII-A)
            databases.append((f"{name}{replica}", kind))
        replica += 1
    return databases[:stores]


def build_polyphony(
    stores: int = 4,
    scale: PolystoreScale | None = None,
    seed: int = 42,
    with_aindex: bool = True,
) -> PolystoreBundle:
    """Build a complete Polyphony polystore variant."""
    scale = scale or PolystoreScale()
    databases = plan_databases(stores)
    generator = MusicGenerator(scale.n_albums, seed=seed)
    polystore = Polystore()
    for name, kind in databases:
        polystore.attach(name, _build_store(generator, kind, scale))
    aindex = AIndex(enforce_consistency=False)
    bundle = PolystoreBundle(polystore, aindex, scale, databases)
    if with_aindex:
        _populate_aindex(bundle, seed)
    return bundle


def _build_store(generator: MusicGenerator, kind: str, scale: PolystoreScale):
    if kind == "relational":
        return generator.build_transactions(scale.n_sales)
    if kind == "document":
        return generator.build_catalogue(scale.n_customers)
    if kind == "graph":
        return generator.build_similar(scale.similar_neighbors)
    if kind == "keyvalue":
        return generator.build_discount()
    raise ValueError(f"unknown engine kind {kind!r}")


def _populate_aindex(bundle: PolystoreBundle, seed: int) -> None:
    """Identity cliques per entity + two matching edges per object."""
    rng = random.Random(seed + 7)
    names = [name for name, __ in bundle.databases]
    n = bundle.scale.n_albums
    for entity in range(n):
        keys = [bundle.entity_key(name, entity) for name in names]
        # Identity clique (already transitively closed).
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                bundle.aindex.add(
                    PRelation.identity(left, right, rng.uniform(0.9, 0.999))
                )
        # One matching edge from each object to the next entity in the
        # next database (wraps around): every object ends up with one
        # outgoing and one incoming matching.
        next_entity = (entity + 1) % n
        for index, name in enumerate(names):
            target_db = names[(index + 1) % len(names)]
            left = bundle.entity_key(name, entity)
            right = bundle.entity_key(target_db, next_entity)
            if left != right:
                bundle.aindex.add(
                    PRelation.matching(left, right, rng.uniform(0.6, 0.89))
                )
