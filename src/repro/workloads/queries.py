"""Size-controlled native queries per store (the test-bed of VII-A.b).

"For each of the four databases, we consider queries with different
result size: they retrieve 100, 500, 1,000, 5,000 and 10,000 objects."
Every generated query is a *native* query of its engine whose answer
has exactly the requested size (entities carry a sequential ``seq``
field / ordered keys), and different ``variant`` values shift the
window so repeated experiments do not always touch the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.workloads.builder import PolystoreBundle
from repro.workloads.music import MusicGenerator

#: The paper's query result sizes.
PAPER_QUERY_SIZES = (100, 500, 1000, 5000, 10000)


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query with its expected result size."""

    database: str
    engine: str
    query: Any
    size: int
    variant: int


class QueryWorkload:
    """Generates size-controlled queries for a polystore bundle."""

    def __init__(self, bundle: PolystoreBundle) -> None:
        self.bundle = bundle
        self._kinds = dict(bundle.databases)

    def query(self, database: str, size: int, variant: int = 0) -> WorkloadQuery:
        """A native query on ``database`` returning exactly ``size`` objects."""
        n = self.bundle.scale.n_albums
        if size > n:
            raise ValueError(
                f"cannot build a query of size {size} over {n} entities"
            )
        start = self._window_start(size, variant, n)
        engine = self._kinds[database]
        if engine == "relational":
            query: Any = (
                f"SELECT * FROM inventory "
                f"WHERE seq >= {start} AND seq < {start + size}"
            )
        elif engine == "document":
            query = {
                "collection": "albums",
                "filter": {"seq": {"$gte": start, "$lt": start + size}},
            }
        elif engine == "graph":
            # The graph engine matches in sorted node order; variants do
            # not shift the window here (label scans have no offset).
            query = {"op": "match", "label": "Item", "limit": size}
        elif engine == "keyvalue":
            keys = [
                MusicGenerator.discount_key((start + offset) % n)
                for offset in range(size)
            ]
            query = ("mget", keys)
        else:
            raise ValueError(f"unknown engine {engine!r} for {database!r}")
        return WorkloadQuery(database, engine, query, size, variant)

    def queries_for_size(self, size: int, variant: int = 0) -> list[WorkloadQuery]:
        """One query per database of the polystore (used for averages)."""
        return [
            self.query(name, size, variant)
            for name, __ in self.bundle.databases
        ]

    def base_queries(self, size: int, variant: int = 0) -> list[WorkloadQuery]:
        """One query per *base* database (the four engines once each)."""
        seen: set[str] = set()
        queries = []
        for name, engine in self.bundle.databases:
            if engine in seen:
                continue
            seen.add(engine)
            queries.append(self.query(name, size, variant))
        return queries

    @staticmethod
    def _window_start(size: int, variant: int, n: int) -> int:
        if size >= n:
            return 0
        return (variant * size) % (n - size + 1)
