"""The Polyphony music-company data generator (Running Example 1).

Generates, deterministically from a seed, the four departmental
databases of Fig 1:

* ``transactions`` (relational) — ``inventory`` (one row per album),
  ``sales`` and ``sales_details``;
* ``catalogue`` (document) — ``albums`` documents plus ``customers``;
* ``similar`` (graph) — ``Item`` nodes with ``SIMILAR`` edges;
* ``discount`` (key-value) — one discount entry per album.

Every album is one *entity* present in all four stores; entity ``j``
has predictable local keys (``a{j}``, ``d{j}``, ``i{j}``,
``disc:{j}``), which is what lets the builder create the ground-truth
A' index without running the collector. Objects carry a ``seq`` field
used by the size-controlled query workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.stores.document.store import DocumentStore
from repro.stores.graph.store import GraphStore
from repro.stores.keyvalue.store import KeyValueStore
from repro.stores.relational.engine import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

_ADJECTIVES = [
    "Black", "Broken", "Crystal", "Electric", "Endless", "Fading", "Golden",
    "Hollow", "Midnight", "Neon", "Quiet", "Scarlet", "Silver", "Velvet",
    "Wild", "Wandering",
]
_NOUNS = [
    "Dreams", "Echoes", "Fires", "Gardens", "Horizons", "Mirrors", "Rivers",
    "Shadows", "Skies", "Songs", "Stars", "Stories", "Tides", "Voices",
    "Waves", "Wish",
]
_ARTIST_FIRST = [
    "The", "Saint", "Little", "Modern", "Lost", "Young", "Silent", "Crimson",
]
_ARTIST_SECOND = [
    "Cure", "Foxes", "Harbors", "Pilots", "Poets", "Satellites", "Wolves",
    "Gardeners",
]
_GENRES = ["rock", "pop", "electronic", "jazz", "goth", "folk", "ambient"]
_FIRST_NAMES = ["Lucy", "John", "Mara", "Ivan", "Nina", "Omar", "Elsa", "Theo"]
_LAST_NAMES = ["Doe", "Rossi", "Chen", "Novak", "Okafor", "Silva", "Berg", "Kato"]


@dataclass(frozen=True)
class Album:
    """Ground truth for one entity of the polystore."""

    seq: int
    title: str
    artist: str
    year: int
    price: float
    discount: int


class MusicGenerator:
    """Deterministic generator of Polyphony data for one replica."""

    def __init__(self, n_albums: int, seed: int = 42) -> None:
        if n_albums < 1:
            raise ValueError("need at least one album")
        self.n_albums = n_albums
        self.seed = seed
        self._albums: list[Album] | None = None

    # -- ground truth ----------------------------------------------------------

    def albums(self) -> list[Album]:
        """The entity list (cached; identical across calls)."""
        if self._albums is None:
            rng = random.Random(self.seed)
            albums = []
            for seq in range(self.n_albums):
                title = (
                    f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} "
                    f"{seq}"
                )
                artist = (
                    f"{rng.choice(_ARTIST_FIRST)} {rng.choice(_ARTIST_SECOND)}"
                )
                albums.append(
                    Album(
                        seq=seq,
                        title=title,
                        artist=artist,
                        year=rng.randint(1975, 2017),
                        price=round(rng.uniform(5.0, 30.0), 2),
                        discount=rng.choice([0, 5, 10, 20, 25, 40]),
                    )
                )
            self._albums = albums
        return self._albums

    # -- local keys per store -----------------------------------------------------

    @staticmethod
    def inventory_key(seq: int) -> str:
        return f"a{seq}"

    @staticmethod
    def album_doc_key(seq: int) -> str:
        return f"d{seq}"

    @staticmethod
    def item_node_key(seq: int) -> str:
        return f"i{seq}"

    @staticmethod
    def discount_key(seq: int) -> str:
        return f"disc:{seq}"

    # -- store builders --------------------------------------------------------------

    def build_transactions(self, n_sales: int | None = None) -> RelationalStore:
        """The sales department's MySQL stand-in."""
        store = RelationalStore()
        inventory_schema = TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("seq", ColumnType.INTEGER, nullable=False),
                Column("artist", ColumnType.TEXT),
                Column("name", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
                Column("stock", ColumnType.INTEGER),
            ],
            primary_key="id",
        )
        store.create_table("inventory", inventory_schema)
        rng = random.Random(self.seed + 1)
        for album in self.albums():
            store.insert_row(
                "inventory",
                {
                    "id": self.inventory_key(album.seq),
                    "seq": album.seq,
                    "artist": album.artist,
                    "name": album.title,
                    "price": album.price,
                    "stock": rng.randint(0, 500),
                },
            )
        store.table("inventory").create_index("artist")
        self._build_sales(store, rng, n_sales)
        return store

    def _build_sales(
        self, store: RelationalStore, rng: random.Random, n_sales: int | None
    ) -> None:
        sales_schema = TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("customer", ColumnType.TEXT),
                Column("total", ColumnType.FLOAT),
                Column("year", ColumnType.INTEGER),
            ],
            primary_key="id",
        )
        details_schema = TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("sale_id", ColumnType.TEXT, nullable=False),
                Column("item_id", ColumnType.TEXT, nullable=False),
                Column("quantity", ColumnType.INTEGER),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        )
        store.create_table("sales", sales_schema)
        store.create_table("sales_details", details_schema)
        count = n_sales if n_sales is not None else max(4, self.n_albums // 2)
        albums = self.albums()
        detail_counter = 0
        for sale_index in range(count):
            customer = (
                f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
            )
            lines = rng.randint(1, 3)
            total = 0.0
            sale_id = f"s{sale_index}"
            rows = []
            for __ in range(lines):
                album = rng.choice(albums)
                quantity = rng.randint(1, 4)
                total += quantity * album.price
                rows.append(
                    {
                        "id": f"l{detail_counter}",
                        "sale_id": sale_id,
                        "item_id": self.inventory_key(album.seq),
                        "quantity": quantity,
                        "price": album.price,
                    }
                )
                detail_counter += 1
            store.insert_row(
                "sales",
                {
                    "id": sale_id,
                    "customer": customer,
                    "total": round(total, 2),
                    "year": rng.randint(2014, 2017),
                },
            )
            for row in rows:
                store.insert_row("sales_details", row)
        store.table("sales_details").create_index("sale_id")

    def build_catalogue(self, n_customers: int | None = None) -> DocumentStore:
        """The warehouse department's MongoDB stand-in."""
        store = DocumentStore()
        rng = random.Random(self.seed + 2)
        for album in self.albums():
            store.insert(
                "albums",
                {
                    "_id": self.album_doc_key(album.seq),
                    "seq": album.seq,
                    "title": album.title,
                    "artist": album.artist,
                    "artist_id": f"ar{hash(album.artist) % 1000}",
                    "year": album.year,
                    "genres": rng.sample(_GENRES, rng.randint(1, 3)),
                    "tracks": rng.randint(6, 16),
                },
            )
        store.create_index("albums", "artist")
        store.create_index("albums", "year")
        count = n_customers if n_customers is not None else max(
            4, self.n_albums // 4
        )
        for index in range(count):
            store.insert(
                "customers",
                {
                    "_id": f"c{index}",
                    "name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                    "country": rng.choice(["US", "IT", "DE", "JP", "BR"]),
                    "since": rng.randint(2008, 2017),
                },
            )
        return store

    def build_similar(self, neighbors: int = 3) -> GraphStore:
        """The marketing department's Neo4j stand-in.

        Entity ``j`` is linked to the ``neighbors`` following entities,
        a uniform-degree topology matching the paper's "uniformly dense"
        requirement on the derived A' index.
        """
        store = GraphStore()
        albums = self.albums()
        shard_size = 10_000
        for album in albums:
            store.create_node(
                "Item",
                {
                    "seq": album.seq,
                    "title": album.title,
                    "artist": album.artist,
                    "shard": album.seq // shard_size,
                },
                node_id=self.item_node_key(album.seq),
            )
        rng = random.Random(self.seed + 3)
        for album in albums:
            for offset in range(1, neighbors + 1):
                other = (album.seq + offset) % len(albums)
                if other == album.seq:
                    continue
                store.create_edge(
                    self.item_node_key(album.seq),
                    "SIMILAR",
                    self.item_node_key(other),
                    {"weight": round(rng.uniform(0.5, 1.0), 3)},
                )
        return store

    def build_discount(self) -> KeyValueStore:
        """The shared Redis stand-in: one discount entry per album."""
        store = KeyValueStore(keyspace="drop")
        for album in self.albums():
            store.set(self.discount_key(album.seq), f"{album.discount}%")
        return store
