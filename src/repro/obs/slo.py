"""SLO monitoring: availability and latency error-budget burn rates.

The serving layer already exports the raw series — per-outcome
``serving_requests_total`` counters and the ``serving_latency_seconds``
histogram. :class:`SloMonitor` turns them into the two service-level
objectives every serving system is judged on:

* **availability** — completed / (completed + failed + shed). A shed
  request is an unavailability event: the client asked and was turned
  away. ``admitted`` is an intermediate state and never counts.
* **latency** — the fraction of completed requests at or under
  ``latency_threshold`` seconds, read from the histogram via
  :meth:`~repro.obs.metrics.Histogram.fraction_at_or_below`.

For each objective the monitor reports the measured compliance, the
error budget (``1 - objective``), and the **burn rate** — the classic
SRE ratio ``(1 - measured) / (1 - objective)``: 1.0 means failing at
exactly the budgeted rate, above 1.0 the budget is burning down, 0
means no errors at all. :meth:`publish` mirrors everything as gauges so
a Prometheus scrape (``GET /metrics?format=prometheus``) carries the
burn rates without any extra plumbing.

Reads only — the monitor never mutates the counters it watches and
never touches a clock, so it is safe to poll from any thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SloConfig:
    """The objectives (documented in docs/OBSERVABILITY.md)."""

    #: Target fraction of requests that must complete (not fail or
    #: shed), e.g. 0.999 = "three nines".
    availability_objective: float = 0.99
    #: Completed requests must finish within this many seconds...
    latency_threshold: float = 1.0
    #: ...for at least this fraction of completions.
    latency_objective: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_objective < 1.0:
            raise ValueError("availability_objective must be in (0, 1)")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be > 0")
        if not 0.0 < self.latency_objective < 1.0:
            raise ValueError("latency_objective must be in (0, 1)")


class SloMonitor:
    """Compute objective compliance and burn rates from live metrics."""

    def __init__(self, obs, config: SloConfig | None = None) -> None:
        self._obs = obs
        self.config = config or SloConfig()

    # -- the two objectives -------------------------------------------------

    def _outcome(self, outcome: str) -> float:
        return self._obs.metrics.counter(
            "serving_requests_total", outcome=outcome
        ).value

    def availability(self) -> dict[str, Any]:
        """Measured availability + burn rate over all finished requests."""
        completed = self._outcome("completed")
        failed = self._outcome("failed")
        shed = self._outcome("shed")
        finished = completed + failed + shed
        measured = completed / finished if finished else 1.0
        return self._objective(
            "availability",
            measured,
            self.config.availability_objective,
            samples=int(finished),
            bad=int(failed + shed),
        )

    def latency(self) -> dict[str, Any]:
        """Measured latency compliance + burn rate over completions."""
        hist = self._obs.metrics.histogram("serving_latency_seconds")
        measured = hist.fraction_at_or_below(self.config.latency_threshold)
        return self._objective(
            "latency",
            measured,
            self.config.latency_objective,
            samples=hist.count,
            threshold_s=self.config.latency_threshold,
        )

    def _objective(
        self,
        name: str,
        measured: float,
        objective: float,
        **extra: Any,
    ) -> dict[str, Any]:
        budget = 1.0 - objective
        burn = (1.0 - measured) / budget  # budget > 0 by config contract
        return {
            "slo": name,
            "objective": objective,
            "measured": measured,
            "error_budget": budget,
            "burn_rate": burn,
            "healthy": measured >= objective,
            **extra,
        }

    # -- surfaces -----------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Both objectives, JSON-ready (CLI ``slo`` / ``GET /slo``)."""
        availability = self.availability()
        latency = self.latency()
        return {
            "availability": availability,
            "latency": latency,
            "healthy": availability["healthy"] and latency["healthy"],
        }

    def publish(self) -> dict[str, Any]:
        """Set the SLO gauges from the current reads; returns the report.

        Gauges (``slo_measured``, ``slo_objective``, ``slo_burn_rate``,
        labelled by objective, plus ``slo_healthy`` 0/1) ride the normal
        metrics snapshot into Prometheus text exposition.
        """
        report = self.report()
        metrics = self._obs.metrics
        for name in ("availability", "latency"):
            entry = report[name]
            metrics.gauge("slo_measured", slo=name).set(entry["measured"])
            metrics.gauge("slo_objective", slo=name).set(entry["objective"])
            metrics.gauge("slo_burn_rate", slo=name).set(entry["burn_rate"])
        metrics.gauge("slo_healthy").set(1.0 if report["healthy"] else 0.0)
        return report
