"""A thread-safe metrics registry: counters, gauges, histograms.

The registry is the aggregate face of observability (the tracer is the
per-run face): instruments are identified by name plus a frozen label
set and accumulate across runs, exactly like a Prometheus scrape target.
Augmenters and runtimes update them from worker threads under
:class:`~repro.network.executor.RealRuntime`, so every mutation takes
the instrument's lock.

Histograms use *fixed* buckets chosen at creation (cumulative counts are
derived in :meth:`Histogram.snapshot`), which keeps ``observe`` O(log
buckets) via bisection and snapshots deterministic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

#: Default latency buckets, in seconds: sub-ms store calls through
#: multi-second distributed sweeps.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

Labels = tuple[tuple[str, str], ...]


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (e.g. cache size, pool width)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram of observed values (latencies, sizes)."""

    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(buckets))
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be distinct: {buckets}")
        self.bounds = bounds
        self._lock = threading.Lock()
        #: counts[i] observations in (bounds[i-1], bounds[i]]; the last
        #: slot is the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate.

        Documented edge cases (each unit-tested):

        * empty histogram — ``0.0``, whatever ``q``;
        * ``q <= 0`` — ``0.0`` (the distribution's lower edge, not a
          negative extrapolation);
        * ``q >= 1`` — the observed maximum;
        * all mass in the overflow (+Inf) bucket — the observed maximum
          (there is no finite upper bound to interpolate toward).
        """
        with self._lock:
            counts = list(self._counts)
            total, biggest = self._count, self._max
        return _bucket_quantile(self.bounds, counts, total, biggest, q)

    def fraction_at_or_below(self, threshold: float) -> float:
        """The fraction of observations ``<= threshold`` (approximate).

        Computed from the bucket whose bound is the smallest bound
        ``>= threshold`` — exact when ``threshold`` is a bucket bound,
        conservative (rounds the fraction up) otherwise. Returns 1.0
        for an empty histogram: with no observations, no objective has
        been violated. This is the latency-compliance read the SLO
        monitor (:mod:`repro.obs.slo`) is built on.
        """
        index = bisect_left(self.bounds, threshold)
        with self._lock:
            if not self._count:
                return 1.0
            return sum(self._counts[: index + 1]) / self._count

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, summed, biggest = self._count, self._sum, self._max
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[format(bound, "g")] = running
        cumulative["+Inf"] = running + counts[-1]
        return {
            "count": total,
            "sum": summed,
            "max": biggest,
            "mean": summed / total if total else 0.0,
            "p50": _bucket_quantile(self.bounds, counts, total, biggest, 0.50),
            "p95": _bucket_quantile(self.bounds, counts, total, biggest, 0.95),
            "p99": _bucket_quantile(self.bounds, counts, total, biggest, 0.99),
            "buckets": cumulative,
        }


def _bucket_quantile(
    bounds: tuple[float, ...],
    counts: list[int],
    total: int,
    biggest: float,
    q: float,
) -> float:
    """Estimate the q-quantile by linear interpolation within the bucket
    holding rank ``q * total`` (Prometheus ``histogram_quantile`` style).
    Observations above the last bound are pinned to the observed max.
    Edge cases: empty -> 0.0, q <= 0 -> 0.0, q >= 1 -> observed max
    (see :meth:`Histogram.percentile`)."""
    if total <= 0:
        return 0.0
    if q <= 0.0:
        return 0.0
    if q >= 1.0:
        return biggest
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts[:-1]):
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - previous) / count if count else 0.0
            return lower + (upper - lower) * fraction
    return biggest


class MetricsRegistry:
    """Get-or-create instrument store keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, Labels], Any] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, labels, Counter, ())

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, labels, Gauge, ())

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(name, labels, Histogram, (buckets,))

    def _get(self, name, labels, cls, args):
        key = (name, _freeze(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(*args)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, requested {cls.kind}"
                )
        return instrument

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def reset(self) -> None:
        """Forget every instrument (tests and long-lived servers)."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> list[dict[str, Any]]:
        """A JSON-ready, deterministically ordered dump of every
        instrument: name, type, labels and current values.

        Sorted on an explicit ``(str(name), labels)`` key: sorting the
        raw dict items would compare instrument objects (or differing
        key shapes) and raise ``TypeError`` as soon as two names tie or
        a non-string name sneaks in.
        """
        with self._lock:
            items = sorted(
                self._instruments.items(),
                key=lambda item: (str(item[0][0]), item[0][1]),
            )
        out = []
        for (name, labels), instrument in items:
            entry = {
                "name": name,
                "type": instrument.kind,
                "labels": dict(labels),
            }
            entry.update(instrument.snapshot())
            out.append(entry)
        return out


def _freeze(labels: dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))
