"""A lightweight span tracer over the runtime's own clock.

A *span* is one timed operation — planning, a store roundtrip, a pool
lifetime, a fetch — with a name ("kind"), start/end timestamps, an
optional parent span and free-form key/value attributes. Timestamps are
whatever clock the active :class:`~repro.network.executor.ExecContext`
exposes, so under :class:`~repro.network.executor.VirtualRuntime` spans
are placed on the deterministic virtual timeline and under
:class:`~repro.network.executor.RealRuntime` on the wall clock. Tracing
only *reads* the clock; it never charges CPU or latency, so virtual-time
accounting is bit-identical with and without it (the smoke guard in
``tests/test_benchmark_guard.py`` pins this).

The tracer is bounded: beyond ``max_spans`` finished spans it counts
drops instead of growing, so tracing a 10,000-result augmentation cannot
exhaust memory.
"""

from __future__ import annotations

import threading
from typing import Any


class Span:
    """One finished or in-flight traced operation."""

    __slots__ = (
        "span_id", "name", "parent_id", "start", "end", "attrs", "trace_id",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        parent_id: int | None = None,
        attrs: dict[str, Any] | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = attrs or {}
        #: The owning request's trace id (serving), or ``None`` for
        #: classic single-run spans.
        self.trace_id = trace_id

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, {self.name!r}, start={self.start:.6f}, "
            f"end={self.end}, parent={self.parent_id})"
        )


class Tracer:
    """Collects spans for one run (thread-safe, bounded).

    Span ids are monotonic for the tracer's lifetime — they do NOT
    restart on :meth:`reset`. Under the serving layer many requests
    share one tracer, and a reset (issued by a concurrent classic run
    via ``Runtime.root()``) must not recycle ids that in-flight spans
    still reference: recycled ids would stitch new spans onto dead
    parents. Instead, ``reset`` raises a *floor*: spans begun before the
    reset are silently discarded when they end (counted as dropped from
    the run they belonged to, which no longer exists).
    """

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._dropped = 0
        #: Spans with ``span_id < _reset_floor`` predate the last reset
        #: and belong to a discarded run; :meth:`end` drops them.
        self._reset_floor = 1

    def begin(
        self,
        name: str,
        start: float,
        parent_id: int | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; it is retained once :meth:`end` closes it."""
        with self._lock:
            span = Span(
                self._next_id, name, start, parent_id, attrs, trace_id
            )
            self._next_id += 1
        return span

    def end(self, span: Span, end: float) -> None:
        """Close ``span`` at time ``end`` and retain it (cap permitting).

        A span begun before the last :meth:`reset` belongs to a run
        whose trace was discarded; it is not retained (and not counted
        as dropped — its run's counters are gone too).
        """
        span.end = end
        with self._lock:
            if span.span_id < self._reset_floor:
                return
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """One-shot: open and immediately close a span."""
        span = self.begin(name, start, parent_id, trace_id, **attrs)
        self.end(span, end)
        return span

    def reset(self) -> None:
        """Start a fresh trace: drop finished spans and orphan in-flight
        ones (they are discarded at ``end``). Called by
        ``Runtime.root()`` so each classic run starts clean; span ids
        keep counting up so concurrent serving requests never see their
        parent ids recycled.
        """
        with self._lock:
            self._spans = []
            self._dropped = 0
            self._reset_floor = self._next_id

    def spans(self) -> list[Span]:
        """A snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def spans_for(self, trace_id: str) -> list[Span]:
        """Finished spans of one request, in completion order."""
        with self._lock:
            return [
                span for span in self._spans if span.trace_id == trace_id
            ]

    @property
    def dropped(self) -> int:
        """Spans discarded because the cap was reached (locked read)."""
        with self._lock:
            return self._dropped

    def stats(self) -> dict[str, int]:
        """Span count, drop count and cap, read under one lock."""
        with self._lock:
            return {
                "spans": len(self._spans),
                "dropped": self._dropped,
                "max_spans": self.max_spans,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per span kind: ``{"count": n, "total_s": seconds}``."""
        out: dict[str, dict[str, float]] = {}
        for span in self.spans():
            entry = out.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration
        return out

    def as_dicts(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.spans()]


def tree_lines(spans: list[Span]) -> list[str]:
    """Render spans as an indented tree, ordered by start time.

    Orphan spans (parent evicted by the cap, or none) sit at depth 0.
    Used by the CLI ``trace`` subcommand.
    """
    by_parent: dict[int | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for span in sorted(
            by_parent.get(parent, []), key=lambda s: (s.start, s.span_id)
        ):
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            lines.append(
                "  " * depth
                + f"{span.name}  start={span.start:.6f}s "
                + f"dur={span.duration * 1000:.3f}ms"
                + (f"  {attrs}" if attrs else "")
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return lines
