"""A structured event journal: bounded, thread-safe, typed events.

Where the tracer answers "where did the time go inside this run?", the
journal answers "what happened across runs?" — slow queries, stores
going unavailable, lazy deletions, completed augmentations. Each event
has a monotonic sequence number, a timestamp from the runtime's own
clock (virtual or wall — the journal never reads wall clocks itself, so
virtual-time accounting stays bit-identical), a severity, a kind and
free-form attributes.

The ring is bounded: past ``max_events`` the oldest event is evicted
and counted as dropped, so a chatty workload cannot exhaust memory. An
optional JSONL sink mirrors every event to a file as it is emitted,
which is the tail-able slow-query log the ROADMAP's production north
star asks for.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, IO, Iterable

SEVERITIES: tuple[str, ...] = ("debug", "info", "warning", "error")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass
class Event:
    """One journal entry."""

    seq: int
    ts: float
    severity: str
    kind: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "severity": self.severity,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }


class EventJournal:
    """Bounded ring of :class:`Event` with an optional JSONL file sink."""

    def __init__(self, max_events: int = 2048) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=max_events)
        self._seq = 0
        self._emitted = 0
        self._dropped = 0
        self._sink: IO[str] | None = None
        self._sink_owned = False

    # -- emission ---------------------------------------------------------------

    def emit(
        self,
        kind: str,
        severity: str = "info",
        ts: float = 0.0,
        **attrs: Any,
    ) -> Event:
        """Append an event; evicts (and counts) the oldest past the cap."""
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {severity!r}, expected one of {SEVERITIES}"
            )
        with self._lock:
            self._seq += 1
            event = Event(self._seq, ts, severity, kind, attrs)
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(event)
            self._emitted += 1
            sink = self._sink
            if sink is not None:
                sink.write(json.dumps(event.as_dict(), default=str) + "\n")
                sink.flush()
        return event

    # -- sink -------------------------------------------------------------------

    def attach_sink(self, target: str | IO[str]) -> None:
        """Mirror every future event to ``target`` as one JSON line each.

        ``target`` is a path (opened in append mode and owned by the
        journal) or an already-open text file object (caller-owned).
        """
        with self._lock:
            self._close_sink_locked()
            if isinstance(target, str):
                self._sink = open(target, "a", encoding="utf-8")
                self._sink_owned = True
            else:
                self._sink = target
                self._sink_owned = False

    def close_sink(self) -> None:
        with self._lock:
            self._close_sink_locked()

    def _close_sink_locked(self) -> None:
        if self._sink is not None and self._sink_owned:
            self._sink.close()
        self._sink = None
        self._sink_owned = False

    # -- reads ------------------------------------------------------------------

    def events(
        self,
        kind: str | None = None,
        min_severity: str | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """A filtered snapshot, oldest first; ``limit`` keeps the newest."""
        if min_severity is not None and min_severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {min_severity!r}, "
                f"expected one of {SEVERITIES}"
            )
        with self._lock:
            selected: Iterable[Event] = list(self._events)
        if kind is not None:
            selected = [event for event in selected if event.kind == kind]
        if min_severity is not None:
            floor = _SEVERITY_RANK[min_severity]
            selected = [
                event
                for event in selected
                if _SEVERITY_RANK[event.severity] >= floor
            ]
        selected = list(selected)
        if limit is not None and limit >= 0:
            selected = selected[len(selected) - limit:] if limit else []
        return selected

    def as_dicts(self, **filters: Any) -> list[dict[str, Any]]:
        return [event.as_dict() for event in self.events(**filters)]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._events),
                "capacity": self.max_events,
                "emitted": self._emitted,
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
