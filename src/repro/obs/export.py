"""Standard exporters: Prometheus text exposition and Chrome trace JSON.

Two wire formats so the reproduction's observability plugs into stock
tooling instead of bespoke dashboards:

* :func:`to_prometheus` renders a :meth:`MetricsRegistry.snapshot` as
  Prometheus/OpenMetrics text exposition (``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for histograms,
  escaped label values). :func:`parse_prometheus_text` is the matching
  line-format parser used to round-trip the output in tests.
* :func:`to_chrome_trace` converts tracer spans into Chrome trace-event
  JSON (phase ``"X"`` complete events with microsecond ``ts``/``dur``),
  so a trace opens directly as a flamegraph in Perfetto or
  ``chrome://tracing``. Spans from concurrent pool workers overlap in
  time; the exporter assigns each span a ``tid`` lane such that spans
  sharing a lane nest properly (a child only joins its parent's lane
  when it fits inside it), which is what the flamegraph renderers
  require.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.obs.trace import Span

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SERIES_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


# -- Prometheus text exposition ------------------------------------------------


def to_prometheus(snapshot: list[dict[str, Any]]) -> str:
    """Render a metrics-registry snapshot as Prometheus text exposition."""
    lines: list[str] = []
    typed: set[str] = set()
    for entry in snapshot:
        name = _metric_name(entry["name"])
        kind = entry["type"]
        labels = entry.get("labels", {})
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        if kind == "histogram":
            for bound, cumulative in entry["buckets"].items():
                lines.append(
                    _series(
                        f"{name}_bucket", {**labels, "le": bound}, cumulative
                    )
                )
            lines.append(_series(f"{name}_sum", labels, entry["sum"]))
            lines.append(_series(f"{name}_count", labels, entry["count"]))
        else:
            lines.append(_series(name, labels, entry["value"]))
    return "\n".join(lines) + "\n" if lines else ""


def _metric_name(name: Any) -> str:
    cleaned = _NAME_SANITIZE.sub("_", str(name))
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _series(name: str, labels: dict[str, Any], value: Any) -> str:
    if labels:
        rendered = ",".join(
            f'{_metric_name(key)}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items(), key=lambda kv: str(kv[0]))
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def parse_prometheus_text(text: str) -> list[dict[str, Any]]:
    """Parse text exposition back into ``{name, labels, value}`` rows.

    Supports exactly what :func:`to_prometheus` emits (plus blank and
    comment lines); used to verify the exporter round-trips.
    """
    rows: list[dict[str, Any]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SERIES_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            for pair in _LABEL_PAIR.finditer(body):
                value = pair.group("value")
                value = (
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels[pair.group("key")] = value
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value_f = float("inf")
        elif raw_value == "-Inf":
            value_f = float("-inf")
        else:
            value_f = float(raw_value)
        rows.append(
            {"name": match.group("name"), "labels": labels, "value": value_f}
        )
    return rows


# -- Chrome trace events -------------------------------------------------------


def to_chrome_trace(spans: Iterable[Span], pid: int = 1) -> dict[str, Any]:
    """Convert spans into the Chrome trace-event JSON object format.

    Every span becomes one phase-``X`` (complete) event with ``ts`` and
    ``dur`` in microseconds. ``tid`` lanes are assigned so nesting is
    preserved: a span lands on its parent's lane only when the parent is
    still open there and fully contains it; otherwise it takes the first
    idle lane (or a fresh one). Concurrent pool fetches therefore render
    as parallel "threads" instead of corrupting the flamegraph.

    Request-scoped spans (``trace_id`` set — the serving layer) are
    grouped one *process* per request: each trace gets its own ``pid``
    with a ``process_name`` metadata event (trace id plus the session,
    read from the root ``request`` span), so a multi-session capture
    renders as parallel per-request swimlanes instead of one
    interleaved mess. Untraced spans keep ``pid`` and the classic
    nesting behaviour, so classic single-run exports are unchanged.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    untraced = [span for span in ordered if span.trace_id is None]
    by_trace: dict[str, list[Span]] = {}
    for span in ordered:
        if span.trace_id is not None:
            by_trace.setdefault(span.trace_id, []).append(span)
    events = _lane_events(untraced, pid)
    next_pid = pid + 1
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        session = next(
            (
                span.attrs.get("session")
                for span in group
                if span.name == "request"
            ),
            None,
        )
        label = f"request {trace_id}" + (
            f" [{session}]" if session else ""
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": next_pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        events.extend(_lane_events(group, next_pid))
        next_pid += 1
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _lane_events(
    ordered: list[Span], pid: int
) -> list[dict[str, Any]]:
    """Phase-``X`` events for pre-sorted spans, lanes nested per pid."""
    events: list[dict[str, Any]] = []
    lane_of: dict[int, int] = {}
    stacks: dict[int, list[tuple[int, float]]] = {}
    next_tid = 1
    for span in ordered:
        end = span.end if span.end is not None else span.start
        tid: int | None = None
        if span.parent_id is not None:
            parent_tid = lane_of.get(span.parent_id)
            if parent_tid is not None:
                stack = stacks[parent_tid]
                while stack and stack[-1][1] <= span.start:
                    stack.pop()
                if (
                    stack
                    and stack[-1][0] == span.parent_id
                    and end <= stack[-1][1]
                ):
                    tid = parent_tid
        if tid is None:
            for candidate in sorted(stacks):
                stack = stacks[candidate]
                while stack and stack[-1][1] <= span.start:
                    stack.pop()
                if not stack:
                    tid = candidate
                    break
            if tid is None:
                tid = next_tid
                next_tid += 1
                stacks[tid] = []
        stacks[tid].append((span.span_id, end))
        lane_of[span.span_id] = tid
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        for key, value in span.attrs.items():
            args[str(key)] = (
                value
                if isinstance(value, (str, int, float, bool)) or value is None
                else str(value)
            )
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return events
