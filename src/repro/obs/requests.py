"""Request-scoped tracing support: trace ids, digests, flight recorder.

PR 5-7 made the reproduction a concurrent serving system, but the obs
layer stayed per-run: one shared tracer, reset between runs, spans from
concurrent sessions interleaved with no attribution. This module is the
request-scoped half (the aggregate half is :mod:`repro.obs.slo`):

* **Trace ids** — every request the scheduler admits gets a
  ``trace_id`` from :class:`TraceIdAllocator` (deterministic counter,
  ``"t-000001"``-style, so tests and journals are stable). The id rides
  the :class:`~repro.network.executor.ExecContext` through pool workers,
  coalesced flights, hedge attempts and per-shard scatter tasks, and is
  stamped on every span those paths record.
* **Latency breakdown** — :func:`latency_breakdown` folds one request's
  spans into "where did the time go": queue wait vs store time by
  database vs per-shard fetches vs coalesce waits vs hedge outcomes.
  Attached to serving digests and :class:`~repro.core.runlog.RunRecord`.
* **Flight recorder** — :class:`FlightRecorder` keeps a bounded ring of
  :class:`RequestDigest` with *tail-based retention*: errored, shed and
  degraded requests are always kept, completed ones only when slow
  (at/over ``slow_threshold`` seconds, or at/over the rolling p95 once
  enough samples exist); fast-and-fine requests only bump counters.
  Queryable via CLI ``record`` and ``GET /requests``.

Everything here only *reads* clocks and spans — nothing charges virtual
time, so the fig09 guard stays bit-identical with the recorder attached.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.metrics import Histogram
from repro.obs.trace import Span


class TraceIdAllocator:
    """Deterministic, thread-safe trace-id source (``t-000001``, ...)."""

    def __init__(self, prefix: str = "t") -> None:
        self._prefix = prefix
        self._ids = itertools.count(1)

    def next_id(self) -> str:
        # itertools.count.__next__ is atomic under CPython; no lock.
        return f"{self._prefix}-{next(self._ids):06d}"


def latency_breakdown(spans: Iterable[Span]) -> dict[str, Any]:
    """Fold one request's spans into a critical-path breakdown.

    Returns a JSON-ready dict::

        {
          "store_s": {database: seconds, ...},      # store_call spans
          "store_calls": int,                        # incl. failed ones
          "shard_fetch_s": {"db/shard": seconds},    # scatter children
          "scatter_gathers": int,
          "coalesce_wait_s": float,                  # follower waits
          "coalesce_followed": int,
          "hedge": {"attempts": n, "won": n, "lost": n, "cancelled": n,
                    "savings_s": seconds},
          "plan_s": float, "augment_s": float, "optimize_s": float,
        }

    ``savings_s`` is the hedge-win proxy: for every won backup, the
    primary's elapsed-so-far minus the winning backup's duration — the
    tail latency the request did not pay.
    """
    store_s: dict[str, float] = {}
    shard_s: dict[str, float] = {}
    hedge = {
        "attempts": 0, "won": 0, "lost": 0, "cancelled": 0, "savings_s": 0.0,
    }
    out: dict[str, Any] = {
        "store_s": store_s,
        "store_calls": 0,
        "shard_fetch_s": shard_s,
        "scatter_gathers": 0,
        "coalesce_wait_s": 0.0,
        "coalesce_followed": 0,
        "hedge": hedge,
        "plan_s": 0.0,
        "augment_s": 0.0,
        "optimize_s": 0.0,
    }
    for span in spans:
        name = span.name
        if name == "store_call":
            database = str(span.attrs.get("database", "?"))
            store_s[database] = store_s.get(database, 0.0) + span.duration
            out["store_calls"] += 1
        elif name == "shard_fetch":
            lane = (
                f"{span.attrs.get('database', '?')}"
                f"/{span.attrs.get('shard', '?')}"
            )
            shard_s[lane] = shard_s.get(lane, 0.0) + span.duration
        elif name == "scatter_gather":
            out["scatter_gathers"] += 1
        elif name == "coalesce_wait":
            out["coalesce_wait_s"] += span.duration
            out["coalesce_followed"] += 1
        elif name == "hedge_attempt":
            hedge["attempts"] += 1
            outcome = span.attrs.get("outcome")
            if outcome in ("won", "lost", "cancelled"):
                hedge[outcome] += 1
            saved = span.attrs.get("saved_s")
            if outcome == "won" and isinstance(saved, (int, float)):
                hedge["savings_s"] += float(saved)
        elif name in ("plan", "augment", "optimize"):
            out[f"{name}_s"] += span.duration
    return out


@dataclass(frozen=True)
class RequestDigest:
    """What the flight recorder keeps about one served request."""

    trace_id: str
    request_id: int
    session: str
    kind: str
    priority: str
    #: completed / failed / shed.
    status: str
    #: Shed reason (queue_full, deadline, deadline_at_admission,
    #: stopped) or ``None``.
    shed_reason: str | None = None
    degraded: bool = False
    queue_wait_s: float = 0.0
    latency_s: float = 0.0
    #: Why this digest was retained: error / shed / degraded / slow.
    kept_because: str = ""
    error: str | None = None
    breakdown: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "session": self.session,
            "kind": self.kind,
            "priority": self.priority,
            "status": self.status,
            "shed_reason": self.shed_reason,
            "degraded": self.degraded,
            "queue_wait_s": self.queue_wait_s,
            "latency_s": self.latency_s,
            "kept_because": self.kept_because,
            "error": self.error,
            "breakdown": dict(self.breakdown),
        }


class FlightRecorder:
    """Bounded, always-on record of the requests worth keeping.

    Tail-based retention: a digest survives when its request erred, was
    shed, returned degraded, or was *slow* — at/over ``slow_threshold``
    seconds when configured, or at/over the rolling p95 of the
    recorder's own latency histogram once ``adaptive_min_samples``
    completions have been observed. Everything else is dropped after
    bumping the observed/dropped counters, so a healthy high-QPS server
    pays one histogram observe per request and no memory growth.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold: float | None = None,
        adaptive_quantile: float = 0.95,
        adaptive_min_samples: int = 50,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_threshold is not None and slow_threshold <= 0:
            raise ValueError("slow_threshold must be > 0")
        if not 0.0 < adaptive_quantile < 1.0:
            raise ValueError("adaptive_quantile must be in (0, 1)")
        if adaptive_min_samples < 1:
            raise ValueError("adaptive_min_samples must be >= 1")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.adaptive_quantile = adaptive_quantile
        self.adaptive_min_samples = adaptive_min_samples
        self._lock = threading.Lock()
        self._digests: deque[RequestDigest] = deque(maxlen=capacity)
        self._latency = Histogram()
        self._observed = 0
        self._kept = 0
        self._evicted = 0
        self._kept_by_reason: dict[str, int] = {}

    # -- ingestion ----------------------------------------------------------

    def observe(self, digest: RequestDigest) -> bool:
        """Record one finished request; returns True when retained."""
        reason = self._keep_reason(digest)
        if digest.status == "completed":
            self._latency.observe(digest.latency_s)
        with self._lock:
            self._observed += 1
            if reason is None:
                return False
            if len(self._digests) == self._digests.maxlen:
                self._evicted += 1
            self._digests.append(
                digest
                if digest.kept_because == reason
                else _with_reason(digest, reason)
            )
            self._kept += 1
            self._kept_by_reason[reason] = (
                self._kept_by_reason.get(reason, 0) + 1
            )
        return True

    def _keep_reason(self, digest: RequestDigest) -> str | None:
        # Shed before error: a shed request carries its shed exception,
        # but "shed" is the more specific verdict.
        if digest.status == "shed":
            return "shed"
        if digest.status == "failed" or digest.error is not None:
            return "error"
        if digest.degraded:
            return "degraded"
        if (
            self.slow_threshold is not None
            and digest.latency_s >= self.slow_threshold
        ):
            return "slow"
        if (
            self.slow_threshold is None
            and self._latency.count >= self.adaptive_min_samples
            and digest.latency_s
            >= self._latency.percentile(self.adaptive_quantile)
        ):
            return "slow"
        return None

    # -- reads --------------------------------------------------------------

    def records(
        self,
        session: str | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> list[RequestDigest]:
        """A filtered snapshot, oldest first; ``limit`` keeps the newest."""
        with self._lock:
            selected = list(self._digests)
        if session is not None:
            selected = [d for d in selected if d.session == session]
        if status is not None:
            selected = [d for d in selected if d.status == status]
        if limit is not None and limit >= 0:
            selected = selected[len(selected) - limit:] if limit else []
        return selected

    def as_dicts(self, **filters: Any) -> list[dict[str, Any]]:
        return [digest.as_dict() for digest in self.records(**filters)]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "size": len(self._digests),
                "capacity": self.capacity,
                "observed": self._observed,
                "kept": self._kept,
                "evicted": self._evicted,
                "kept_by_reason": dict(self._kept_by_reason),
                "slow_threshold": self.slow_threshold,
                "completed_latency_p95": self._latency.percentile(
                    self.adaptive_quantile
                ),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._digests)


def _with_reason(digest: RequestDigest, reason: str) -> RequestDigest:
    return RequestDigest(
        trace_id=digest.trace_id,
        request_id=digest.request_id,
        session=digest.session,
        kind=digest.kind,
        priority=digest.priority,
        status=digest.status,
        shed_reason=digest.shed_reason,
        degraded=digest.degraded,
        queue_wait_s=digest.queue_wait_s,
        latency_s=digest.latency_s,
        kept_because=reason,
        error=digest.error,
        breakdown=digest.breakdown,
    )
