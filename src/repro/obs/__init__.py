"""Observability: pipeline-wide tracing and metrics (ROADMAP item).

The paper's adaptive optimizer learns from logs of completed
augmentations (Section V); its Figs 9-11 dissect *where* time goes —
planning vs. cache probes vs. per-store roundtrips vs. pool
synchronization. This package provides that visibility for the
reproduction:

* :class:`~repro.obs.trace.Tracer` — per-run spans on the runtime's own
  clock (virtual or wall), with parent/child structure and attributes;
* :class:`~repro.obs.metrics.MetricsRegistry` — cumulative thread-safe
  counters, gauges and fixed-bucket histograms (per-database latency);
* :class:`Observability` — one bundle of both, created per
  :class:`~repro.network.executor.Runtime` (hence per ``Quepa``) and
  reached from any :class:`~repro.network.executor.ExecContext` via
  ``ctx.obs``.

Results surface three ways: ``AugmentationOutcome.trace`` /
``RunRecord`` fields (Python API), ``GET /metrics`` + ``GET /trace`` on
the UI server, and the ``stats`` / ``trace`` CLI subcommands.

Tracing never charges the clocks it reads — virtual-time numbers are
bit-identical with instrumentation on (see tests/test_benchmark_guard).
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import SEVERITIES, Event, EventJournal
from repro.obs.export import (
    parse_prometheus_text,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.requests import (
    FlightRecorder,
    RequestDigest,
    TraceIdAllocator,
    latency_breakdown,
)
from repro.obs.slo import SloConfig, SloMonitor
from repro.obs.trace import Span, Tracer, tree_lines


class Observability:
    """Tracer + metrics registry + event journal, shared by a runtime's
    contexts.

    ``slow_query_threshold`` (seconds, ``None`` = disabled, the default)
    arms the per-store slow-query log: any store roundtrip whose elapsed
    time meets the threshold emits a ``slow_query`` warning event with
    the store name, native query text and elapsed time in its attrs.
    """

    def __init__(
        self,
        max_spans: int = 10_000,
        max_events: int = 2048,
        slow_query_threshold: float | None = None,
    ) -> None:
        self.tracer = Tracer(max_spans)
        self.metrics = MetricsRegistry()
        self.events = EventJournal(max_events)
        self.slow_query_threshold = slow_query_threshold

    def trace_summary(self) -> dict[str, Any]:
        """Structured summary of the current run's trace."""
        stats = self.tracer.stats()
        return {
            "spans": stats["spans"],
            "dropped": stats["dropped"],
            "by_kind": self.tracer.summary(),
        }

    def snapshot(self) -> dict[str, Any]:
        """Everything, JSON-ready (the UI ``/metrics`` payload)."""
        return {
            "metrics": self.metrics.snapshot(),
            "trace": self.trace_summary(),
            "events": self.events.stats(),
        }


__all__ = [
    "DEFAULT_BUCKETS",
    "SEVERITIES",
    "Counter",
    "Event",
    "EventJournal",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RequestDigest",
    "SloConfig",
    "SloMonitor",
    "Span",
    "TraceIdAllocator",
    "Tracer",
    "latency_breakdown",
    "parse_prometheus_text",
    "to_chrome_trace",
    "to_prometheus",
    "tree_lines",
]
