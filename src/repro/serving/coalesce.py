"""Single-flight coalescing of identical concurrent store fetches.

Under concurrent load many sessions traverse the same hot A' index
neighborhoods, so their augmenters issue the *same* ``multi_get``
keysets against the same stores at the same time (PAPER.md §III; the
pattern BigDAWG's shared query endpoint exploits). Executing each copy
separately wastes store roundtrips and serializes on the store's engine
lock. :class:`SingleFlight` deduplicates them:

* Flights are keyed on ``(database, frozenset(keys))``. The first
  caller for a keyset becomes the **leader** and issues the physical
  call through the normal connector path — the cache, faults, metering
  and obs layers see exactly one logical call.
* Concurrent callers for the same keyset become **followers**: they
  wait on the leader's flight and share its result (each follower gets
  its own shallow copy of the result list; the leader's
  ``last_call_truncated`` verdict is propagated so truncated keys stay
  out of the followers' lazy-deletion accounting too).
* **Subset sharing**: a caller whose keyset is a subset of an already
  in-flight keyset joins that flight and filters the result down to its
  own keys — a cheap win because ``multi_get`` answers carry the key on
  every object.
* Flights are removed the moment the leader finishes: this is request
  coalescing, not a cache. A later identical fetch starts a new flight
  and sees fresh store state.

Errors propagate to followers as *clones* of the leader's exception
(:func:`repro.errors.clone_exception`), so concurrent re-raises never
race on one traceback. A follower whose leader wedges past
``wait_timeout`` falls back to issuing its own call rather than hanging
a session forever.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.errors import clone_exception


class _Flight:
    """One in-flight physical fetch, shared leader-to-followers."""

    __slots__ = (
        "keys", "done", "result", "error", "truncated",
        "leader_trace", "leader_span",
    )

    def __init__(self, keys: frozenset) -> None:
        self.keys = keys
        self.done = threading.Event()
        self.result: list[Any] | None = None
        self.error: BaseException | None = None
        self.truncated = False
        #: The leader's trace id / active span id, read by followers to
        #: link their ``coalesce_wait`` span to the flight they shared.
        self.leader_trace: str | None = None
        self.leader_span: int | None = None


class SingleFlight:
    """Coalesce identical (and subset) concurrent fetches per database."""

    def __init__(
        self,
        metrics=None,
        subset_sharing: bool = True,
        wait_timeout: float = 30.0,
    ) -> None:
        self._lock = threading.Lock()
        #: database -> {keyset -> flight} for calls currently in flight.
        self._flights: dict[str, dict[frozenset, _Flight]] = {}
        self._subset_sharing = subset_sharing
        self._wait_timeout = wait_timeout
        self._leaders = 0
        self._followers = 0
        self._subset_joins = 0
        self._timeouts = 0
        self._metrics = metrics

    # -- the coalescing fetch ------------------------------------------------

    def fetch(
        self,
        ctx,
        database: str,
        keys: Iterable,
        issue: Callable[[Any], Iterable],
    ) -> list:
        """Fetch ``keys`` from ``database``, sharing concurrent flights.

        ``issue(ctx)`` performs the physical call (resilience + store
        charging included); it runs at most once per flight.
        """
        keyset = frozenset(keys)
        subset = False
        with self._lock:
            flights = self._flights.setdefault(database, {})
            flight = flights.get(keyset)
            if flight is None and self._subset_sharing:
                for candidate in flights.values():
                    if keyset < candidate.keys:
                        flight = candidate
                        subset = True
                        break
            if flight is None:
                flight = _Flight(keyset)
                flights[keyset] = flight
                leader = True
            else:
                leader = False
        if leader:
            return self._lead(ctx, database, keyset, flight, issue)
        return self._follow(ctx, keyset, flight, subset, issue)

    def _lead(self, ctx, database, keyset, flight, issue) -> list:
        flight.leader_trace = getattr(ctx, "_trace_id", None)
        flight.leader_span = getattr(ctx, "_span_id", None)
        try:
            result = list(issue(ctx))
            flight.result = result
            flight.truncated = bool(
                getattr(ctx, "last_call_truncated", False)
            )
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Deregister *before* waking followers so a fetch arriving
            # after completion starts a fresh flight (no stale reuse),
            # then publish the verdict.
            with self._lock:
                flights = self._flights.get(database)
                if flights is not None and flights.get(keyset) is flight:
                    del flights[keyset]
                self._leaders += 1
            flight.done.set()
            self._count("leader")
        return result

    def _follow(self, ctx, keyset, flight, subset, issue) -> list:
        obs = getattr(ctx, "obs", None)
        waited_from = ctx.now if obs is not None else 0.0
        if not flight.done.wait(self._wait_timeout):
            # Defensive: never let a wedged leader hang a session.
            with self._lock:
                self._timeouts += 1
            self._count("timeout")
            return list(issue(ctx))
        if obs is not None:
            # The follower's side of the link: one span covering the
            # wait, tagged with the leader it shared a flight with —
            # this is what stitches two requests' traces together.
            obs.tracer.record(
                "coalesce_wait",
                waited_from,
                ctx.now,
                getattr(ctx, "_span_id", None),
                getattr(ctx, "_trace_id", None),
                leader_trace=flight.leader_trace,
                leader_span=flight.leader_span,
                subset=subset,
                keys=len(keyset),
            )
        if flight.error is not None:
            raise clone_exception(flight.error) from flight.error
        ctx.last_call_truncated = flight.truncated
        with self._lock:
            self._followers += 1
            if subset:
                self._subset_joins += 1
        self._count("follower")
        assert flight.result is not None
        if subset:
            return [obj for obj in flight.result if obj.key in keyset]
        return list(flight.result)

    # -- accounting ----------------------------------------------------------

    def _count(self, outcome: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "serving_coalesce_total", outcome=outcome
            ).inc()

    def stats(self) -> dict[str, Any]:
        """Leader/follower tallies; ``hit_rate`` = shared / all fetches."""
        with self._lock:
            leaders = self._leaders
            followers = self._followers
            subset_joins = self._subset_joins
            timeouts = self._timeouts
        total = leaders + followers
        return {
            "leaders": leaders,
            "followers": followers,
            "subset_joins": subset_joins,
            "wait_timeouts": timeouts,
            "hit_rate": followers / total if total else 0.0,
        }
