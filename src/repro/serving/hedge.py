"""Hedged store calls: a backup request after the learned p95 delay.

The tail-at-scale defence for one slow store call holding a serving
worker hostage: once a call has been outstanding longer than the p95 of
that store's observed latency, issue one backup call and take whichever
finishes first. The delay is *learned* — read from the per-database
``store_call_seconds`` histograms :mod:`repro.obs.metrics` already
collects — so hedging arms itself only after ``min_observations``
samples exist and fires on roughly the slowest ~5% of calls.

Composition rules:

* **Never hedge into an open breaker.** If the faults layer's circuit
  breaker for the store is anything but closed, the backup is not sent
  (``serving_hedge_skips_total{reason=breaker_open}``); the primary is
  awaited as if hedging were off. Half-open breakers admit only counted
  probes — a hedge would burn the probe budget.
* Both attempts run through the full connector path (resilience,
  fault injection, metering) on their own request contexts, so every
  physical call is charged and observable exactly like an unhedged one.
* Outcomes are charged to ``serving_hedges_total{outcome=...}``:
  ``won`` (backup finished first), ``lost`` (primary finished first but
  the backup had already started / both failed), ``cancelled`` (backup
  revoked before it started).

Hedging never changes an answer — both calls compute the same result;
only latency (and physical call count) differs. The serving equivalence
properties assert exactly that.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
    wait as wait_futures,
)
from typing import Any, Callable


def _consume(future: Future) -> None:
    """Swallow the loser's eventual outcome (result or exception)."""
    future.exception()


class HedgePolicy:
    """Issue backup store calls after a per-database learned delay."""

    def __init__(
        self,
        runtime,
        resilience=None,
        quantile: float = 0.95,
        min_observations: int = 25,
        min_delay: float = 0.0005,
        max_workers: int = 64,
    ) -> None:
        self._runtime = runtime
        self._resilience = resilience
        self._quantile = quantile
        self._min_observations = min_observations
        self._min_delay = min_delay
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="quepa-hedge"
        )
        self._closed = False
        self._outcomes = {"won": 0, "lost": 0, "cancelled": 0}
        self._breaker_skips = 0

    # -- the learned delay ---------------------------------------------------

    def delay_for(self, database: str) -> float | None:
        """The hedge delay for ``database``, or ``None`` to not hedge.

        ``None`` until enough latency samples exist — a cold store has
        no p95 to learn from, and hedging on a guess would double load
        exactly when the system knows least.
        """
        hist = self._runtime.obs.metrics.histogram(
            "store_call_seconds", database=database
        )
        if hist.count < self._min_observations:
            return None
        return max(hist.percentile(self._quantile), self._min_delay)

    def _breaker_open(self, database: str) -> bool:
        if self._resilience is None:
            return False
        breaker = self._resilience.breaker(database)
        return breaker.state != breaker.CLOSED

    # -- execution -----------------------------------------------------------

    def call(
        self, ctx, database: str, issue: Callable[[Any], Any]
    ) -> Any:
        """Run ``issue`` with hedging; first success wins.

        ``issue(ctx)`` performs one physical call on the context it is
        given; primary and backup each get a fresh request context
        (inheriting the caller's active span) so their charges never
        interleave on one context.
        """
        delay = self.delay_for(database)
        if delay is None or self._closed:
            return issue(ctx)
        primary_ctx = self._child_ctx(ctx)
        try:
            primary = self._executor.submit(issue, primary_ctx)
        except RuntimeError:  # shut down mid-call: serve unhedged
            return issue(ctx)
        try:
            # A failure inside the delay window re-raises right here —
            # identical to what the unhedged path would surface.
            result = primary.result(timeout=delay)
        except FutureTimeout:
            pass
        else:
            self._propagate(ctx, primary_ctx)
            return result
        if self._breaker_open(database):
            # The store is already suspect: one outstanding probe (or a
            # fast-failing primary) is all the breaker allows.
            with self._lock:
                self._breaker_skips += 1
            self._count_skip("breaker_open")
            result = primary.result()
            self._propagate(ctx, primary_ctx)
            return result
        backup_ctx = self._child_ctx(ctx)
        backup = self._executor.submit(issue, backup_ctx)
        return self._race(ctx, primary, primary_ctx, backup, backup_ctx)

    def _race(self, ctx, primary, primary_ctx, backup, backup_ctx) -> Any:
        """Wait for the first *successful* attempt; account the outcome."""
        contexts = {primary: primary_ctx, backup: backup_ctx}
        pending = {primary, backup}
        primary_error: BaseException | None = None
        backup_error: BaseException | None = None
        while pending:
            done, pending = wait_futures(
                pending, return_when=FIRST_COMPLETED
            )
            for future in done:
                try:
                    result = future.result()
                except BaseException as exc:
                    if future is primary:
                        primary_error = exc
                    else:
                        backup_error = exc
                    continue
                self._settle(future is backup, primary, backup)
                self._propagate(ctx, contexts[future])
                return result
        # Both attempts failed: the hedge lost, the primary's error is
        # the caller's error (same as the unhedged path would raise).
        self._count("lost")
        assert primary_error is not None or backup_error is not None
        raise primary_error if primary_error is not None else backup_error

    def _settle(self, backup_won: bool, primary, backup) -> None:
        if backup_won:
            self._count("won")
            primary.add_done_callback(_consume)
            return
        if backup.cancel():
            self._count("cancelled")
        else:
            self._count("lost")
            backup.add_done_callback(_consume)

    # -- plumbing ------------------------------------------------------------

    def _child_ctx(self, ctx):
        child = self._runtime.request_context()
        child._span_id = getattr(ctx, "_span_id", None)
        return child

    def _propagate(self, ctx, winner_ctx) -> None:
        ctx.last_call_truncated = bool(
            getattr(winner_ctx, "last_call_truncated", False)
        )

    def _count(self, outcome: str) -> None:
        with self._lock:
            self._outcomes[outcome] += 1
        self._runtime.obs.metrics.counter(
            "serving_hedges_total", outcome=outcome
        ).inc()

    def _count_skip(self, reason: str) -> None:
        self._runtime.obs.metrics.counter(
            "serving_hedge_skips_total", reason=reason
        ).inc()

    def close(self) -> None:
        self._closed = True
        self._executor.shutdown(wait=False)

    def stats(self) -> dict[str, Any]:
        """Hedge outcome tallies; ``win_rate`` = won / hedges issued."""
        with self._lock:
            outcomes = dict(self._outcomes)
            skips = self._breaker_skips
        issued = sum(outcomes.values())
        return {
            **outcomes,
            "issued": issued,
            "breaker_skips": skips,
            "win_rate": outcomes["won"] / issued if issued else 0.0,
        }
