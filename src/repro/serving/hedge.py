"""Hedged store calls: a backup request after the learned p95 delay.

The tail-at-scale defence for one slow store call holding a serving
worker hostage: once a call has been outstanding longer than the p95 of
that store's observed latency, issue one backup call and take whichever
finishes first. The delay is *learned* — read from the per-database
``store_call_seconds`` histograms :mod:`repro.obs.metrics` already
collects — so hedging arms itself only after ``min_observations``
samples exist and fires on roughly the slowest ~5% of calls.

Composition rules:

* **Never hedge into an open breaker.** If the faults layer's circuit
  breaker for the store is anything but closed, the backup is not sent
  (``serving_hedge_skips_total{reason=breaker_open}``); the primary is
  awaited as if hedging were off. Half-open breakers admit only counted
  probes — a hedge would burn the probe budget.
* Both attempts run through the full connector path (resilience,
  fault injection, metering) on their own request contexts, so every
  physical call is charged and observable exactly like an unhedged one.
* Outcomes are charged to ``serving_hedges_total{outcome=...}``:
  ``won`` (backup finished first), ``lost`` (primary finished first but
  the backup had already started / both failed), ``cancelled`` (backup
  revoked before it started).

Hedging never changes an answer — both calls compute the same result;
only latency (and physical call count) differs. The serving equivalence
properties assert exactly that.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
    wait as wait_futures,
)
from typing import Any, Callable


def _consume(future: Future) -> None:
    """Swallow the loser's eventual outcome (result or exception)."""
    future.exception()


class HedgePolicy:
    """Issue backup store calls after a per-database learned delay."""

    def __init__(
        self,
        runtime,
        resilience=None,
        quantile: float = 0.95,
        min_observations: int = 25,
        min_delay: float = 0.0005,
        max_workers: int = 64,
    ) -> None:
        self._runtime = runtime
        self._resilience = resilience
        self._quantile = quantile
        self._min_observations = min_observations
        self._min_delay = min_delay
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="quepa-hedge"
        )
        self._closed = False
        self._outcomes = {"won": 0, "lost": 0, "cancelled": 0}
        self._breaker_skips = 0

    # -- the learned delay ---------------------------------------------------

    def delay_for(self, database: str) -> float | None:
        """The hedge delay for ``database``, or ``None`` to not hedge.

        ``None`` until enough latency samples exist — a cold store has
        no p95 to learn from, and hedging on a guess would double load
        exactly when the system knows least.
        """
        hist = self._runtime.obs.metrics.histogram(
            "store_call_seconds", database=database
        )
        if hist.count < self._min_observations:
            return None
        return max(hist.percentile(self._quantile), self._min_delay)

    def _breaker_open(self, database: str) -> bool:
        if self._resilience is None:
            return False
        breaker = self._resilience.breaker(database)
        return breaker.state != breaker.CLOSED

    # -- execution -----------------------------------------------------------

    def call(
        self, ctx, database: str, issue: Callable[[Any], Any]
    ) -> Any:
        """Run ``issue`` with hedging; first success wins.

        ``issue(ctx)`` performs one physical call on the context it is
        given; primary and backup each get a fresh request context
        (inheriting the caller's active span) so their charges never
        interleave on one context.
        """
        delay = self.delay_for(database)
        if delay is None or self._closed:
            return issue(ctx)
        primary_ctx = self._child_ctx(ctx)
        primary_started = getattr(ctx, "now", None)
        try:
            primary = self._executor.submit(issue, primary_ctx)
        except RuntimeError:  # shut down mid-call: serve unhedged
            return issue(ctx)
        try:
            # A failure inside the delay window re-raises right here —
            # identical to what the unhedged path would surface.
            result = primary.result(timeout=delay)
        except FutureTimeout:
            pass
        else:
            self._propagate(ctx, primary_ctx)
            return result
        if self._breaker_open(database):
            # The store is already suspect: one outstanding probe (or a
            # fast-failing primary) is all the breaker allows.
            with self._lock:
                self._breaker_skips += 1
            self._count_skip("breaker_open")
            result = primary.result()
            self._propagate(ctx, primary_ctx)
            return result
        backup_ctx = self._child_ctx(ctx)
        backup_started = getattr(ctx, "now", None)
        backup = self._executor.submit(issue, backup_ctx)
        return self._race(
            ctx, database, primary, primary_ctx, backup, backup_ctx,
            primary_started, backup_started,
        )

    def _race(
        self,
        ctx,
        database,
        primary,
        primary_ctx,
        backup,
        backup_ctx,
        primary_started,
        backup_started,
    ) -> Any:
        """Wait for the first *successful* attempt; account the outcome."""
        contexts = {primary: primary_ctx, backup: backup_ctx}
        pending = {primary, backup}
        primary_error: BaseException | None = None
        backup_error: BaseException | None = None
        while pending:
            done, pending = wait_futures(
                pending, return_when=FIRST_COMPLETED
            )
            for future in done:
                try:
                    result = future.result()
                except BaseException as exc:
                    if future is primary:
                        primary_error = exc
                    else:
                        backup_error = exc
                    continue
                self._settle(
                    future is backup, primary, backup,
                    ctx=ctx, database=database,
                    primary_started=primary_started,
                    backup_started=backup_started,
                )
                self._propagate(ctx, contexts[future])
                return result
        # Both attempts failed: the hedge lost, the primary's error is
        # the caller's error (same as the unhedged path would raise).
        self._count("lost")
        self._attempt_span(
            ctx, database, "primary", "lost", primary_started
        )
        self._attempt_span(ctx, database, "backup", "lost", backup_started)
        assert primary_error is not None or backup_error is not None
        raise primary_error if primary_error is not None else backup_error

    def _settle(
        self,
        backup_won: bool,
        primary,
        backup,
        ctx=None,
        database: str = "",
        primary_started=None,
        backup_started=None,
    ) -> None:
        if backup_won:
            self._count("won")
            primary.add_done_callback(_consume)
            # The savings proxy: the primary had been outstanding this
            # long before the backup even started — tail latency the
            # request did not wait out.
            saved = (
                backup_started - primary_started
                if primary_started is not None and backup_started is not None
                else None
            )
            self._attempt_span(
                ctx, database, "backup", "won", backup_started, saved=saved
            )
            self._attempt_span(
                ctx, database, "primary", "lost", primary_started
            )
            return
        self._attempt_span(
            ctx, database, "primary", "won", primary_started
        )
        if backup.cancel():
            self._count("cancelled")
            self._attempt_span(
                ctx, database, "backup", "cancelled", backup_started
            )
        else:
            self._count("lost")
            backup.add_done_callback(_consume)
            self._attempt_span(
                ctx, database, "backup", "lost", backup_started
            )

    def _attempt_span(
        self, ctx, database, attempt, outcome, started, saved=None
    ) -> None:
        """One ``hedge_attempt`` span on the caller's clock and trace.

        Observational only (reads ``ctx.now``, charges nothing), and
        skipped when the context exposes no clock (bare test stubs).
        """
        now = getattr(ctx, "now", None)
        if now is None or started is None:
            return
        attrs: dict[str, Any] = {
            "attempt": attempt,
            "outcome": outcome,
            "database": database,
        }
        if saved is not None:
            attrs["saved_s"] = saved
        self._runtime.obs.tracer.record(
            "hedge_attempt",
            started,
            now,
            getattr(ctx, "_span_id", None),
            getattr(ctx, "_trace_id", None),
            **attrs,
        )

    # -- plumbing ------------------------------------------------------------

    def _child_ctx(self, ctx):
        # Argless call: StubRuntime.request_context takes no parameters.
        child = self._runtime.request_context()
        child._span_id = getattr(ctx, "_span_id", None)
        child._trace_id = getattr(ctx, "_trace_id", None)
        return child

    def _propagate(self, ctx, winner_ctx) -> None:
        ctx.last_call_truncated = bool(
            getattr(winner_ctx, "last_call_truncated", False)
        )

    def _count(self, outcome: str) -> None:
        with self._lock:
            self._outcomes[outcome] += 1
        self._runtime.obs.metrics.counter(
            "serving_hedges_total", outcome=outcome
        ).inc()

    def _count_skip(self, reason: str) -> None:
        self._runtime.obs.metrics.counter(
            "serving_hedge_skips_total", reason=reason
        ).inc()

    def close(self) -> None:
        self._closed = True
        self._executor.shutdown(wait=False)

    def stats(self) -> dict[str, Any]:
        """Hedge outcome tallies; ``win_rate`` = won / hedges issued."""
        with self._lock:
            outcomes = dict(self._outcomes)
            skips = self._breaker_skips
        issued = sum(outcomes.values())
        return {
            **outcomes,
            "issued": issued,
            "breaker_skips": skips,
            "win_rate": outcomes["won"] / issued if issued else 0.0,
        }
