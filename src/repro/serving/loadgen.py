"""A seeded, deterministic closed-loop load generator.

Drives a :class:`~repro.serving.server.QuepaServer` with N concurrent
client sessions. Each client runs a *closed loop*: submit one request,
wait for its answer, submit the next — so offered load adapts to what
the server can absorb, and throughput comparisons across client counts
are meaningful (the classic closed-system benchmark shape).

Determinism: every client's full request sequence is derived up front
from ``seed`` and the client index via its own ``random.Random``, so a
rerun with the same seed offers byte-identical workloads regardless of
thread interleaving. Only timing (and therefore shedding under a tiny
queue) can differ between runs.
"""

from __future__ import annotations

import random
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ServerBusy, ServingError


@dataclass(frozen=True)
class PlannedRequest:
    """One pre-generated request of a client's deterministic script."""

    database: str
    query: Any
    level: int
    size: int


@dataclass
class ClientReport:
    """What one closed-loop client observed."""

    session: str
    requests: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    #: Per-completed-request wall latencies, seconds, in issue order.
    latencies: list[float] = field(default_factory=list)
    #: Answer sizes (originals + augmented) per completed request.
    answer_sizes: list[int] = field(default_factory=list)


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    requests_per_client: int
    seed: int
    wall_s: float = 0.0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    qps: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    per_client: list[ClientReport] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over already-sorted samples."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


class LoadGenerator:
    """Closed-loop client fleet over one server, seeded end to end."""

    def __init__(
        self,
        server,
        workload,
        databases: Sequence[str] | None = None,
        sizes: Sequence[int] = (16,),
        levels: Sequence[int] = (1,),
        seed: int = 0,
        deadline: float | None = None,
        hot_queries: int = 0,
        hot_fraction: float = 0.0,
        priority: str = "interactive",
        zipf_s: float = 0.0,
        zipf_variants: int = 16,
    ) -> None:
        self.server = server
        self.workload = workload
        self.databases = (
            list(databases)
            if databases is not None
            else [name for name, _ in workload.bundle.databases]
        )
        if not self.databases:
            raise ValueError("load generator needs at least one database")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if zipf_s < 0.0:
            raise ValueError("zipf_s must be >= 0")
        if zipf_variants < 1:
            raise ValueError("zipf_variants must be >= 1")
        self.sizes = list(sizes)
        self.levels = list(levels)
        self.seed = seed
        self.deadline = deadline
        #: Size of the shared hot-query pool and the probability that a
        #: planned request is drawn from it instead of being private to
        #: its client. A hot pool makes concurrent clients issue the
        #: *same* queries — the workload shape single-flight coalescing
        #: exists for. Zero (the default) keeps the legacy all-private
        #: scripts byte-identical.
        self.hot_queries = hot_queries
        self.hot_fraction = hot_fraction
        self.priority = priority
        #: Seeded Zipfian key skew: with ``zipf_s > 0`` the query
        #: *variant* (which shifts the key window, and therefore the
        #: shards the query lands on) is drawn from a Zipf(s)
        #: distribution over ``zipf_variants`` ranks instead of the
        #: legacy uniform draw over 4. Rank 0 is the hottest window, so
        #: a sharded deployment sees genuinely imbalanced partitions
        #: rather than uniform load. Zero (the default) keeps legacy
        #: scripts byte-identical.
        self.zipf_s = zipf_s
        self.zipf_variants = zipf_variants
        if zipf_s > 0.0:
            cumulative: list[float] = []
            total = 0.0
            for rank in range(1, zipf_variants + 1):
                total += 1.0 / (rank ** zipf_s)
                cumulative.append(total)
            self._zipf_cdf: list[float] | None = cumulative
        else:
            self._zipf_cdf = None
        self._hot_pool: list[PlannedRequest] | None = None

    def _planned(self, rng: random.Random) -> PlannedRequest:
        database = rng.choice(self.databases)
        size = rng.choice(self.sizes)
        level = rng.choice(self.levels)
        if self._zipf_cdf is not None:
            point = rng.random() * self._zipf_cdf[-1]
            variant = min(
                bisect_left(self._zipf_cdf, point), self.zipf_variants - 1
            )
        else:
            variant = rng.randrange(4)
        query = self.workload.query(database, size, variant=variant)
        return PlannedRequest(database, query.query, level, size)

    def hot_pool(self) -> list[PlannedRequest]:
        """The seeded hot-query pool, shared by every client."""
        if self._hot_pool is None:
            rng = random.Random(f"{self.seed}:loadgen:hot")
            self._hot_pool = [
                self._planned(rng) for _ in range(self.hot_queries)
            ]
        return self._hot_pool

    def plan_for_client(
        self, client_index: int, requests: int
    ) -> list[PlannedRequest]:
        """The deterministic request script of one client."""
        rng = random.Random(f"{self.seed}:loadgen:{client_index}")
        pool = self.hot_pool()
        script: list[PlannedRequest] = []
        for _ in range(requests):
            if pool and rng.random() < self.hot_fraction:
                script.append(pool[rng.randrange(len(pool))])
            else:
                script.append(self._planned(rng))
        return script

    def run(
        self,
        clients: int,
        requests_per_client: int,
        session_prefix: str = "client",
    ) -> LoadReport:
        """Run the fleet to completion and aggregate what it saw."""
        if clients < 1:
            raise ValueError("clients must be >= 1")
        scripts = [
            self.plan_for_client(i, requests_per_client)
            for i in range(clients)
        ]
        reports = [
            ClientReport(session=f"{session_prefix}-{i}")
            for i in range(clients)
        ]
        barrier = threading.Barrier(clients + 1)

        def client_loop(index: int) -> None:
            report = reports[index]
            barrier.wait()
            for planned in scripts[index]:
                report.requests += 1
                issued = time.monotonic()
                try:
                    answer = self.server.search(
                        report.session,
                        planned.database,
                        planned.query,
                        level=planned.level,
                        deadline=self.deadline,
                        priority=self.priority,
                    )
                except ServerBusy:
                    report.shed += 1
                    continue
                except ServingError:
                    # Deadline expired in queue: shed by the server.
                    report.shed += 1
                    continue
                except Exception:
                    report.failed += 1
                    continue
                report.completed += 1
                report.latencies.append(time.monotonic() - issued)
                report.answer_sizes.append(
                    len(answer.originals) + len(answer.augmented)
                )

        threads = [
            threading.Thread(
                target=client_loop, args=(i,), name=f"loadgen-{i}"
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()  # release all clients at once
        started = time.monotonic()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - started

        aggregate = LoadReport(
            clients=clients,
            requests_per_client=requests_per_client,
            seed=self.seed,
            wall_s=wall,
            per_client=reports,
        )
        latencies: list[float] = []
        for report in reports:
            aggregate.completed += report.completed
            aggregate.shed += report.shed
            aggregate.failed += report.failed
            latencies.extend(report.latencies)
        latencies.sort()
        aggregate.qps = aggregate.completed / wall if wall > 0 else 0.0
        aggregate.latency_p50 = _percentile(latencies, 0.50)
        aggregate.latency_p95 = _percentile(latencies, 0.95)
        aggregate.latency_p99 = _percentile(latencies, 0.99)
        aggregate.latency_mean = (
            sum(latencies) / len(latencies) if latencies else 0.0
        )
        return aggregate
