"""Multi-session serving: scheduler, server front end, load generator.

The serving layer lets many concurrent sessions share one
:class:`~repro.core.system.Quepa` instance safely::

    from repro.serving import QuepaServer, ServingConfig

    with QuepaServer(quepa, ServingConfig(workers=8)) as server:
        answer = server.search("alice", "mysql", "SELECT ...", level=1)

See docs/SERVING.md for the scheduler design, the admission and
backpressure knobs, the metrics it publishes and the load generator.
"""

from repro.serving.accel import StoreCallAccelerator
from repro.serving.coalesce import SingleFlight
from repro.serving.hedge import HedgePolicy
from repro.serving.loadgen import (
    ClientReport,
    LoadGenerator,
    LoadReport,
    PlannedRequest,
)
from repro.serving.server import (
    QuepaServer,
    Request,
    Scheduler,
    ServingConfig,
    Ticket,
)

__all__ = [
    "ClientReport",
    "HedgePolicy",
    "LoadGenerator",
    "LoadReport",
    "PlannedRequest",
    "QuepaServer",
    "Request",
    "Scheduler",
    "ServingConfig",
    "SingleFlight",
    "StoreCallAccelerator",
    "Ticket",
]
