"""The store-call accelerator: coalescing + hedging behind one handle.

One :class:`StoreCallAccelerator` is attached to a
:class:`~repro.network.executor.RealRuntime` by the scheduler
(``runtime.accelerator``); connectors route every ``multi_get`` through
:meth:`fetch_many` when it is present. Composition order matters:

    coalesce( hedge( physical call ) )

The coalescer decides whether a physical call happens at all (followers
share the leader's flight); the hedger decides how the *one* physical
call is raced against its backup. Virtual runtimes never get an
accelerator — the fig09 virtual-time numbers stay bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.serving.coalesce import SingleFlight
from repro.serving.hedge import HedgePolicy


class StoreCallAccelerator:
    """Runtime attachment combining single-flight coalescing + hedging."""

    def __init__(
        self,
        runtime,
        resilience=None,
        coalesce: bool = True,
        hedge: bool = False,
        hedge_quantile: float = 0.95,
        hedge_min_observations: int = 25,
        hedge_min_delay: float = 0.0005,
    ) -> None:
        self.coalescer = (
            SingleFlight(metrics=runtime.obs.metrics) if coalesce else None
        )
        self.closed = False
        self.hedger = (
            HedgePolicy(
                runtime,
                resilience=resilience,
                quantile=hedge_quantile,
                min_observations=hedge_min_observations,
                min_delay=hedge_min_delay,
            )
            if hedge
            else None
        )

    def fetch_many(
        self,
        ctx,
        database: str,
        keys: Iterable,
        issue: Callable[[Any], Iterable],
    ) -> list:
        """One accelerated fetch; ``issue(ctx)`` is the physical call."""
        hedger = self.hedger
        if hedger is not None:
            physical = lambda c: hedger.call(c, database, issue)  # noqa: E731
        else:
            physical = issue
        if self.coalescer is not None:
            return self.coalescer.fetch(ctx, database, keys, physical)
        return list(physical(ctx))

    def stats(self) -> dict[str, Any]:
        return {
            "coalesce": (
                self.coalescer.stats() if self.coalescer else None
            ),
            "hedge": self.hedger.stats() if self.hedger else None,
        }

    def close(self) -> None:
        self.closed = True
        if self.hedger is not None:
            self.hedger.close()
