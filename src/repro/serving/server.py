"""A multi-session serving front end for one shared Quepa instance.

The paper's evaluation drives QUEPA one query at a time; the roadmap's
north star is a system that serves heavy traffic from many concurrent
users. Polystore middlewares (BigDAWG's query endpoint, for instance)
put a scheduler between clients and the stores — this module is that
layer for the reproduction:

* **Bounded admission queue with load shedding** — at most
  ``queue_capacity`` requests wait; past that, :meth:`Scheduler.submit`
  raises :class:`~repro.errors.ServerBusy` (backpressure, the server
  itself stays healthy).
* **Per-session fair scheduling** — sessions get round-robin turns and
  FIFO order within a session, with a per-session in-flight cap so one
  chatty client cannot monopolize the worker pool.
* **Snapshot-isolated A' reads** — each request plans over the one
  :class:`~repro.core.compressed.FrozenAIndex` snapshot pinned when it
  starts (see :meth:`Quepa.serve_search`), so concurrent p-relation
  writers never tear a traversal.
* **Priority classes** — every request carries a priority class
  (``interactive`` by default); classes share the workers by weighted
  round-robin (default 3:1 interactive:batch), with per-session
  fairness *within* each class. Workers sleep on real condition
  signaling — a submission, completion or stop wakes them precisely,
  with no polling.
* **Per-request deadlines** — a wall-clock deadline sheds requests
  that expire while queued and is translated into the remaining
  :attr:`AugmentationConfig.timeout_budget` for execution. Deadlines
  that cannot possibly be met (already expired, or under
  ``admission_deadline_floor`` while every worker is busy) are shed at
  admission, before consuming a queue slot.
* **Store-call acceleration** — on a :class:`RealRuntime` the
  scheduler attaches a :class:`~repro.serving.accel.StoreCallAccelerator`
  (single-flight coalescing of identical concurrent fetches, optional
  hedged backup calls after the learned p95 delay) for the server's
  lifetime. Virtual runtimes are never accelerated, keeping the
  deterministic benchmark figures bit-identical.

Everything is observable: an in-flight gauge, queue depth, admission
counters, per-session QPS and latency histograms (feeding the existing
p50/p95/p99 stats path), and ``request_admitted``/``request_shed``
events in the journal. See docs/SERVING.md.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any

from repro.core.augmentation import AugmentationConfig
from repro.core.system import Quepa
from repro.errors import (
    RequestDeadlineExceeded,
    ServerBusy,
    clone_exception,
)
from repro.model.objects import GlobalKey
from repro.network.executor import RealRuntime
from repro.obs import (
    FlightRecorder,
    RequestDigest,
    SloConfig,
    SloMonitor,
    TraceIdAllocator,
    latency_breakdown,
)
from repro.serving.accel import StoreCallAccelerator


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (documented in docs/SERVING.md)."""

    #: Worker threads executing requests against the shared Quepa.
    workers: int = 4
    #: Requests that may wait for a worker; past this, submissions are
    #: shed with :class:`ServerBusy`.
    queue_capacity: int = 64
    #: Per-session concurrent executions (fairness cap).
    max_inflight_per_session: int = 2
    #: Default wall-clock deadline in seconds for requests that do not
    #: carry their own (``None`` = no deadline).
    default_deadline: float | None = None
    #: Priority classes and their weighted-round-robin shares. Workers
    #: take ``weight`` turns from a class before moving to the next;
    #: within a class, sessions round-robin as before. ``interactive``
    #: must be present — it is the default class of every request.
    priority_weights: tuple[tuple[str, int], ...] = (
        ("interactive", 3),
        ("batch", 1),
    )
    #: Deadlines at or below this (seconds) are shed at admission when
    #: every worker is already busy: the request could never be picked
    #: up in time, so it should not consume a queue slot first.
    admission_deadline_floor: float = 0.001
    #: Coalesce identical concurrent store fetches (single-flight).
    #: Real-runtime servers only; a no-op under virtual time.
    coalesce: bool = True
    #: Hedge slow store calls with a backup after the learned delay.
    hedge: bool = False
    #: Quantile of ``store_call_seconds`` the hedge delay is read from.
    hedge_quantile: float = 0.95
    #: Latency samples a store needs before hedging arms for it.
    hedge_min_observations: int = 25
    #: Floor on the hedge delay, seconds (avoids hedging every call
    #: when a store is uniformly fast).
    hedge_min_delay: float = 0.0005
    #: Keep a bounded flight recorder of shed/failed/degraded/slow
    #: requests (tail-based retention; see repro.obs.requests).
    flight_recorder: bool = True
    #: Digests the recorder retains before evicting the oldest.
    recorder_capacity: int = 256
    #: Absolute slow threshold, seconds; ``None`` = adaptive (rolling
    #: p95 of completed latencies once enough samples exist).
    recorder_slow_threshold: float | None = None
    #: Availability SLO: completed / finished must stay at or above.
    slo_availability_objective: float = 0.99
    #: Latency SLO: this fraction of completed requests at or under
    #: ``slo_latency_threshold`` seconds.
    slo_latency_threshold: float = 1.0
    slo_latency_objective: float = 0.95

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_inflight_per_session < 1:
            raise ValueError("max_inflight_per_session must be >= 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be > 0")
        if not self.priority_weights:
            raise ValueError("priority_weights must not be empty")
        seen: set[str] = set()
        for name, weight in self.priority_weights:
            if not name or not isinstance(name, str):
                raise ValueError("priority class names must be strings")
            if name in seen:
                raise ValueError(f"duplicate priority class {name!r}")
            seen.add(name)
            if weight < 1:
                raise ValueError("priority weights must be >= 1")
        if "interactive" not in seen:
            raise ValueError(
                "priority_weights must include 'interactive' "
                "(the default class of every request)"
            )
        if self.admission_deadline_floor < 0:
            raise ValueError("admission_deadline_floor must be >= 0")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_min_observations < 1:
            raise ValueError("hedge_min_observations must be >= 1")
        if self.hedge_min_delay < 0:
            raise ValueError("hedge_min_delay must be >= 0")
        if self.recorder_capacity < 1:
            raise ValueError("recorder_capacity must be >= 1")
        if (
            self.recorder_slow_threshold is not None
            and self.recorder_slow_threshold <= 0
        ):
            raise ValueError("recorder_slow_threshold must be > 0")
        for name in ("slo_availability_objective", "slo_latency_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1)")
        if self.slo_latency_threshold <= 0:
            raise ValueError("slo_latency_threshold must be > 0")

    @property
    def priority_classes(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.priority_weights)


class Request:
    """One queued unit of work: an augmented search or exploration step."""

    __slots__ = (
        "id", "session", "kind", "database", "query", "level", "config",
        "augment", "key", "deadline", "priority", "submitted_at",
        "started_at", "finished_at", "status", "answer", "error", "done",
        "trace_id", "root_span", "breakdown",
    )

    def __init__(
        self,
        request_id: int,
        session: str,
        kind: str,
        *,
        database: str | None = None,
        query: Any = None,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        key: GlobalKey | None = None,
        deadline: float | None = None,
        priority: str = "interactive",
    ) -> None:
        self.id = request_id
        self.session = session
        self.kind = kind
        self.database = database
        self.query = query
        self.level = level
        self.config = config
        self.augment = augment
        self.key = key
        self.deadline = deadline
        self.priority = priority
        self.submitted_at = 0.0
        self.started_at = 0.0
        self.finished_at = 0.0
        self.status = "queued"
        self.answer: Any = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        #: Assigned at submission; rides every span the request records.
        self.trace_id: str | None = None
        self.root_span: Any = None
        self.breakdown: dict[str, Any] = {}


class Ticket:
    """A client's handle on a submitted request."""

    def __init__(self, request: Request) -> None:
        self._request = request

    @property
    def id(self) -> int:
        return self._request.id

    @property
    def session(self) -> str:
        return self._request.session

    @property
    def trace_id(self) -> str | None:
        return self._request.trace_id

    def done(self) -> bool:
        return self._request.done.is_set()

    @property
    def status(self) -> str:
        return self._request.status

    def result(self, timeout: float | None = None) -> Any:
        """Block until the request finishes; return or raise its outcome.

        Failures re-raise a *clone* of the stored exception, chained to
        the original (``raise ... from``): re-raising the stored object
        itself would mutate its ``__traceback__`` in place, so a second
        ``result()`` call — or two clients sharing a ticket — would see
        stale, ever-growing tracebacks.
        """
        if not self._request.done.wait(timeout):
            raise TimeoutError(
                f"request {self._request.id} still "
                f"{self._request.status} after {timeout}s"
            )
        error = self._request.error
        if error is not None:
            raise clone_exception(error) from error
        return self._request.answer


class Scheduler:
    """Fair, bounded scheduling of requests onto a shared Quepa."""

    def __init__(
        self, quepa: Quepa, config: ServingConfig | None = None
    ) -> None:
        self.quepa = quepa
        self.config = config or ServingConfig()
        self.obs = quepa.obs
        self._cond = threading.Condition()
        #: priority class -> session -> FIFO of queued requests, plus a
        #: per-class round-robin order over sessions with queued work (a
        #: session appears at most once per class; capped sessions stay
        #: in rotation). Workers sweep the classes by weighted
        #: round-robin (see ``_rotation``).
        self._queues: dict[str, dict[str, deque[Request]]] = {
            name: {} for name in self.config.priority_classes
        }
        self._orders: dict[str, deque[str]] = {
            name: deque() for name in self.config.priority_classes
        }
        #: The weighted class rotation: each class appears ``weight``
        #: times, so a full sweep grants turns in the configured ratio.
        self._rotation: deque[str] = deque()
        for name, weight in self.config.priority_weights:
            self._rotation.extend([name] * weight)
        #: Optional :class:`repro.cdc.materialize.MaterializedAugmentations`
        #: tier, consulted before planning (see :meth:`_run`). Attached
        #: by the operator that owns the CDC hub; ``None`` = disabled.
        self.materialized: Any = None
        self._queued = 0
        self._inflight = 0
        self._inflight_by_session: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._draining = False
        self._started_at = 0.0
        self._accelerator: StoreCallAccelerator | None = None
        # Reconciliation counters (also mirrored as obs metrics):
        # submitted == admitted + shed_queue_full +
        # shed_deadline_admission, and at quiescence
        # admitted == completed + failed + shed_deadline + shed_stopped.
        self._submitted = 0
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_deadline = 0
        self._shed_deadline_admission = 0
        self._shed_stopped = 0
        self._completed = 0
        self._failed = 0
        self._by_session: dict[str, dict[str, int]] = {}
        self._trace_ids = TraceIdAllocator()
        #: Always-on bounded record of the requests worth keeping
        #: (tail-based retention); ``None`` when disabled for overhead
        #: comparisons.
        self.recorder: FlightRecorder | None = (
            FlightRecorder(
                capacity=self.config.recorder_capacity,
                slow_threshold=self.config.recorder_slow_threshold,
            )
            if self.config.flight_recorder
            else None
        )
        self.slo = SloMonitor(
            self.obs,
            SloConfig(
                availability_objective=(
                    self.config.slo_availability_objective
                ),
                latency_threshold=self.config.slo_latency_threshold,
                latency_objective=self.config.slo_latency_objective,
            ),
        )
        metrics = self.obs.metrics
        self._inflight_gauge = metrics.gauge("serving_inflight")
        self._depth_gauge = metrics.gauge("serving_queue_depth")
        self._latency_hist = metrics.histogram("serving_latency_seconds")
        self._wait_hist = metrics.histogram("serving_queue_wait_seconds")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._running:
                return
            self._running = True
            self._draining = False
            self._started_at = time.monotonic()
            self._attach_accelerator()
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"quepa-serve-{i}",
                    daemon=True,
                )
                for i in range(self.config.workers)
            ]
        for thread in self._threads:
            thread.start()

    def _attach_accelerator(self) -> None:
        """Arm coalescing/hedging on the runtime for this server's life.

        Real runtimes only: virtual time must stay deterministic, and a
        virtual context cannot share flights across threads anyway.
        """
        config = self.config
        if not (config.coalesce or config.hedge):
            return
        if not isinstance(self.quepa.runtime, RealRuntime):
            return
        if self._accelerator is None or self._accelerator.closed:
            self._accelerator = StoreCallAccelerator(
                self.quepa.runtime,
                resilience=self.quepa.resilience,
                coalesce=config.coalesce,
                hedge=config.hedge,
                hedge_quantile=config.hedge_quantile,
                hedge_min_observations=config.hedge_min_observations,
                hedge_min_delay=config.hedge_min_delay,
            )
        self.quepa.runtime.accelerator = self._accelerator

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the workers; with ``drain`` finish queued work first."""
        now = time.monotonic()
        with self._cond:
            if not self._running:
                return
            self._draining = drain
            self._running = False
            if not drain:
                # Shed whatever is still queued so no client blocks on
                # a request that will never run. These are a distinct
                # shed class — ``stopped`` — metered exactly like other
                # sheds (prometheus counter + journal event) so the
                # exported totals reconcile with ``status()``.
                for queues in self._queues.values():
                    for queue in queues.values():
                        while queue:
                            request = queue.popleft()
                            self._queued -= 1
                            request.status = "shed"
                            request.error = ServerBusy(
                                "server stopped before the request ran"
                            )
                            self._shed_stopped += 1
                            self._session_stats(request.session)[
                                "shed_stopped"
                            ] += 1
                            self.obs.metrics.counter(
                                "serving_requests_total", outcome="shed"
                            ).inc()
                            self._emit_shed(request, "stopped", now)
                            self._observe_shed(
                                request, "stopped", now, request.error
                            )
                            request.done.set()
                for order in self._orders.values():
                    order.clear()
                self._depth_gauge.set(self._queued)
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        if self._accelerator is not None:
            # Detach (new fetches take the plain path) but keep the
            # object: its stats stay readable through status().
            if self.quepa.runtime.accelerator is self._accelerator:
                self.quepa.runtime.accelerator = None
            self._accelerator.close()

    # -- submission ----------------------------------------------------------

    def submit(self, request: Request) -> Ticket:
        """Admit (or shed) one request; never blocks on execution.

        Sheds happen here in two ways: a full queue raises
        :class:`ServerBusy`, and a deadline that cannot possibly be met
        (already expired, or at/under ``admission_deadline_floor`` with
        every worker busy) raises :class:`RequestDeadlineExceeded`
        *before* the request consumes a queue slot and a worker pickup.
        """
        now = time.monotonic()
        request.submitted_at = now
        if request.trace_id is None:
            request.trace_id = self._trace_ids.next_id()
        if request.deadline is None:
            request.deadline = self.config.default_deadline
        if request.priority not in self._queues:
            raise ValueError(
                f"unknown priority class {request.priority!r} "
                f"(configured: {self.config.priority_classes})"
            )
        with self._cond:
            if not self._running:
                raise ServerBusy("server is not running")
            self._submitted += 1
            stats = self._session_stats(request.session)
            stats["submitted"] += 1
            if self._queued >= self.config.queue_capacity:
                self._shed_queue_full += 1
                stats["shed_queue_full"] += 1
                self._emit_shed(request, "queue_full", now)
                error = ServerBusy(
                    f"admission queue full "
                    f"({self.config.queue_capacity} queued)"
                )
                self._observe_shed(request, "queue_full", now, error)
                raise error
            if self._hopeless_deadline_locked(request.deadline):
                self._shed_deadline_admission += 1
                stats["shed_deadline_admission"] += 1
                request.status = "shed"
                request.error = RequestDeadlineExceeded(
                    f"deadline of {request.deadline:.6f}s cannot be met "
                    f"(all {self.config.workers} workers busy)"
                )
                request.done.set()
                self._emit_shed(request, "deadline_at_admission", now)
                self._observe_shed(
                    request, "deadline_at_admission", now, request.error
                )
                raise request.error
            self._admitted += 1
            stats["admitted"] += 1
            # The request's root span: open for its whole queued+running
            # life, on the scheduler's wall clock (the same timebase
            # RealRuntime contexts stamp their spans with).
            request.root_span = self.obs.tracer.begin(
                "request",
                now,
                None,
                request.trace_id,
                request_id=request.id,
                session=request.session,
                kind=request.kind,
                priority=request.priority,
            )
            queue = self._queues[request.priority].setdefault(
                request.session, deque()
            )
            queue.append(request)
            self._queued += 1
            order = self._orders[request.priority]
            if len(queue) == 1 and request.session not in order:
                order.append(request.session)
            self._depth_gauge.set(self._queued)
            self.obs.metrics.counter(
                "serving_requests_total", outcome="admitted"
            ).inc()
            self.obs.events.emit(
                "request_admitted",
                severity="debug",
                ts=now - self._started_at,
                session=request.session,
                request_id=request.id,
                trace_id=request.trace_id,
                queue_depth=self._queued,
            )
            self._cond.notify()
        return Ticket(request)

    def _hopeless_deadline_locked(self, deadline: float | None) -> bool:
        """Can this deadline not possibly be met? (Shed at admission.)

        True when the deadline is already spent, or is at/under the
        admission floor while every worker is busy — the request would
        sit in the queue at least until a completion, by which point it
        is guaranteed dead. Deadlines above the floor are admitted and
        handled by the pickup-time check (they may still be met).
        """
        if deadline is None:
            return False
        if deadline <= 0:
            return True
        return (
            deadline <= self.config.admission_deadline_floor
            and self._inflight >= self.config.workers
        )

    def next_id(self) -> int:
        return next(self._ids)

    # -- the worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self._next_request()
            if request is None:
                return
            self._execute(request)

    def _next_request(self) -> Request | None:
        with self._cond:
            while True:
                request = self._pick_locked()
                if request is not None:
                    return request
                if not self._running and (
                    not self._draining or self._queued == 0
                ):
                    return None
                # Precise wakeup: a submit, a completion (which may
                # uncap a session) or stop() notifies; until then this
                # worker sleeps — no polling interval to tune.
                self._cond.wait()

    def _pick_locked(self) -> Request | None:
        """Weighted round-robin over classes, session RR within one.

        A full sweep of the rotation visits each class ``weight``
        times; empty classes cost one deque lookup each, so a sweep
        with any runnable request always finds one.
        """
        for _ in range(len(self._rotation)):
            name = self._rotation[0]
            self._rotation.rotate(-1)
            request = self._pick_class_locked(name)
            if request is not None:
                return request
        return None

    def _pick_class_locked(self, priority: str) -> Request | None:
        """Round-robin over one class's sessions; FIFO within each."""
        cap = self.config.max_inflight_per_session
        order = self._orders[priority]
        queues = self._queues[priority]
        for _ in range(len(order)):
            session = order.popleft()
            queue = queues.get(session)
            if not queue:
                continue  # stale rotation entry
            if self._inflight_by_session.get(session, 0) >= cap:
                order.append(session)  # capped: keep its turn
                continue
            request = queue.popleft()
            self._queued -= 1
            if queue:
                order.append(session)
            self._inflight_by_session[session] = (
                self._inflight_by_session.get(session, 0) + 1
            )
            self._inflight += 1
            self._depth_gauge.set(self._queued)
            self._inflight_gauge.set(self._inflight)
            return request
        return None

    def _execute(self, request: Request) -> None:
        request.started_at = time.monotonic()
        waited = request.started_at - request.submitted_at
        self._wait_hist.observe(waited)
        expired = (
            request.deadline is not None and waited >= request.deadline
        )
        if expired:
            request.status = "shed"
            request.error = RequestDeadlineExceeded(
                f"deadline of {request.deadline:.3f}s expired after "
                f"{waited:.3f}s in queue"
            )
        else:
            request.status = "running"
            try:
                request.answer = self._run(request, waited)
                request.status = "completed"
            except BaseException as exc:  # report, never kill a worker
                request.error = exc
                request.status = "failed"
        request.finished_at = time.monotonic()
        latency = request.finished_at - request.submitted_at
        session = request.session
        with self._cond:
            self._inflight -= 1
            remaining = self._inflight_by_session.get(session, 1) - 1
            if remaining > 0:
                self._inflight_by_session[session] = remaining
            else:
                self._inflight_by_session.pop(session, None)
            stats = self._session_stats(session)
            if request.status == "completed":
                self._completed += 1
                stats["completed"] += 1
            elif request.status == "shed":
                self._shed_deadline += 1
                stats["shed_deadline"] += 1
            else:
                self._failed += 1
                stats["failed"] += 1
            self._inflight_gauge.set(self._inflight)
            self._cond.notify_all()
        metrics = self.obs.metrics
        metrics.counter(
            "serving_requests_total", outcome=request.status
        ).inc()
        metrics.counter(
            "serving_session_requests_total", session=session
        ).inc()
        if request.status == "completed":
            self._latency_hist.observe(latency)
            metrics.histogram(
                "serving_session_latency_seconds", session=session
            ).observe(latency)
        elif request.status == "shed":
            self._emit_shed(request, "deadline", request.finished_at)
        self._finish_trace(request, waited, latency)
        request.done.set()

    def _run(self, request: Request, waited: float) -> Any:
        config = self._effective_config(request, waited)
        parent = (
            request.root_span.span_id
            if request.root_span is not None
            else None
        )
        if request.kind == "augment":
            # The effective config (deadline folded into the timeout
            # budget) applies to exploration steps exactly as it does
            # to searches — dropping it here silently ignored per-
            # request deadlines on the augment path.
            return self.quepa.serve_augment_object(
                request.key,
                level=request.level,
                config=config,
                trace_id=request.trace_id,
                parent_span=parent,
            )
        # The materialized tier only serves vanilla searches: a custom
        # config or a deadline changes what the planner would produce,
        # so those requests always plan. CDC invalidation keeps entries
        # no staler than the hub's unapplied lag.
        use_materialized = (
            self.materialized is not None
            and request.config is None
            and request.deadline is None
        )
        if use_materialized:
            hit = self.materialized.lookup(
                request.database,
                request.query,
                request.level,
                request.augment,
            )
            if hit is not None:
                return hit
        answer = self.quepa.serve_search(
            request.database,
            request.query,
            level=request.level,
            config=config,
            augment=request.augment,
            trace_id=request.trace_id,
            parent_span=parent,
        )
        if use_materialized:
            self.materialized.observe(
                request.database,
                request.query,
                request.level,
                request.augment,
                answer,
            )
        return answer

    def _effective_config(
        self, request: Request, waited: float
    ) -> AugmentationConfig | None:
        """Fold the remaining deadline into the timeout budget.

        Under :class:`RealRuntime` the execution clock is the wall
        clock, so the budget is the wall time the request has left;
        under virtual runtimes the deadline is interpreted directly as
        a virtual-time budget (queue wait is wall time and does not map
        onto the virtual clock). A request with no deadline keeps its
        config untouched — including ``None``, which preserves the
        optimizer's right to choose.
        """
        if request.deadline is None:
            return request.config
        if isinstance(self.quepa.runtime, RealRuntime):
            budget = max(request.deadline - waited, 1e-9)
        else:
            budget = request.deadline
        base = request.config or self.quepa.config
        if base.timeout_budget is not None:
            budget = min(base.timeout_budget, budget)
        return replace(base, timeout_budget=budget)

    # -- bookkeeping ---------------------------------------------------------

    def _session_stats(self, session: str) -> dict[str, int]:
        stats = self._by_session.get(session)
        if stats is None:
            stats = {
                "submitted": 0,
                "admitted": 0,
                "completed": 0,
                "failed": 0,
                "shed_queue_full": 0,
                "shed_deadline": 0,
                "shed_deadline_admission": 0,
                "shed_stopped": 0,
            }
            self._by_session[session] = stats
        return stats

    def _finish_trace(
        self, request: Request, waited: float, latency: float
    ) -> None:
        """Close the root span and feed the flight recorder.

        Runs after the scheduler's own accounting — purely
        observational, so a recorder left detached skips everything but
        the span close.
        """
        span = request.root_span
        if span is not None:
            span.attrs.update(status=request.status, queue_wait_s=waited)
            self.obs.tracer.end(span, request.finished_at)
            request.root_span = None
        if self.recorder is None:
            return
        if request.trace_id is not None:
            request.breakdown = latency_breakdown(
                self.obs.tracer.spans_for(request.trace_id)
            )
        degraded = bool(
            getattr(getattr(request.answer, "stats", None), "degraded", False)
        )
        self.recorder.observe(
            RequestDigest(
                trace_id=request.trace_id or "",
                request_id=request.id,
                session=request.session,
                kind=request.kind,
                priority=request.priority,
                status=request.status,
                shed_reason=(
                    "deadline" if request.status == "shed" else None
                ),
                degraded=degraded,
                queue_wait_s=waited,
                latency_s=latency,
                error=(
                    str(request.error)
                    if request.error is not None
                    else None
                ),
                breakdown=request.breakdown,
            )
        )

    def _observe_shed(
        self,
        request: Request,
        reason: str,
        now: float,
        error: BaseException | None,
    ) -> None:
        """One digest for a request shed outside the execution path."""
        span = request.root_span
        if span is not None:
            span.attrs.update(status="shed", shed_reason=reason)
            self.obs.tracer.end(span, now)
            request.root_span = None
        if self.recorder is None:
            return
        waited = max(now - request.submitted_at, 0.0)
        self.recorder.observe(
            RequestDigest(
                trace_id=request.trace_id or "",
                request_id=request.id,
                session=request.session,
                kind=request.kind,
                priority=request.priority,
                status="shed",
                shed_reason=reason,
                queue_wait_s=waited,
                latency_s=waited,
                error=str(error) if error is not None else None,
            )
        )

    def _emit_shed(self, request: Request, reason: str, now: float) -> None:
        self.obs.metrics.counter(
            "serving_shed_total", reason=reason
        ).inc()
        self.obs.events.emit(
            "request_shed",
            severity="warning",
            ts=max(now - self._started_at, 0.0),
            session=request.session,
            request_id=request.id,
            trace_id=request.trace_id,
            reason=reason,
        )

    def status(self) -> dict[str, Any]:
        """Queue/worker/session state, JSON-ready, totals reconciled."""
        with self._cond:
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at
                else 0.0
            )
            totals = {
                "submitted": self._submitted,
                "admitted": self._admitted,
                "shed": {
                    "queue_full": self._shed_queue_full,
                    "deadline": self._shed_deadline,
                    "deadline_at_admission": (
                        self._shed_deadline_admission
                    ),
                    "stopped": self._shed_stopped,
                },
                "completed": self._completed,
                "failed": self._failed,
            }
            sessions = {
                name: dict(stats)
                for name, stats in sorted(self._by_session.items())
            }
            queued_by_session: dict[str, int] = {}
            for queues in self._queues.values():
                for name, queue in queues.items():
                    if queue:
                        queued_by_session[name] = (
                            queued_by_session.get(name, 0) + len(queue)
                        )
            priorities = {
                name: {
                    "weight": weight,
                    "queued": sum(
                        len(queue)
                        for queue in self._queues[name].values()
                    ),
                }
                for name, weight in self.config.priority_weights
            }
            inflight_by_session = dict(self._inflight_by_session)
            report = {
                "running": self._running,
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "max_inflight_per_session": (
                    self.config.max_inflight_per_session
                ),
                "default_deadline": self.config.default_deadline,
                "uptime_s": uptime,
                "queue_depth": self._queued,
                "inflight": self._inflight,
                "totals": totals,
                "priorities": priorities,
                "accelerator": (
                    self._accelerator.stats()
                    if self._accelerator is not None
                    else None
                ),
                "recorder": (
                    self.recorder.stats()
                    if self.recorder is not None
                    else None
                ),
            }
        report["slo"] = self.slo.report()
        metrics = self.obs.metrics
        latency = metrics.histogram("serving_latency_seconds")
        report["latency_s"] = {
            "p50": latency.percentile(0.50),
            "p95": latency.percentile(0.95),
            "p99": latency.percentile(0.99),
            "mean": latency.mean(),
            "count": latency.count,
        }
        for name, stats in sessions.items():
            stats["queued"] = queued_by_session.get(name, 0)
            stats["inflight"] = inflight_by_session.get(name, 0)
            stats["qps"] = (
                stats["completed"] / uptime if uptime > 0 else 0.0
            )
            hist = metrics.histogram(
                "serving_session_latency_seconds", session=name
            )
            stats["latency_s"] = {
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        report["sessions"] = sessions
        return report


class QuepaServer:
    """The serving front end: a scheduler plus a client-facing API.

    One ``QuepaServer`` wraps one shared :class:`Quepa` instance.
    Usable as a context manager::

        with QuepaServer(quepa, ServingConfig(workers=8)) as server:
            answer = server.search("s1", "mysql", "SELECT ...", level=1)
    """

    def __init__(
        self, quepa: Quepa, config: ServingConfig | None = None
    ) -> None:
        self.quepa = quepa
        self.config = config or ServingConfig()
        self.scheduler = Scheduler(quepa, self.config)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QuepaServer":
        self.scheduler.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self.scheduler.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "QuepaServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API ----------------------------------------------------------

    def submit_search(
        self,
        session: str,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        deadline: float | None = None,
        priority: str = "interactive",
    ) -> Ticket:
        """Queue an augmented search; raises :class:`ServerBusy` if shed."""
        request = Request(
            self.scheduler.next_id(),
            session,
            "search",
            database=database,
            query=query,
            level=level,
            config=config,
            augment=augment,
            deadline=deadline,
            priority=priority,
        )
        return self.scheduler.submit(request)

    def search(
        self,
        session: str,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        deadline: float | None = None,
        timeout: float | None = None,
        priority: str = "interactive",
    ) -> Any:
        """Submit and wait: the synchronous client call."""
        ticket = self.submit_search(
            session, database, query,
            level=level, config=config, augment=augment, deadline=deadline,
            priority=priority,
        )
        return ticket.result(timeout)

    def submit_augment(
        self,
        session: str,
        key: GlobalKey,
        level: int = 0,
        config: AugmentationConfig | None = None,
        deadline: float | None = None,
        priority: str = "interactive",
    ) -> Ticket:
        """Queue one exploration step (augment a single object)."""
        request = Request(
            self.scheduler.next_id(),
            session,
            "augment",
            key=key,
            level=level,
            config=config,
            deadline=deadline,
            priority=priority,
        )
        return self.scheduler.submit(request)

    def augment(
        self,
        session: str,
        key: GlobalKey,
        level: int = 0,
        config: AugmentationConfig | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
        priority: str = "interactive",
    ) -> Any:
        ticket = self.submit_augment(
            session, key, level=level, config=config,
            deadline=deadline, priority=priority,
        )
        return ticket.result(timeout)

    def status(self) -> dict[str, Any]:
        return self.scheduler.status()

    def records(self, **filters: Any) -> list[dict[str, Any]]:
        """Flight-recorder digests (empty when the recorder is off)."""
        recorder = self.scheduler.recorder
        return recorder.as_dicts(**filters) if recorder is not None else []

    def slo_report(self) -> dict[str, Any]:
        """The SLO monitor's verdict, with gauges published."""
        return self.scheduler.slo.publish()
