"""A multi-session serving front end for one shared Quepa instance.

The paper's evaluation drives QUEPA one query at a time; the roadmap's
north star is a system that serves heavy traffic from many concurrent
users. Polystore middlewares (BigDAWG's query endpoint, for instance)
put a scheduler between clients and the stores — this module is that
layer for the reproduction:

* **Bounded admission queue with load shedding** — at most
  ``queue_capacity`` requests wait; past that, :meth:`Scheduler.submit`
  raises :class:`~repro.errors.ServerBusy` (backpressure, the server
  itself stays healthy).
* **Per-session fair scheduling** — sessions get round-robin turns and
  FIFO order within a session, with a per-session in-flight cap so one
  chatty client cannot monopolize the worker pool.
* **Snapshot-isolated A' reads** — each request plans over the one
  :class:`~repro.core.compressed.FrozenAIndex` snapshot pinned when it
  starts (see :meth:`Quepa.serve_search`), so concurrent p-relation
  writers never tear a traversal.
* **Per-request deadlines** — a wall-clock deadline sheds requests
  that expire while queued and is translated into the remaining
  :attr:`AugmentationConfig.timeout_budget` for execution.

Everything is observable: an in-flight gauge, queue depth, admission
counters, per-session QPS and latency histograms (feeding the existing
p50/p95/p99 stats path), and ``request_admitted``/``request_shed``
events in the journal. See docs/SERVING.md.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any

from repro.core.augmentation import AugmentationConfig
from repro.core.system import Quepa
from repro.errors import RequestDeadlineExceeded, ServerBusy
from repro.model.objects import GlobalKey
from repro.network.executor import RealRuntime


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (documented in docs/SERVING.md)."""

    #: Worker threads executing requests against the shared Quepa.
    workers: int = 4
    #: Requests that may wait for a worker; past this, submissions are
    #: shed with :class:`ServerBusy`.
    queue_capacity: int = 64
    #: Per-session concurrent executions (fairness cap).
    max_inflight_per_session: int = 2
    #: Default wall-clock deadline in seconds for requests that do not
    #: carry their own (``None`` = no deadline).
    default_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_inflight_per_session < 1:
            raise ValueError("max_inflight_per_session must be >= 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be > 0")


class Request:
    """One queued unit of work: an augmented search or exploration step."""

    __slots__ = (
        "id", "session", "kind", "database", "query", "level", "config",
        "augment", "key", "deadline", "submitted_at", "started_at",
        "finished_at", "status", "answer", "error", "done",
    )

    def __init__(
        self,
        request_id: int,
        session: str,
        kind: str,
        *,
        database: str | None = None,
        query: Any = None,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        key: GlobalKey | None = None,
        deadline: float | None = None,
    ) -> None:
        self.id = request_id
        self.session = session
        self.kind = kind
        self.database = database
        self.query = query
        self.level = level
        self.config = config
        self.augment = augment
        self.key = key
        self.deadline = deadline
        self.submitted_at = 0.0
        self.started_at = 0.0
        self.finished_at = 0.0
        self.status = "queued"
        self.answer: Any = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class Ticket:
    """A client's handle on a submitted request."""

    def __init__(self, request: Request) -> None:
        self._request = request

    @property
    def id(self) -> int:
        return self._request.id

    @property
    def session(self) -> str:
        return self._request.session

    def done(self) -> bool:
        return self._request.done.is_set()

    @property
    def status(self) -> str:
        return self._request.status

    def result(self, timeout: float | None = None) -> Any:
        """Block until the request finishes; return or raise its outcome."""
        if not self._request.done.wait(timeout):
            raise TimeoutError(
                f"request {self._request.id} still "
                f"{self._request.status} after {timeout}s"
            )
        if self._request.error is not None:
            raise self._request.error
        return self._request.answer


class Scheduler:
    """Fair, bounded scheduling of requests onto a shared Quepa."""

    def __init__(
        self, quepa: Quepa, config: ServingConfig | None = None
    ) -> None:
        self.quepa = quepa
        self.config = config or ServingConfig()
        self.obs = quepa.obs
        self._cond = threading.Condition()
        #: session -> FIFO of queued requests.
        self._queues: dict[str, deque[Request]] = {}
        #: Round-robin order over sessions with queued work. A session
        #: appears at most once; capped sessions stay in rotation.
        self._order: deque[str] = deque()
        self._queued = 0
        self._inflight = 0
        self._inflight_by_session: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._draining = False
        self._started_at = 0.0
        # Reconciliation counters (also mirrored as obs metrics):
        # submitted == admitted + shed_queue_full, and at quiescence
        # admitted == completed + failed + shed_deadline.
        self._submitted = 0
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_deadline = 0
        self._completed = 0
        self._failed = 0
        self._by_session: dict[str, dict[str, int]] = {}
        metrics = self.obs.metrics
        self._inflight_gauge = metrics.gauge("serving_inflight")
        self._depth_gauge = metrics.gauge("serving_queue_depth")
        self._latency_hist = metrics.histogram("serving_latency_seconds")
        self._wait_hist = metrics.histogram("serving_queue_wait_seconds")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._running:
                return
            self._running = True
            self._draining = False
            self._started_at = time.monotonic()
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"quepa-serve-{i}",
                    daemon=True,
                )
                for i in range(self.config.workers)
            ]
        for thread in self._threads:
            thread.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the workers; with ``drain`` finish queued work first."""
        with self._cond:
            if not self._running:
                return
            self._draining = drain
            self._running = False
            if not drain:
                # Fail whatever is still queued so no client blocks on
                # a request that will never run.
                for queue in self._queues.values():
                    while queue:
                        request = queue.popleft()
                        self._queued -= 1
                        request.status = "failed"
                        request.error = ServerBusy(
                            "server stopped before the request ran"
                        )
                        self._failed += 1
                        self._session_stats(request.session)["failed"] += 1
                        request.done.set()
                self._order.clear()
                self._depth_gauge.set(self._queued)
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    # -- submission ----------------------------------------------------------

    def submit(self, request: Request) -> Ticket:
        """Admit (or shed) one request; never blocks on execution."""
        now = time.monotonic()
        request.submitted_at = now
        if request.deadline is None:
            request.deadline = self.config.default_deadline
        with self._cond:
            if not self._running:
                raise ServerBusy("server is not running")
            self._submitted += 1
            stats = self._session_stats(request.session)
            stats["submitted"] += 1
            if self._queued >= self.config.queue_capacity:
                self._shed_queue_full += 1
                stats["shed_queue_full"] += 1
                self._emit_shed(request, "queue_full", now)
                raise ServerBusy(
                    f"admission queue full "
                    f"({self.config.queue_capacity} queued)"
                )
            self._admitted += 1
            stats["admitted"] += 1
            queue = self._queues.setdefault(request.session, deque())
            queue.append(request)
            self._queued += 1
            if len(queue) == 1 and request.session not in self._order:
                self._order.append(request.session)
            self._depth_gauge.set(self._queued)
            self.obs.metrics.counter(
                "serving_requests_total", outcome="admitted"
            ).inc()
            self.obs.events.emit(
                "request_admitted",
                severity="debug",
                ts=now - self._started_at,
                session=request.session,
                request_id=request.id,
                queue_depth=self._queued,
            )
            self._cond.notify()
        return Ticket(request)

    def next_id(self) -> int:
        return next(self._ids)

    # -- the worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self._next_request()
            if request is None:
                return
            self._execute(request)

    def _next_request(self) -> Request | None:
        with self._cond:
            while True:
                request = self._pick_locked()
                if request is not None:
                    return request
                if not self._running and (
                    not self._draining or self._queued == 0
                ):
                    return None
                self._cond.wait(0.1)

    def _pick_locked(self) -> Request | None:
        """Round-robin over sessions; FIFO within a session."""
        cap = self.config.max_inflight_per_session
        for _ in range(len(self._order)):
            session = self._order.popleft()
            queue = self._queues.get(session)
            if not queue:
                continue  # stale rotation entry
            if self._inflight_by_session.get(session, 0) >= cap:
                self._order.append(session)  # capped: keep its turn
                continue
            request = queue.popleft()
            self._queued -= 1
            if queue:
                self._order.append(session)
            self._inflight_by_session[session] = (
                self._inflight_by_session.get(session, 0) + 1
            )
            self._inflight += 1
            self._depth_gauge.set(self._queued)
            self._inflight_gauge.set(self._inflight)
            return request
        return None

    def _execute(self, request: Request) -> None:
        request.started_at = time.monotonic()
        waited = request.started_at - request.submitted_at
        self._wait_hist.observe(waited)
        expired = (
            request.deadline is not None and waited >= request.deadline
        )
        if expired:
            request.status = "shed"
            request.error = RequestDeadlineExceeded(
                f"deadline of {request.deadline:.3f}s expired after "
                f"{waited:.3f}s in queue"
            )
        else:
            request.status = "running"
            try:
                request.answer = self._run(request, waited)
                request.status = "completed"
            except BaseException as exc:  # report, never kill a worker
                request.error = exc
                request.status = "failed"
        request.finished_at = time.monotonic()
        latency = request.finished_at - request.submitted_at
        session = request.session
        with self._cond:
            self._inflight -= 1
            remaining = self._inflight_by_session.get(session, 1) - 1
            if remaining > 0:
                self._inflight_by_session[session] = remaining
            else:
                self._inflight_by_session.pop(session, None)
            stats = self._session_stats(session)
            if request.status == "completed":
                self._completed += 1
                stats["completed"] += 1
            elif request.status == "shed":
                self._shed_deadline += 1
                stats["shed_deadline"] += 1
            else:
                self._failed += 1
                stats["failed"] += 1
            self._inflight_gauge.set(self._inflight)
            self._cond.notify_all()
        metrics = self.obs.metrics
        metrics.counter(
            "serving_requests_total", outcome=request.status
        ).inc()
        metrics.counter(
            "serving_session_requests_total", session=session
        ).inc()
        if request.status == "completed":
            self._latency_hist.observe(latency)
            metrics.histogram(
                "serving_session_latency_seconds", session=session
            ).observe(latency)
        elif request.status == "shed":
            self._emit_shed(request, "deadline", request.finished_at)
        request.done.set()

    def _run(self, request: Request, waited: float) -> Any:
        config = self._effective_config(request, waited)
        if request.kind == "augment":
            return self.quepa.serve_augment_object(
                request.key, level=request.level
            )
        return self.quepa.serve_search(
            request.database,
            request.query,
            level=request.level,
            config=config,
            augment=request.augment,
        )

    def _effective_config(
        self, request: Request, waited: float
    ) -> AugmentationConfig | None:
        """Fold the remaining deadline into the timeout budget.

        Under :class:`RealRuntime` the execution clock is the wall
        clock, so the budget is the wall time the request has left;
        under virtual runtimes the deadline is interpreted directly as
        a virtual-time budget (queue wait is wall time and does not map
        onto the virtual clock). A request with no deadline keeps its
        config untouched — including ``None``, which preserves the
        optimizer's right to choose.
        """
        if request.deadline is None:
            return request.config
        if isinstance(self.quepa.runtime, RealRuntime):
            budget = max(request.deadline - waited, 1e-9)
        else:
            budget = request.deadline
        base = request.config or self.quepa.config
        if base.timeout_budget is not None:
            budget = min(base.timeout_budget, budget)
        return replace(base, timeout_budget=budget)

    # -- bookkeeping ---------------------------------------------------------

    def _session_stats(self, session: str) -> dict[str, int]:
        stats = self._by_session.get(session)
        if stats is None:
            stats = {
                "submitted": 0,
                "admitted": 0,
                "completed": 0,
                "failed": 0,
                "shed_queue_full": 0,
                "shed_deadline": 0,
            }
            self._by_session[session] = stats
        return stats

    def _emit_shed(self, request: Request, reason: str, now: float) -> None:
        self.obs.metrics.counter(
            "serving_shed_total", reason=reason
        ).inc()
        self.obs.events.emit(
            "request_shed",
            severity="warning",
            ts=max(now - self._started_at, 0.0),
            session=request.session,
            request_id=request.id,
            reason=reason,
        )

    def status(self) -> dict[str, Any]:
        """Queue/worker/session state, JSON-ready, totals reconciled."""
        with self._cond:
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at
                else 0.0
            )
            totals = {
                "submitted": self._submitted,
                "admitted": self._admitted,
                "shed": {
                    "queue_full": self._shed_queue_full,
                    "deadline": self._shed_deadline,
                },
                "completed": self._completed,
                "failed": self._failed,
            }
            sessions = {
                name: dict(stats)
                for name, stats in sorted(self._by_session.items())
            }
            queued_by_session = {
                name: len(queue)
                for name, queue in self._queues.items()
                if queue
            }
            inflight_by_session = dict(self._inflight_by_session)
            report = {
                "running": self._running,
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "max_inflight_per_session": (
                    self.config.max_inflight_per_session
                ),
                "default_deadline": self.config.default_deadline,
                "uptime_s": uptime,
                "queue_depth": self._queued,
                "inflight": self._inflight,
                "totals": totals,
            }
        metrics = self.obs.metrics
        latency = metrics.histogram("serving_latency_seconds")
        report["latency_s"] = {
            "p50": latency.percentile(0.50),
            "p95": latency.percentile(0.95),
            "p99": latency.percentile(0.99),
            "mean": latency.mean(),
            "count": latency.count,
        }
        for name, stats in sessions.items():
            stats["queued"] = queued_by_session.get(name, 0)
            stats["inflight"] = inflight_by_session.get(name, 0)
            stats["qps"] = (
                stats["completed"] / uptime if uptime > 0 else 0.0
            )
            hist = metrics.histogram(
                "serving_session_latency_seconds", session=name
            )
            stats["latency_s"] = {
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        report["sessions"] = sessions
        return report


class QuepaServer:
    """The serving front end: a scheduler plus a client-facing API.

    One ``QuepaServer`` wraps one shared :class:`Quepa` instance.
    Usable as a context manager::

        with QuepaServer(quepa, ServingConfig(workers=8)) as server:
            answer = server.search("s1", "mysql", "SELECT ...", level=1)
    """

    def __init__(
        self, quepa: Quepa, config: ServingConfig | None = None
    ) -> None:
        self.quepa = quepa
        self.config = config or ServingConfig()
        self.scheduler = Scheduler(quepa, self.config)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QuepaServer":
        self.scheduler.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self.scheduler.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "QuepaServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API ----------------------------------------------------------

    def submit_search(
        self,
        session: str,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        deadline: float | None = None,
    ) -> Ticket:
        """Queue an augmented search; raises :class:`ServerBusy` if shed."""
        request = Request(
            self.scheduler.next_id(),
            session,
            "search",
            database=database,
            query=query,
            level=level,
            config=config,
            augment=augment,
            deadline=deadline,
        )
        return self.scheduler.submit(request)

    def search(
        self,
        session: str,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Submit and wait: the synchronous client call."""
        ticket = self.submit_search(
            session, database, query,
            level=level, config=config, augment=augment, deadline=deadline,
        )
        return ticket.result(timeout)

    def submit_augment(
        self,
        session: str,
        key: GlobalKey,
        level: int = 0,
        deadline: float | None = None,
    ) -> Ticket:
        """Queue one exploration step (augment a single object)."""
        request = Request(
            self.scheduler.next_id(),
            session,
            "augment",
            key=key,
            level=level,
            deadline=deadline,
        )
        return self.scheduler.submit(request)

    def augment(
        self,
        session: str,
        key: GlobalKey,
        level: int = 0,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> Any:
        ticket = self.submit_augment(
            session, key, level=level, deadline=deadline
        )
        return ticket.result(timeout)

    def status(self) -> dict[str, Any]:
        return self.scheduler.status()
