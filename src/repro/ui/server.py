"""A real HTTP server over :class:`~repro.ui.api.QuepaApi` (stdlib only).

The paper's QUEPA "receives inputs and shows the results using a REST
interface". :func:`serve` binds the transport-agnostic API to an actual
``http.server`` endpoint, threaded so exploration sessions can be
driven interactively:

.. code-block:: python

    server = serve(quepa, port=0)            # 0 = pick a free port
    print(server.url)                        # http://127.0.0.1:PORT
    ...                                      # curl it, browse it
    server.shutdown()

Request bodies and responses are JSON. Errors map to their HTTP status
codes (the same codes :class:`ApiError` carries).

Observability rides along: ``GET /metrics`` returns the cumulative
metrics snapshot (``?format=prometheus`` for text exposition, served
with the Prometheus content type), ``GET /trace`` the spans of the
last completed run (``?format=chrome`` for Chrome trace-event JSON),
``GET /events`` the structured event journal, and ``POST /explain``
an EXPLAIN/ANALYZE report — see :mod:`repro.obs` and
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.core.system import Quepa
from repro.ui.api import ApiError, QuepaApi, TextResponse


class QuepaHttpServer:
    """A running HTTP endpoint bound to one QUEPA instance."""

    def __init__(self, api: QuepaApi, host: str, port: int) -> None:
        self.api = api
        handler = _make_handler(api)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )

    def start(self) -> "QuepaHttpServer":
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "QuepaHttpServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def serve(
    quepa: Quepa,
    host: str = "127.0.0.1",
    port: int = 8080,
    server: Any | None = None,
    hub: Any | None = None,
) -> QuepaHttpServer:
    """Start serving ``quepa`` over HTTP; ``port=0`` picks a free port.

    Pass a started :class:`~repro.serving.QuepaServer` as ``server`` to
    route ``POST /query`` through its scheduler (concurrent admission,
    backpressure, deadlines) and expose ``GET /serving`` status. Pass a
    :class:`~repro.cdc.ChangeHub` as ``hub`` to expose ``GET /ingest``.
    """
    api = QuepaApi(quepa, server=server, hub=hub)
    return QuepaHttpServer(api, host, port).start()


def _make_handler(api: QuepaApi) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        # Quiet: the server is used programmatically and in tests.
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def do_GET(self) -> None:  # noqa: N802 (http.server naming)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            body = None
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                if raw:
                    try:
                        body = json.loads(raw)
                    except json.JSONDecodeError:
                        self._reply(400, {"error": "invalid JSON body",
                                          "status": 400})
                        return
            try:
                response = api.handle(method, self.path, body)
            except ApiError as exc:
                self._reply(exc.status, exc.to_response())
                return
            self._reply(200, response)

        def _reply(self, status: int, payload: dict[str, Any]) -> None:
            if isinstance(payload, TextResponse):
                data = payload.body.encode("utf-8")
                content_type = payload.content_type
            else:
                data = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    return Handler
