"""A REST-shaped, transport-agnostic API over one QUEPA instance.

Endpoints (method, path) mirror what the paper's demo UI calls:

=======  =========================  ===========================================
POST     /query                     augmented search; body: database, query,
                                    level, augment, config
POST     /explore                   open an exploration session; body:
                                    database, query
GET      /explore/{sid}             session state: results, steps, path
POST     /explore/{sid}/select      expand one object; body: key
POST     /explore/{sid}/close       end the session (records the full path)
GET      /object/{global_key}       direct access to one data object
GET      /databases                 the polystore's databases and engines
GET      /stats                     last run record (for dashboards)
GET      /metrics                   cumulative metrics registry snapshot
                                    (per-database latency histograms, cache
                                    and pool counters);
                                    ``?format=prometheus`` returns text
                                    exposition for a Prometheus scrape
GET      /trace                     spans of the last run + per-kind summary;
                                    ``?format=chrome`` returns Chrome
                                    trace-event JSON (Perfetto-openable)
GET      /events                    the event journal (``?kind=``,
                                    ``?min_severity=``, ``?limit=``)
GET      /faults                    fault/resilience state: injected
                                    schedules and counters, breaker
                                    states, retries, failed calls
GET      /serving                   scheduler status (requires a server)
GET      /ingest                    CDC ingestion status: per-store
                                    cursors, lag, WAL size, materialized
                                    tier (requires a change hub)
GET      /requests                  flight-recorder digests of kept
                                    requests (``?session=``,
                                    ``?status=``, ``?limit=``)
GET      /slo                       availability/latency SLO compliance
                                    and error-budget burn rates
POST     /explain                   EXPLAIN/ANALYZE an augmented query; body:
                                    database, query, level, analyze, config
POST     /plan                      enumerate + cost cross-store physical
                                    plans (see :mod:`repro.planner`); body:
                                    database, query, level, targets, execute
=======  =========================  ===========================================

Requests and responses are plain dicts that serialize to JSON as-is;
every data object is rendered with its global key, payload, probability
and probability *band* (the paper's color coding). Errors surface as
:class:`ApiError` with an HTTP-like status code.
"""

from __future__ import annotations

import itertools
import threading
from urllib.parse import parse_qs
from typing import Any, Mapping

from repro.core.exploration import ExplorationSession
from repro.core.search import AugmentedAnswer
from repro.core.system import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import (
    InvalidGlobalKeyError,
    KeyNotFoundError,
    NotAugmentableError,
    ReproError,
    RequestDeadlineExceeded,
    ServerBusy,
    UnknownAugmenterError,
    UnknownDatabaseError,
)
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.obs import to_chrome_trace, to_prometheus
from repro.ui.render import probability_band


class TextResponse(dict):
    """A non-JSON payload (e.g. Prometheus text exposition).

    Still a dict, so callers that treat every API response as a JSON
    mapping keep working; the HTTP server special-cases it and writes
    ``body`` raw with ``content_type`` instead of serializing.
    """

    def __init__(
        self, body: str, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        super().__init__(body=body, content_type=content_type)

    @property
    def body(self) -> str:
        return self["body"]

    @property
    def content_type(self) -> str:
        return self["content_type"]


class ApiError(Exception):
    """An API-level failure with an HTTP-like status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message

    def to_response(self) -> dict[str, Any]:
        return {"error": self.message, "status": self.status}


def _object_payload(obj: DataObject) -> dict[str, Any]:
    return {
        "key": str(obj.key),
        "database": obj.key.database,
        "collection": obj.key.collection,
        "value": obj.value,
        "probability": obj.probability,
        "band": probability_band(obj.probability),
    }


def _augmented_payload(entry: AugmentedObject) -> dict[str, Any]:
    payload = _object_payload(entry.object)
    payload["source"] = str(entry.source) if entry.source else None
    payload["path"] = [str(step) for step in entry.path]
    return payload


def _answer_payload(answer: AugmentedAnswer) -> dict[str, Any]:
    return {
        "originals": [_object_payload(obj) for obj in answer.originals],
        "augmented": [_augmented_payload(e) for e in answer.augmented],
        "stats": {
            "database": answer.stats.database,
            "level": answer.stats.level,
            "original_count": answer.stats.original_count,
            "augmented_count": answer.stats.augmented_count,
            "queries_issued": answer.stats.queries_issued,
            "cache_hits": answer.stats.cache_hits,
            "elapsed_s": answer.stats.elapsed,
            "augmenter": answer.stats.augmenter,
            "rewritten": answer.stats.rewritten,
            "degraded": answer.stats.degraded,
            "errors": dict(answer.stats.errors),
            "unavailable_databases": list(
                answer.stats.unavailable_databases
            ),
        },
    }


class QuepaApi:
    """Routes REST-shaped requests onto a :class:`Quepa` instance."""

    def __init__(self, quepa: Quepa, server=None, hub=None) -> None:
        self.quepa = quepa
        #: Optional :class:`~repro.serving.QuepaServer`. When attached,
        #: POST /query runs through its scheduler — concurrently, with
        #: admission control — instead of under the global lock, and
        #: GET /serving reports scheduler status.
        self.server = server
        #: Optional :class:`~repro.cdc.hub.ChangeHub`. When attached,
        #: GET /ingest reports per-store CDC cursors, lag, WAL size and
        #: materialized-tier statistics.
        self.hub = hub
        self._sessions: dict[str, ExplorationSession] = {}
        self._session_ids = itertools.count(1)
        # Without a serving layer, one QUEPA instance serves one query
        # at a time (the classic runtime resets per-run state); the
        # lock serializes those requests. With a server attached,
        # queries bypass it and scheduling happens in repro.serving.
        self._lock = threading.Lock()

    # -- generic dispatch ----------------------------------------------------

    def handle(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Dispatch one request; raises :class:`ApiError` on failure."""
        body = body or {}
        path, _, query_string = path.partition("?")
        parts = [part for part in path.split("/") if part]
        # Last value wins for repeated parameters, like most web stacks.
        params = {
            key: values[-1]
            for key, values in parse_qs(query_string).items()
        }
        try:
            if self.server is not None and (method.upper(), parts) == (
                "POST",
                ["query"],
            ):
                # Scheduled path: concurrency control lives in the
                # serving layer, not in this process-wide lock.
                return self.query(body)
            with self._lock:
                return self._route(method.upper(), parts, body, params)
        except ApiError:
            raise
        except ServerBusy as exc:
            raise ApiError(503, str(exc)) from exc
        except RequestDeadlineExceeded as exc:
            raise ApiError(504, str(exc)) from exc
        except NotAugmentableError as exc:
            raise ApiError(422, str(exc)) from exc
        except (UnknownDatabaseError, KeyNotFoundError) as exc:
            raise ApiError(404, str(exc)) from exc
        except (InvalidGlobalKeyError, UnknownAugmenterError) as exc:
            raise ApiError(400, str(exc)) from exc
        except ReproError as exc:
            raise ApiError(500, str(exc)) from exc

    def _route(
        self,
        method: str,
        parts: list[str],
        body: Mapping[str, Any],
        params: Mapping[str, str],
    ) -> dict[str, Any]:
        match (method, parts):
            case ("POST", ["query"]):
                return self.query(body)
            case ("POST", ["explain"]):
                return self.explain(body)
            case ("POST", ["plan"]):
                return self.plan(body)
            case ("POST", ["explore"]):
                return self.open_exploration(body)
            case ("GET", ["explore", sid]):
                return self.exploration_state(sid)
            case ("POST", ["explore", sid, "select"]):
                return self.select(sid, body)
            case ("POST", ["explore", sid, "close"]):
                return self.close_exploration(sid)
            case ("GET", ["object", *key_parts]):
                return self.get_object("/".join(key_parts))
            case ("GET", ["databases"]):
                return self.databases()
            case ("GET", ["stats"]):
                return self.stats()
            case ("GET", ["metrics"]):
                return self.metrics(params)
            case ("GET", ["trace"]):
                return self.trace(params)
            case ("GET", ["events"]):
                return self.events(params)
            case ("GET", ["faults"]):
                return self.faults()
            case ("GET", ["serving"]):
                return self.serving()
            case ("GET", ["requests"]):
                return self.requests(params)
            case ("GET", ["ingest"]):
                return self.ingest()
            case ("GET", ["slo"]):
                return self.slo()
        raise ApiError(404, f"no route for {method} /{'/'.join(parts)}")

    # -- endpoints ---------------------------------------------------------------

    def query(self, body: Mapping[str, Any]) -> dict[str, Any]:
        database = _require(body, "database")
        query = _require(body, "query")
        level = int(body.get("level", 0))
        if level < 0:
            raise ApiError(400, "level must be >= 0")
        config = _parse_config(body.get("config"))
        augment = bool(body.get("augment", True))
        if self.server is not None:
            deadline = body.get("deadline")
            if deadline is not None:
                deadline = float(deadline)
                if deadline <= 0:
                    raise ApiError(400, "deadline must be > 0")
            priority = str(body.get("priority", "interactive"))
            classes = self.server.config.priority_classes
            if priority not in classes:
                raise ApiError(
                    400,
                    f"unknown priority {priority!r} "
                    f"(one of: {', '.join(classes)})",
                )
            answer = self.server.search(
                str(body.get("session", "http")),
                database,
                query,
                level=level,
                config=config,
                augment=augment,
                deadline=deadline,
                priority=priority,
            )
        else:
            answer = self.quepa.augmented_search(
                database, query, level=level,
                config=config, augment=augment,
            )
        return _answer_payload(answer)

    def serving(self) -> dict[str, Any]:
        """Scheduler status, or ``enabled: false`` without a server."""
        if self.server is None:
            return {"serving": None, "enabled": False}
        return {"serving": self.server.status(), "enabled": True}

    def ingest(self) -> dict[str, Any]:
        """CDC ingestion status, or ``enabled: false`` without a hub."""
        if self.hub is None:
            return {"ingest": None, "enabled": False}
        return {"ingest": self.hub.status(), "enabled": True}

    def requests(
        self, params: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """Flight-recorder digests (``?session=``, ``?status=``,
        ``?limit=`` keep the newest N)."""
        if self.server is None:
            return {"requests": [], "enabled": False, "recorder": None}
        params = params or {}
        limit_text = params.get("limit")
        try:
            limit = int(limit_text) if limit_text is not None else None
        except ValueError as exc:
            raise ApiError(
                400, f"limit must be an integer, got {limit_text!r}"
            ) from exc
        recorder = self.server.scheduler.recorder
        if recorder is None:
            return {"requests": [], "enabled": False, "recorder": None}
        return {
            "requests": recorder.as_dicts(
                session=params.get("session"),
                status=params.get("status"),
                limit=limit,
            ),
            "enabled": True,
            "recorder": recorder.stats(),
        }

    def slo(self) -> dict[str, Any]:
        """SLO compliance + burn rates; 404 without a serving layer."""
        if self.server is None:
            raise ApiError(
                404, "no serving layer attached (start a QuepaServer)"
            )
        return {"slo": self.server.slo_report()}

    def open_exploration(self, body: Mapping[str, Any]) -> dict[str, Any]:
        database = _require(body, "database")
        query = _require(body, "query")
        session = self.quepa.explore(database, query)
        sid = f"s{next(self._session_ids)}"
        self._sessions[sid] = session
        return {
            "session": sid,
            "results": [_object_payload(obj) for obj in session.results],
        }

    def exploration_state(self, sid: str) -> dict[str, Any]:
        session = self._session(sid)
        return {
            "session": sid,
            "results": [_object_payload(obj) for obj in session.results],
            "steps": [
                {
                    "selected": str(step.selected),
                    "links": [_augmented_payload(l) for l in step.links],
                }
                for step in session.steps
            ],
            "path": [str(key) for key in session.path],
        }

    def select(self, sid: str, body: Mapping[str, Any]) -> dict[str, Any]:
        session = self._session(sid)
        key_text = _require(body, "key")
        try:
            key = GlobalKey.parse(key_text)
        except InvalidGlobalKeyError as exc:
            raise ApiError(400, str(exc)) from exc
        try:
            step = session.select(key)
        except ReproError as exc:
            raise ApiError(409, str(exc)) from exc
        return {
            "session": sid,
            "selected": str(step.selected),
            "links": [_augmented_payload(link) for link in step.links],
        }

    def close_exploration(self, sid: str) -> dict[str, Any]:
        session = self._sessions.pop(sid, None)
        if session is None:
            raise ApiError(404, f"no exploration session {sid!r}")
        session.close()
        return {"session": sid, "closed": True,
                "path": [str(key) for key in session.path]}

    def get_object(self, key_text: str) -> dict[str, Any]:
        key = GlobalKey.parse(key_text)
        obj = self.quepa.get(key)
        return _object_payload(obj)

    def databases(self) -> dict[str, Any]:
        return {
            "databases": [
                {"name": name,
                 "engine": self.quepa.polystore.database(name).engine}
                for name in sorted(self.quepa.polystore)
            ]
        }

    def stats(self) -> dict[str, Any]:
        record = self.quepa.last_record
        if record is None:
            return {"last_run": None}
        return {
            "last_run": {
                "augmenter": record.augmenter,
                "batch_size": record.batch_size,
                "threads_size": record.threads_size,
                "cache_size": record.cache_size,
                "elapsed_s": record.elapsed,
                "features": record.features.as_dict(),
                "queries_by_database": dict(record.queries_by_database),
                "objects_by_database": dict(record.objects_by_database),
                "span_summary": dict(record.span_summary),
                "skipped_flushes": record.skipped_flushes,
                "degraded": record.degraded,
                "errors": dict(record.errors),
                "failed_queries_by_database": dict(
                    record.failed_queries_by_database
                ),
            }
        }

    def metrics(
        self, params: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """Cumulative instrument snapshot (counters/gauges/histograms)."""
        fmt = (params or {}).get("format", "json")
        snapshot = self.quepa.obs.metrics.snapshot()
        if fmt == "prometheus":
            return TextResponse(
                to_prometheus(snapshot),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if fmt != "json":
            raise ApiError(400, f"unknown metrics format {fmt!r}")
        return {"metrics": snapshot}

    def trace(
        self, params: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """The last run's spans, plus the per-kind summary."""
        obs = self.quepa.obs
        fmt = (params or {}).get("format", "json")
        if fmt == "chrome":
            return to_chrome_trace(obs.tracer.spans())
        if fmt != "json":
            raise ApiError(400, f"unknown trace format {fmt!r}")
        return {
            "trace": {
                "summary": obs.trace_summary(),
                "spans": obs.tracer.as_dicts(),
            }
        }

    def events(
        self, params: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """The event journal, filtered by kind / severity / limit."""
        params = params or {}
        limit_text = params.get("limit")
        try:
            limit = int(limit_text) if limit_text is not None else None
        except ValueError as exc:
            raise ApiError(400, f"limit must be an integer, got {limit_text!r}") from exc
        journal = self.quepa.obs.events
        try:
            events = journal.as_dicts(
                kind=params.get("kind"),
                min_severity=params.get("min_severity"),
                limit=limit,
            )
        except ValueError as exc:
            raise ApiError(400, str(exc)) from exc
        return {"events": events, "stats": journal.stats()}

    def faults(self) -> dict[str, Any]:
        """Fault/resilience state of the served system (see /faults)."""
        return {"faults": self.quepa.fault_report()}

    def explain(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """EXPLAIN (or ANALYZE) one augmented query without serving it."""
        database = _require(body, "database")
        query = _require(body, "query")
        level = int(body.get("level", 0))
        if level < 0:
            raise ApiError(400, "level must be >= 0")
        config = _parse_config(body.get("config"))
        report = self.quepa.explain(
            database, query, level=level,
            config=config, analyze=bool(body.get("analyze", False)),
        )
        return {"explain": report}

    def plan(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """Enumerate and cost the cross-store physical plans of a query.

        ``targets`` optionally restricts the augmentation target
        databases; ``execute=true`` also runs the chosen plan and
        reports the measured run next to the estimates.
        """
        from repro.planner import LogicalQuery

        database = _require(body, "database")
        query = _require(body, "query")
        level = int(body.get("level", 0))
        if level < 0:
            raise ApiError(400, "level must be >= 0")
        targets = body.get("targets")
        if targets is not None:
            if not isinstance(targets, (list, tuple)) or not all(
                isinstance(name, str) for name in targets
            ):
                raise ApiError(400, "targets must be a list of database names")
            targets = tuple(targets)
        logical = LogicalQuery(
            database=database, query=query, level=level, targets=targets
        )
        engine = self.quepa.planner_engine()
        try:
            report = engine.explain_section(logical)
            if bool(body.get("execute", False)):
                execution = engine.execute(logical)
                result = execution.result
                report["executed"] = {
                    "strategy": execution.chosen,
                    "elapsed_s": result.elapsed,
                    "queries_issued": result.queries_issued,
                    "answer_size": len(result.answer),
                    "out_of_memory": result.out_of_memory,
                    "degraded": result.degraded,
                }
        except UnknownDatabaseError as exc:
            raise ApiError(404, str(exc)) from exc
        return {"plan": report}

    # -- internals ------------------------------------------------------------------

    def _session(self, sid: str) -> ExplorationSession:
        session = self._sessions.get(sid)
        if session is None:
            raise ApiError(404, f"no exploration session {sid!r}")
        return session


def _require(body: Mapping[str, Any], field: str) -> Any:
    if field not in body:
        raise ApiError(400, f"missing required field {field!r}")
    return body[field]


def _parse_config(raw: Any) -> AugmentationConfig | None:
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ApiError(400, "config must be an object")
    allowed = {"augmenter", "batch_size", "threads_size", "cache_size",
               "min_probability", "skip_unavailable", "timeout_budget"}
    unknown = set(raw) - allowed
    if unknown:
        raise ApiError(400, f"unknown config fields {sorted(unknown)}")
    return AugmentationConfig(**raw)
