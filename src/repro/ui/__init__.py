"""The User Interface component (Section III-A, step 1/8).

The paper's QUEPA exposes augmented search and exploration through a
REST interface; results carry probabilities rendered as colors and
rankings. This package provides the same surface without a network
dependency:

* :mod:`repro.ui.api` — a transport-agnostic request router speaking
  JSON-shaped dicts (``POST /query``, ``POST /explore`` and friends).
  Plug it behind any HTTP framework, or drive it directly in tests.
* :mod:`repro.ui.render` — presentation helpers: probability bands
  ("colors"), ranked plain-text and ANSI rendering of augmented
  answers and exploration steps.
"""

from repro.ui.api import ApiError, QuepaApi
from repro.ui.render import (
    AnsiRenderer,
    TextRenderer,
    probability_band,
)
from repro.ui.server import QuepaHttpServer, serve

__all__ = [
    "AnsiRenderer",
    "ApiError",
    "QuepaApi",
    "QuepaHttpServer",
    "TextRenderer",
    "probability_band",
    "serve",
]
