"""Presentation of augmented answers: probability bands and text output.

The paper represents probabilities "in a more intuitive way" with
colors and rankings. The band thresholds follow the evaluation's
calibration: identity-grade links (p >= 0.9) render strongest, then
the matching band (0.6-0.89), then weaker derived links.
"""

from __future__ import annotations

from repro.core.search import AugmentedAnswer
from repro.model.objects import AugmentedObject, DataObject

#: (minimum probability, band name, ANSI color code)
BANDS = (
    (0.9, "strong", "32"),    # green  — identity-grade
    (0.6, "likely", "33"),    # yellow — matching-grade
    (0.3, "weak", "35"),      # magenta
    (0.0, "tenuous", "90"),   # grey
)


def probability_band(probability: float) -> str:
    """The color band of a probability (strong/likely/weak/tenuous)."""
    for threshold, name, __ in BANDS:
        if probability >= threshold:
            return name
    return BANDS[-1][1]


def _band_color(probability: float) -> str:
    for threshold, __, color in BANDS:
        if probability >= threshold:
            return color
    return BANDS[-1][2]


class TextRenderer:
    """Plain-text rendering of answers and exploration steps."""

    def __init__(self, value_width: int = 64, max_links: int = 10) -> None:
        self.value_width = value_width
        self.max_links = max_links

    def render_answer(self, answer: AugmentedAnswer) -> str:
        lines = [
            f"{len(answer.originals)} result(s), "
            f"{len(answer.augmented)} augmented object(s) "
            f"[{answer.stats.elapsed * 1000:.2f} ms]"
        ]
        by_source: dict[str, list[AugmentedObject]] = {}
        for entry in answer.augmented:
            by_source.setdefault(str(entry.source), []).append(entry)
        for original in answer.originals:
            lines.append(self.render_object(original))
            for entry in by_source.get(str(original.key), [])[: self.max_links]:
                lines.append("  " + self.render_link(entry))
        return "\n".join(lines)

    def render_object(self, obj: DataObject) -> str:
        return f"{obj.key}  {self._value(obj)}"

    def render_link(self, entry: AugmentedObject) -> str:
        band = probability_band(entry.probability)
        return (
            f"=> [{band} {entry.probability:.2f}] {entry.key}  "
            f"{self._value(entry.object)}"
        )

    def render_links(self, links: list[AugmentedObject]) -> str:
        return "\n".join(
            f"{rank}. {self.render_link(entry)}"
            for rank, entry in enumerate(links[: self.max_links], start=1)
        )

    def _value(self, obj: DataObject) -> str:
        text = repr(obj.value)
        if len(text) > self.value_width:
            return text[: self.value_width - 3] + "..."
        return text


class AnsiRenderer(TextRenderer):
    """Color rendering: the terminal equivalent of the paper's UI."""

    def render_link(self, entry: AugmentedObject) -> str:
        color = _band_color(entry.probability)
        plain = super().render_link(entry)
        return f"\x1b[{color}m{plain}\x1b[0m"
