"""Change-data-capture and incremental A' maintenance.

The batch pipeline (``repro.collector``) re-blocks the world; this
package keeps the system fresh under live writes instead:

* :mod:`repro.cdc.feed` — per-store change feeds: every engine write
  emits an append/update/delete event with a per-store sequence number;
* :mod:`repro.cdc.maintainer` — the incremental collector: consumes
  CDC batches, re-blocks only dirty entities and their blocking
  neighborhoods, and applies p-relation deltas to a live A' index
  (sharded or not) so the result is equivalent to a batch rebuild;
* :mod:`repro.cdc.materialize` — materialized level-k augmentation
  answers for hot keys, invalidated off the same CDC stream;
* :mod:`repro.cdc.hub` — the pump tying feeds, WAL, maintainer and
  materialized tier together, with a delivery seam for fault injection.
"""

from repro.cdc.feed import ChangeEvent, ChangeFeed
from repro.cdc.hub import ChangeHub, HubReport
from repro.cdc.maintainer import IncrementalCollector, IngestReport
from repro.cdc.materialize import MaterializedAugmentations

__all__ = [
    "ChangeEvent",
    "ChangeFeed",
    "ChangeHub",
    "HubReport",
    "IncrementalCollector",
    "IngestReport",
    "MaterializedAugmentations",
]
