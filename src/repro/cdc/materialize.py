"""Materialized level-k augmentation answers with CDC invalidation.

A gold-tier cache in front of the serving scheduler: full
:class:`~repro.core.search.AugmentedAnswer` objects for *hot* request
shapes, keyed by ``(database, query, level, augment)``. Unlike the
store-call LRU (which caches object fetches), this tier skips planning
and traversal entirely — a hit costs a dict probe.

Freshness is **event-driven**: after every applied CDC batch the hub
calls :meth:`invalidate`, which drops every entry that (a) lives on a
database that saw events, or (b) depends on any dirty key or any node
of a rebuilt A' component. Entries therefore never outlive an applied
batch that could have changed them — served answers are at worst
*stale* (true as of the last applied batch), never wrong, and the
staleness bound is exactly the CDC lag the hub reports.

Promotion is threshold-based: a request shape becomes materialized
after ``hot_threshold`` misses, so one-off queries never pay the
storage. Capacity eviction is LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Iterable

from repro.core.search import AugmentedAnswer
from repro.model.objects import GlobalKey

MaterializeKey = tuple[str, str, int, bool]


def _freeze_query(query: Any) -> str:
    """A stable textual form of a native query for cache keying."""
    return query if isinstance(query, str) else repr(query)


class _Entry:
    __slots__ = ("answer", "dependencies")

    def __init__(
        self, answer: AugmentedAnswer, dependencies: frozenset[GlobalKey]
    ) -> None:
        self.answer = answer
        self.dependencies = dependencies


class MaterializedAugmentations:
    """Hot-key materialization of augmented answers."""

    def __init__(
        self,
        capacity: int = 256,
        hot_threshold: int = 2,
        metrics: Any = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hot_threshold = hot_threshold
        self._entries: "OrderedDict[MaterializeKey, _Entry]" = OrderedDict()
        self._miss_counts: dict[MaterializeKey, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._metrics = metrics
        if metrics is not None:
            self._hit_counter = metrics.counter("materialized_hits_total")
            self._miss_counter = metrics.counter("materialized_misses_total")
            self._invalidation_counter = metrics.counter(
                "materialized_invalidations_total"
            )
            self._size_gauge = metrics.gauge("materialized_entries")
        else:
            self._hit_counter = None
            self._miss_counter = None
            self._invalidation_counter = None
            self._size_gauge = None

    # -- serving side ----------------------------------------------------------

    def lookup(
        self, database: str, query: Any, level: int, augment: bool = True
    ) -> AugmentedAnswer | None:
        """A materialized answer for this request shape, or ``None``.

        Hits return a shallow copy whose stats carry
        ``materialized=True`` so clients and the flight recorder can
        tell a cache-served answer from a planned one.
        """
        key = (database, _freeze_query(query), level, augment)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._miss_counts[key] = self._miss_counts.get(key, 0) + 1
                if self._miss_counter is not None:
                    self._miss_counter.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()
        answer = entry.answer
        return replace(
            answer, stats=replace(answer.stats, materialized=True)
        )

    def observe(
        self,
        database: str,
        query: Any,
        level: int,
        augment: bool,
        answer: AugmentedAnswer,
    ) -> bool:
        """Offer a freshly computed answer for materialization.

        Stored once the request shape has missed ``hot_threshold``
        times; returns whether it was stored. Dependencies are every
        global key appearing in the answer — originals and augmented
        alike — which is what CDC invalidation intersects against.
        """
        key = (database, _freeze_query(query), level, augment)
        dependencies = frozenset(
            [obj.key for obj in answer.originals]
            + [aug.key for aug in answer.augmented]
        )
        with self._lock:
            if self._miss_counts.get(key, 0) < self.hot_threshold:
                return False
            self._entries[key] = _Entry(answer, dependencies)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted_key, __ = self._entries.popitem(last=False)
                self._miss_counts.pop(evicted_key, None)
            if self._size_gauge is not None:
                self._size_gauge.set(len(self._entries))
            return True

    # -- CDC side --------------------------------------------------------------

    def invalidate(
        self,
        dirty_keys: Iterable[GlobalKey] = (),
        databases: Iterable[str] = (),
    ) -> int:
        """Drop entries affected by a CDC batch.

        ``dirty_keys`` should include the batch's dirty keys plus every
        node of the A' components the maintainer rebuilt: a new relation
        anywhere in a component can pull new objects into any answer
        that touches it. ``databases`` invalidates by the entry's own
        database — an insert can join the original result set without
        touching any existing key.
        """
        dirty = set(dirty_keys)
        dbs = set(databases)
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                if key[0] in dbs or (dirty and entry.dependencies & dirty):
                    # Keep the miss count: the shape already proved hot,
                    # so the next computed answer re-materializes at once.
                    del self._entries[key]
                    dropped += 1
            self.invalidations += dropped
            if self._size_gauge is not None:
                self._size_gauge.set(len(self._entries))
        if dropped and self._invalidation_counter is not None:
            self._invalidation_counter.inc(dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._miss_counts.clear()
            if self._size_gauge is not None:
                self._size_gauge.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def status(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "capacity": self.capacity,
                "hot_threshold": self.hot_threshold,
            }
