"""Per-store change feeds: the CDC source of truth.

Every engine write path calls :meth:`~repro.stores.base.Store._emit_change`,
which records a :class:`ChangeEvent` on the store's attached
:class:`ChangeFeed` (attaching is opt-in; unattached stores pay a single
``None`` check per write). Events carry:

* a **per-store sequence number**, monotonically increasing from 1 —
  the replay cursor for the WAL and the staleness unit for monitoring;
* the **post-state payload** of the object (``None`` for deletes), so a
  WAL of events is sufficient to re-apply the write on a restarted
  store without consulting the producer.

Delivery is **ack-based**: consumers read everything past the last
acknowledged sequence number and ack only after applying, so a crashed
or faulty consumer naturally re-reads the same events on its next pump
— the redelivery discipline the chaos suite leans on (dropped batches
are retried, duplicated batches are harmless because the maintainer
recomputes from current store state).
"""

from __future__ import annotations

import copy
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.model.objects import GlobalKey

#: The three CDC operations. ``append`` covers inserts; ``update`` and
#: ``delete`` are what they say. Collections whose name starts with an
#: underscore (``_edge``, ``_result``) are infrastructure payloads, not
#: data objects — consumers maintaining the A' index skip them.
OPS = ("append", "update", "delete")


@dataclass(frozen=True, slots=True)
class ChangeEvent:
    """One captured write: (seq, database, op, collection, key, value)."""

    seq: int
    database: str
    op: str
    collection: str
    key: str
    value: Any = None

    @property
    def global_key(self) -> GlobalKey:
        return GlobalKey(self.database, self.collection, self.key)

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "database": self.database,
            "op": self.op,
            "collection": self.collection,
            "key": self.key,
            "value": self.value,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ChangeEvent":
        return cls(
            seq=payload["seq"],
            database=payload["database"],
            op=payload["op"],
            collection=payload["collection"],
            key=payload["key"],
            value=payload.get("value"),
        )


class ChangeFeed:
    """The CDC outbox of one store: an ordered, ack-trimmed event queue.

    Thread-safe independently of the store lock — writers typically
    already hold ``store.lock``, but the feed protects itself so a
    consumer draining events concurrently never tears the queue.
    """

    def __init__(self, database: str, journal: Any = None) -> None:
        self.database = database
        #: Sequence number of the latest recorded event (0 = none yet).
        self.last_seq = 0
        #: Highest sequence number acknowledged by the consumer.
        self.acked_seq = 0
        self._events: deque[ChangeEvent] = deque()
        self._lock = threading.Lock()
        #: Optional :class:`repro.obs.events.EventJournal` mirror.
        self.journal = journal

    # -- producer side -------------------------------------------------------

    def record(
        self, op: str, collection: str, key: str, value: Any = None
    ) -> ChangeEvent:
        """Capture one write. Payloads are copied, because the engines
        mutate documents/rows in place and the event must pin the state
        at capture time."""
        if op not in OPS:
            raise ValueError(f"unknown CDC op {op!r}")
        with self._lock:
            self.last_seq += 1
            event = ChangeEvent(
                seq=self.last_seq,
                database=self.database,
                op=op,
                collection=collection,
                key=key,
                value=copy.deepcopy(value),
            )
            self._events.append(event)
        if self.journal is not None:
            self.journal.emit(
                "cdc_event",
                severity="debug",
                database=self.database,
                op=op,
                collection=collection,
                key=key,
                seq=event.seq,
            )
        return event

    def seed(self, seq: int) -> None:
        """Warm-restart entry point: resume numbering after ``seq``
        (everything at or below is considered applied and acked)."""
        with self._lock:
            self.last_seq = max(self.last_seq, seq)
            self.acked_seq = max(self.acked_seq, seq)
            while self._events and self._events[0].seq <= self.acked_seq:
                self._events.popleft()

    # -- consumer side -------------------------------------------------------

    def read_since(self, seq: int | None = None) -> list[ChangeEvent]:
        """Events with sequence number greater than ``seq`` (defaults to
        the acked cursor), in order. Does not ack."""
        cursor = self.acked_seq if seq is None else seq
        with self._lock:
            return [event for event in self._events if event.seq > cursor]

    def ack(self, seq: int) -> None:
        """Acknowledge everything up to and including ``seq``; acked
        events are trimmed from the queue."""
        with self._lock:
            if seq <= self.acked_seq:
                return
            self.acked_seq = seq
            while self._events and self._events[0].seq <= seq:
                self._events.popleft()

    def pending(self) -> int:
        """Events recorded but not yet acknowledged (the staleness lag)."""
        with self._lock:
            return self.last_seq - self.acked_seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[ChangeEvent]:
        with self._lock:
            return iter(list(self._events))
