"""The change hub: feeds -> WAL -> maintainer -> materialized tier.

One :class:`ChangeHub` owns the whole incremental-ingestion loop of a
polystore:

1. :meth:`attach` hangs a :class:`~repro.cdc.feed.ChangeFeed` on every
   store, so engine write paths start emitting CDC events.
2. :meth:`pump` drains each feed in turn: the batch is appended to the
   write-ahead log *before* it is applied (the write-ahead discipline —
   a crash mid-apply replays the batch on restart), pushed through the
   :class:`~repro.cdc.maintainer.IncrementalCollector`, used to
   invalidate the materialized-answer tier, and only then acked back to
   the feed. A batch the delivery seam drops is simply not acked and is
   redelivered on the next pump.
3. :meth:`snapshot` compacts: drain, write an incremental snapshot
   (stores + A' with lineage + collector state + per-store cursors) and
   truncate the WAL.
4. :meth:`warm_restart` is the inverse: load the snapshot, replay only
   the WAL delta into the stores *and* through the maintainer —
   O(changes), not O(world) — then re-attach feeds seeded past the
   replayed cursors.

The ``delivery`` hook exists for fault injection: a callable
``(database, events) -> list[ChangeEvent] | None`` through which every
batch passes on its way to the maintainer. Returning ``None`` models a
dropped batch (not acked, retried); returning a duplicated or reordered
list models a misbehaving transport — both are harmless because the
maintainer recomputes from current store state and acks follow the raw
feed order (see the chaos suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.cdc.feed import ChangeEvent, ChangeFeed
from repro.cdc.maintainer import IncrementalCollector
from repro.cdc.materialize import MaterializedAugmentations
from repro.collector.collector import CollectorSettings
from repro.collector.matching import PairwiseMatcher
from repro.model.polystore import Polystore
from repro.persistence.snapshot import load_snapshot_bundle, save_snapshot
from repro.persistence.wal import WriteAheadLog, replay

DeliveryHook = Callable[[str, list[ChangeEvent]], "list[ChangeEvent] | None"]


@dataclass
class HubReport:
    """What one :meth:`ChangeHub.pump` accomplished."""

    batches: int = 0
    events: int = 0
    dropped_batches: int = 0
    relations_added: int = 0
    relations_removed: int = 0
    #: Materialized answers invalidated by this pump.
    invalidated: int = 0
    #: Events still unacknowledged after the pump (dropped batches).
    lag: int = 0
    #: Per-database count of events applied.
    per_database: dict[str, int] = field(default_factory=dict)


class ChangeHub:
    """Drives incremental maintenance for one polystore + A' index."""

    def __init__(
        self,
        polystore: Polystore,
        aindex: Any,
        maintainer: IncrementalCollector,
        obs: Any = None,
        wal: WriteAheadLog | None = None,
        materialized: MaterializedAugmentations | None = None,
        delivery: DeliveryHook | None = None,
    ) -> None:
        self.polystore = polystore
        self.aindex = aindex
        self.maintainer = maintainer
        self.obs = obs
        self.wal = wal
        self.materialized = materialized
        self.delivery = delivery
        self.feeds: dict[str, ChangeFeed] = {}
        #: Highest WAL-logged sequence number per database. Tracked
        #: separately from acks so a delivery fault (batch logged, then
        #: dropped) does not double-log the batch on redelivery.
        self._logged_seq: dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------------

    def attach(self, seeds: dict[str, int] | None = None) -> None:
        """Create and attach a change feed to every store.

        ``seeds`` pre-positions each feed's sequence counter (warm
        restart: everything at or below the seed is already applied).
        """
        journal = self.obs.events if self.obs is not None else None
        for database in sorted(self.polystore):
            feed = ChangeFeed(database, journal=journal)
            seed = (seeds or {}).get(database, 0)
            if seed:
                feed.seed(seed)
            self.feeds[database] = feed
            self.polystore.database(database).changes = feed
            self._logged_seq.setdefault(database, seed)

    def detach(self) -> None:
        """Stop capturing changes (feeds keep their unacked events)."""
        for database in self.feeds:
            self.polystore.database(database).changes = None

    def bootstrap(self) -> Any:
        """Cold start: full batch-equivalent scan, then attach feeds.

        Ordering matters — the scan happens before feeds exist, so no
        write is both scanned and re-delivered as an event.
        """
        report = self.maintainer.bootstrap(self.polystore, self.aindex)
        self.attach()
        return report

    # -- the pump --------------------------------------------------------------

    def pump(self) -> HubReport:
        """Drain every feed once; returns what happened."""
        report = HubReport()
        for database in sorted(self.feeds):
            feed = self.feeds[database]
            raw = feed.read_since()
            if not raw:
                continue
            if self.wal is not None:
                logged = self._logged_seq.get(database, 0)
                to_log = [e for e in raw if e.seq > logged]
                if to_log:
                    self.wal.append(database, to_log)
                    self._logged_seq[database] = to_log[-1].seq
            delivered: list[ChangeEvent] | None = list(raw)
            if self.delivery is not None:
                delivered = self.delivery(database, list(raw))
            if delivered is None:
                # Dropped in transit: leave unacked, redeliver next pump.
                report.dropped_batches += 1
                self._count("cdc_batches_dropped_total")
                continue
            ingest = self.maintainer.apply(
                self.polystore, self.aindex, delivered
            )
            if self.materialized is not None:
                report.invalidated += self.materialized.invalidate(
                    ingest.invalidation_keys, (database,)
                )
            feed.ack(raw[-1].seq)
            report.batches += 1
            report.events += len(raw)
            report.relations_added += ingest.relations_added
            report.relations_removed += ingest.relations_removed
            report.per_database[database] = len(raw)
            if self.obs is not None:
                for event in raw:
                    self.obs.metrics.counter(
                        "cdc_events_total", op=event.op
                    ).inc()
                self._count("cdc_batches_applied_total")
                self.obs.events.emit(
                    "cdc_batch_applied",
                    database=database,
                    events=len(raw),
                    relations_added=ingest.relations_added,
                    relations_removed=ingest.relations_removed,
                    affected_nodes=ingest.affected_nodes,
                )
        report.lag = self.lag()
        if self.obs is not None:
            self.obs.metrics.gauge("cdc_lag_events").set(report.lag)
        return report

    def lag(self) -> int:
        """Recorded-but-unapplied events across all feeds — the bound
        on how stale a served (or materialized) answer can be."""
        return sum(feed.pending() for feed in self.feeds.values())

    def status(self) -> dict[str, Any]:
        return {
            "databases": {
                database: {
                    "last_seq": feed.last_seq,
                    "acked_seq": feed.acked_seq,
                    "pending": feed.pending(),
                }
                for database, feed in sorted(self.feeds.items())
            },
            "lag": self.lag(),
            "wal_bytes": self.wal.size_bytes() if self.wal else 0,
            "maintainer": self.maintainer.state(),
            "materialized": (
                self.materialized.status() if self.materialized else None
            ),
        }

    # -- snapshot / restart ----------------------------------------------------

    def snapshot(self, directory: str | Path) -> Path:
        """Compact: drain pending events, snapshot, truncate the WAL.

        Writers racing the snapshot should be quiesced (or their events
        accepted as the first entries of the next WAL generation); the
        drained state itself is crash-consistent because replay is
        idempotent.
        """
        while self.pump().batches:
            pass
        applied = {
            database: feed.acked_seq
            for database, feed in self.feeds.items()
        }
        path = save_snapshot(
            directory,
            self.polystore,
            self.aindex,
            applied_seqs=applied,
            cdc_state=self.maintainer.dump_state(),
        )
        if self.wal is not None:
            self.wal.truncate()
            self._logged_seq = dict(applied)
        if self.obs is not None:
            self.obs.events.emit(
                "cdc_snapshot", directory=str(path), applied=applied
            )
        return path

    @classmethod
    def warm_restart(
        cls,
        directory: str | Path,
        matcher: PairwiseMatcher,
        settings: CollectorSettings | None = None,
        wal: WriteAheadLog | None = None,
        obs: Any = None,
        materialized: MaterializedAugmentations | None = None,
        delivery: DeliveryHook | None = None,
    ) -> tuple["ChangeHub", dict[str, Any]]:
        """Restore a hub from an incremental snapshot + WAL delta.

        O(changes): the snapshot provides the world as of its cursors;
        only WAL events past them are re-applied to the stores and fed
        through the maintainer. Order is load-bearing — the collector
        state is restored *before* replay touches the stores, so the
        token index reflects snapshot-time state and the replayed batch
        is processed exactly like a live one.
        """
        bundle = load_snapshot_bundle(directory)
        aindex = bundle.aindex
        # Snapshots load with enforcement off (the edge set is already
        # closed); incremental deltas need propagation back on.
        aindex.enforce_consistency = True
        maintainer = IncrementalCollector(matcher, settings)
        maintainer.load_state(bundle.cdc_state or {}, bundle.polystore)
        applied = dict(bundle.applied_seqs)
        replayed: list[ChangeEvent] = []
        if wal is not None:
            applied, replayed = replay(bundle.polystore, wal, applied)
        hub = cls(
            bundle.polystore,
            aindex,
            maintainer,
            obs=obs,
            wal=wal,
            materialized=materialized,
            delivery=delivery,
        )
        if replayed:
            maintainer.apply(bundle.polystore, aindex, replayed)
        hub.attach(seeds=applied)
        if obs is not None:
            obs.events.emit(
                "cdc_warm_restart",
                directory=str(directory),
                replayed=len(replayed),
            )
        return hub, {"replayed_events": len(replayed), "applied_seqs": applied}

    # -- internals -------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc()
