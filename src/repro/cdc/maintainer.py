"""The incremental collector: CDC batches in, A' index deltas out.

The batch :class:`~repro.collector.collector.Collector` re-blocks the
whole polystore; this maintainer re-blocks **only dirty entities and
their blocking neighborhoods** and still lands on the same index state —
the equivalence the differential suite (``tests/test_cdc_props.py``)
pins. The construction that makes this possible:

* **Token index.** A live mirror of the blocker's state: per-key token
  sets plus token → key buckets. A batch blocker's candidate set is a
  pure function of this index, so candidacy changes are computable from
  the buckets a dirty key enters or leaves — including the subtle case
  where a bucket crosses the validity thresholds (``2 <= size <= max``)
  and clean–clean pairs inside it gain or lose candidacy.

* **Scored relation set.** Every pre-dedup p-relation the matcher has
  emitted, keyed by canonical pair. Per batch, only possibly-changed
  pairs are re-decided; local dedup is then recomputed over the whole
  scored set — a cheap linear pass that is order-independent (see
  :func:`~repro.collector.matching.enforce_local_dedup`), so the
  post-dedup *base* set is exactly what a batch run would produce.

* **Component rebuild.** The A' closure of a connected component is a
  fixpoint of its base relations, independent of insertion order, so a
  delta is applied by excising the affected components (removing stale
  inferred edges and lineage with them — :meth:`AIndex.excise`) and
  re-inserting their current base relations in canonical order. Works
  unchanged against a :class:`~repro.sharding.aindex.ShardedAIndex`,
  whose ``add`` routes each edge to its owning partitions.

Locking follows the PR 5 discipline: store fetches take ``store.lock``
and index surgery holds the index mutex across excise + re-add, so a
concurrent freeze can never observe a half-rebuilt component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.cdc.feed import ChangeEvent
from repro.collector.blocking import TokenBlocker
from repro.collector.collector import CollectorSettings
from repro.collector.matching import PairwiseMatcher, enforce_local_dedup
from repro.errors import ConfigurationError
from repro.model.objects import DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation

Pair = tuple[GlobalKey, GlobalKey]


def _canonical(a: GlobalKey, b: GlobalKey) -> Pair:
    return (a, b) if str(a) <= str(b) else (b, a)


def _relation_order(relation: PRelation) -> tuple[str, str, str]:
    return (str(relation.left), str(relation.right), relation.type.value)


@dataclass
class IngestReport:
    """What one bootstrap or CDC batch application did."""

    events: int = 0
    dirty_keys: int = 0
    pairs_rescored: int = 0
    relations_added: int = 0
    relations_removed: int = 0
    #: Nodes excised and rebuilt (the affected connected components).
    affected_nodes: int = 0
    #: Bootstrap-only: full-scan size and blocker candidate count.
    objects_scanned: int = 0
    candidate_pairs: int = 0
    #: The batch's dirty global keys plus every node of the rebuilt
    #: components — exactly what materialized-answer invalidation
    #: (:meth:`repro.cdc.materialize.MaterializedAugmentations.invalidate`)
    #: needs to intersect against.
    invalidation_keys: set[GlobalKey] = field(default_factory=set)


class IncrementalCollector:
    """Maintains a live A' index from CDC batches, batch-equivalently."""

    def __init__(
        self,
        matcher: PairwiseMatcher,
        settings: CollectorSettings | None = None,
    ) -> None:
        self.matcher = matcher
        self.settings = settings or CollectorSettings()
        if self.settings.max_candidate_pairs is not None:
            raise ConfigurationError(
                "incremental maintenance requires max_candidate_pairs=None: "
                "a candidate cap depends on enumeration order, which has no "
                "incremental equivalent"
            )
        self._blocker = TokenBlocker(
            max_block_size=self.settings.max_block_size,
            min_token_length=self.settings.min_token_length,
        )
        #: key -> its current blocker tokens.
        self._tokens: dict[GlobalKey, frozenset[str]] = {}
        #: token -> keys carrying it (bucket membership, all sizes).
        self._buckets: dict[str, set[GlobalKey]] = {}
        #: canonical pair -> pre-dedup p-relation the matcher emitted.
        self._scored: dict[Pair, PRelation] = {}
        #: canonical pair -> post-dedup (base) p-relation.
        self._base: dict[Pair, PRelation] = {}
        #: adjacency of the base relation graph (component lookup).
        self._base_adj: dict[GlobalKey, set[GlobalKey]] = {}

    # -- bootstrap -----------------------------------------------------------

    def bootstrap(self, polystore: Polystore, aindex: Any) -> IngestReport:
        """Full scan to seed the maintainer state and the index.

        Produces the same index a batch :class:`Collector` run would
        (modulo insertion order, which the closure is independent of),
        plus the token index and scored set that incremental batches
        update from then on.
        """
        report = IngestReport()
        objects: list[DataObject] = []
        for database in polystore:
            store = polystore.database(database)
            with store.lock:
                objects.extend(store.scan_objects())
        report.objects_scanned = len(objects)
        for obj in objects:
            tokens = frozenset(self._blocker._object_tokens(obj))
            if not tokens:
                continue
            self._tokens[obj.key] = tokens
            for token in tokens:
                self._buckets.setdefault(token, set()).add(obj.key)
        for left, right in self._blocker.candidate_pairs(objects):
            report.candidate_pairs += 1
            decision = self.matcher.decide(left, right)
            if decision.relation is not None:
                pair = _canonical(left.key, right.key)
                self._scored[pair] = decision.relation
        base = enforce_local_dedup(
            sorted(self._scored.values(), key=_relation_order)
        )
        self._base = {(r.left, r.right): r for r in base}
        for relation in base:
            self._base_adj.setdefault(relation.left, set()).add(relation.right)
            self._base_adj.setdefault(relation.right, set()).add(relation.left)
        with aindex._mutex:
            aindex.add_all(sorted(base, key=_relation_order))
        report.relations_added = len(base)
        report.affected_nodes = len(self._base_adj)
        return report

    # -- incremental application ---------------------------------------------

    def apply(
        self,
        polystore: Polystore,
        aindex: Any,
        events: Iterable[ChangeEvent],
    ) -> IngestReport:
        """Apply one CDC batch to the live index.

        Idempotent and order-tolerant within the batch: the store is the
        source of truth for every dirty key's current state, so applying
        a duplicated or internally reordered batch recomputes the same
        result.
        """
        report = IngestReport()
        dirty: set[GlobalKey] = set()
        for event in events:
            report.events += 1
            if event.collection.startswith("_"):
                continue
            dirty.add(event.global_key)
        if not dirty:
            return report
        report.dirty_keys = len(dirty)
        report.invalidation_keys |= dirty

        current = self._fetch(polystore, dirty)
        old_tokens = {k: self._tokens.get(k, frozenset()) for k in dirty}
        new_tokens: dict[GlobalKey, frozenset[str]] = {}
        for key in dirty:
            obj = current.get(key)
            new_tokens[key] = (
                frozenset(self._blocker._object_tokens(obj))
                if obj is not None
                else frozenset()
            )
        touched: set[str] = set()
        for key in dirty:
            touched |= old_tokens[key] | new_tokens[key]
        old_sizes = {t: len(self._buckets.get(t, ())) for t in touched}

        # Move dirty keys between buckets.
        for key in dirty:
            for token in old_tokens[key] - new_tokens[key]:
                bucket = self._buckets.get(token)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._buckets[token]
            for token in new_tokens[key] - old_tokens[key]:
                self._buckets.setdefault(token, set()).add(key)
            if new_tokens[key]:
                self._tokens[key] = new_tokens[key]
            else:
                self._tokens.pop(key, None)

        pairs = self._possibly_changed_pairs(
            dirty, new_tokens, touched, old_sizes
        )

        # Re-decide candidacy + score for every possibly-changed pair.
        missing = {k for pair in pairs for k in pair if k not in current}
        current.update(self._fetch(polystore, missing))
        for pair in sorted(pairs, key=lambda p: (str(p[0]), str(p[1]))):
            report.pairs_rescored += 1
            relation = None
            if self._is_candidate(*pair):
                left, right = current.get(pair[0]), current.get(pair[1])
                if left is not None and right is not None:
                    relation = self.matcher.decide(left, right).relation
            if relation is None:
                self._scored.pop(pair, None)
            else:
                self._scored[pair] = relation

        # Recompute dedup over the full scored set (order-independent),
        # then rebuild only the components the base-set diff touches.
        base = enforce_local_dedup(
            sorted(self._scored.values(), key=_relation_order)
        )
        new_base = {(r.left, r.right): r for r in base}
        changed: set[Pair] = set()
        for pair, relation in self._base.items():
            if new_base.get(pair) != relation:
                changed.add(pair)
        for pair, relation in new_base.items():
            if self._base.get(pair) != relation:
                changed.add(pair)
        if changed:
            report.relations_added = sum(
                1 for pair in changed if pair in new_base
            )
            report.relations_removed = sum(
                1 for pair in changed
                if pair in self._base and pair not in new_base
            )
            affected = self._affected_component(changed, new_base)
            report.affected_nodes = len(affected)
            report.invalidation_keys |= affected
            rebuilt = sorted(
                (
                    relation
                    for pair, relation in new_base.items()
                    if pair[0] in affected
                ),
                key=_relation_order,
            )
            with aindex._mutex:
                aindex.excise(affected)
                aindex.add_all(rebuilt)
            self._apply_base_diff(changed, new_base)
        self._base = new_base
        return report

    # -- internals ------------------------------------------------------------

    def _possibly_changed_pairs(
        self,
        dirty: set[GlobalKey],
        new_tokens: dict[GlobalKey, frozenset[str]],
        touched: set[str],
        old_sizes: dict[str, int],
    ) -> set[Pair]:
        """Every pair whose candidacy or score may have changed.

        Three sources: (a) scored pairs with a dirty endpoint (content
        or candidacy change), (b) dirty keys × co-members of their valid
        new buckets (new candidacies), (c) all cross-database pairs of
        buckets whose validity flipped (clean–clean candidacy changes).
        """
        max_size = self._blocker.max_block_size
        pairs: set[Pair] = set()
        for pair in self._scored:
            if pair[0] in dirty or pair[1] in dirty:
                pairs.add(pair)
        for key in dirty:
            for token in new_tokens[key]:
                bucket = self._buckets.get(token, set())
                if 2 <= len(bucket) <= max_size:
                    for other in bucket:
                        if other != key and other.database != key.database:
                            pairs.add(_canonical(key, other))
        for token in touched:
            bucket = self._buckets.get(token, set())
            was_valid = 2 <= old_sizes[token] <= max_size
            is_valid = 2 <= len(bucket) <= max_size
            if was_valid == is_valid:
                continue
            members = sorted(bucket, key=str)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a.database != b.database:
                        pairs.add(_canonical(a, b))
        return pairs

    def _is_candidate(self, a: GlobalKey, b: GlobalKey) -> bool:
        """Would the batch blocker emit this pair right now?"""
        if a.database == b.database:
            return False
        tokens_a = self._tokens.get(a)
        tokens_b = self._tokens.get(b)
        if not tokens_a or not tokens_b:
            return False
        max_size = self._blocker.max_block_size
        for token in tokens_a & tokens_b:
            bucket = self._buckets.get(token)
            if bucket is not None and 2 <= len(bucket) <= max_size:
                return True
        return False

    def _affected_component(
        self, changed: set[Pair], new_base: dict[Pair, PRelation]
    ) -> set[GlobalKey]:
        """Union of the connected components (over old ∪ new base
        edges) containing any endpoint of a changed base relation."""
        added_adj: dict[GlobalKey, set[GlobalKey]] = {}
        for pair in changed:
            if pair in new_base:
                added_adj.setdefault(pair[0], set()).add(pair[1])
                added_adj.setdefault(pair[1], set()).add(pair[0])
        affected: set[GlobalKey] = set()
        frontier = [key for pair in changed for key in pair]
        while frontier:
            node = frontier.pop()
            if node in affected:
                continue
            affected.add(node)
            for neighbor in self._base_adj.get(node, ()):
                if neighbor not in affected:
                    frontier.append(neighbor)
            for neighbor in added_adj.get(node, ()):
                if neighbor not in affected:
                    frontier.append(neighbor)
        return affected

    def _apply_base_diff(
        self, changed: set[Pair], new_base: dict[Pair, PRelation]
    ) -> None:
        for pair in changed:
            a, b = pair
            if pair in new_base:
                self._base_adj.setdefault(a, set()).add(b)
                self._base_adj.setdefault(b, set()).add(a)
            else:
                for x, y in ((a, b), (b, a)):
                    neighbors = self._base_adj.get(x)
                    if neighbors is not None:
                        neighbors.discard(y)
                        if not neighbors:
                            del self._base_adj[x]

    def _fetch(
        self, polystore: Polystore, keys: Iterable[GlobalKey]
    ) -> dict[GlobalKey, DataObject]:
        """Current store state of ``keys`` (missing keys are absent)."""
        by_database: dict[str, list[GlobalKey]] = {}
        for key in keys:
            by_database.setdefault(key.database, []).append(key)
        found: dict[GlobalKey, DataObject] = {}
        for database in sorted(by_database):
            store = polystore.database(database)
            with store.lock:
                for obj in store.multi_get(by_database[database]):
                    found[obj.key] = obj
        return found

    # -- introspection ---------------------------------------------------------

    def base_relations(self) -> list[PRelation]:
        """The current post-dedup base set, canonically ordered."""
        return sorted(self._base.values(), key=_relation_order)

    def state(self) -> dict[str, int]:
        return {
            "tracked_keys": len(self._tokens),
            "buckets": len(self._buckets),
            "scored_relations": len(self._scored),
            "base_relations": len(self._base),
        }

    # -- persistence hooks -----------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """JSON-serializable maintainer state for incremental snapshots.

        Only the scored set is persisted: the token index is a pure
        function of the polystore and is rebuilt linearly on load
        (:meth:`load_state`), while the base set re-derives from the
        scored set through the (deterministic) dedup pass.
        """
        return {
            "scored": [
                {
                    "left": str(r.left),
                    "right": str(r.right),
                    "type": r.type.value,
                    "p": r.probability,
                }
                for r in sorted(self._scored.values(), key=_relation_order)
            ],
        }

    def load_state(
        self, payload: dict[str, Any], polystore: Polystore
    ) -> None:
        """Restore from :meth:`dump_state` plus a loaded polystore.

        Rebuilds the token index from a linear scan (no pairwise work)
        and re-derives the base set from the persisted scored set. Does
        not touch any index — the caller restores the A' snapshot
        separately and replays the WAL delta through :meth:`apply`.
        """
        from repro.model.prelations import RelationType

        self._tokens.clear()
        self._buckets.clear()
        self._scored.clear()
        self._base.clear()
        self._base_adj.clear()
        for database in polystore:
            store = polystore.database(database)
            with store.lock:
                for obj in store.scan_objects():
                    tokens = frozenset(self._blocker._object_tokens(obj))
                    if not tokens:
                        continue
                    self._tokens[obj.key] = tokens
                    for token in tokens:
                        self._buckets.setdefault(token, set()).add(obj.key)
        for spec in payload.get("scored", ()):
            relation = PRelation(
                GlobalKey.parse(spec["left"]),
                GlobalKey.parse(spec["right"]),
                RelationType(spec["type"]),
                spec["p"],
            )
            self._scored[(relation.left, relation.right)] = relation
        base = enforce_local_dedup(
            sorted(self._scored.values(), key=_relation_order)
        )
        self._base = {(r.left, r.right): r for r in base}
        for relation in base:
            self._base_adj.setdefault(relation.left, set()).add(relation.right)
            self._base_adj.setdefault(relation.right, set()).add(relation.left)
