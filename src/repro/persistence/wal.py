"""Write-ahead log of CDC batches, for O(delta) warm restarts.

The hub appends every CDC batch to the WAL *before* applying it, so a
server that crashes mid-apply replays only the events past its last
incremental snapshot — O(changes), not O(world).

Format: one JSONL record per batch, each line ``<crc32 hex8> <json>``.
The checksum covers the JSON payload, so a torn tail write (the classic
crash artifact) is detected and tolerated: replay stops at the first
record that fails to parse or verify, exactly like a database WAL
recovering to its last complete record. Replay is idempotent —
re-application uses upsert semantics and skips events at or below a
given applied sequence number — so crashing *between* applying a batch
and snapshotting is safe: the next restart just replays it again.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator
from zlib import crc32

from repro.errors import KeyNotFoundError, ReproError
from repro.model.polystore import Polystore

if TYPE_CHECKING:  # avoids the repro.cdc <-> repro.persistence cycle
    from repro.cdc.feed import ChangeEvent


class WalError(ReproError):
    """The WAL file is unreadable (not merely torn at the tail)."""


class WriteAheadLog:
    """An append-only, checksummed JSONL log of CDC batches."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, database: str, events: list[ChangeEvent]) -> int:
        """Durably append one batch; returns the record's byte length."""
        if not events:
            return 0
        record = {
            "database": database,
            "events": [event.to_json() for event in events],
        }
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        line = f"{crc32(payload.encode('utf-8')):08x} {payload}\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
        return len(line)

    def records(self) -> Iterator[tuple[str, list[ChangeEvent]]]:
        """Iterate ``(database, events)`` batches, in append order.

        Stops at the first torn or checksum-failing record — everything
        before it is intact (each record carries its own CRC), and
        everything after it is untrusted by definition of an
        append-only log.
        """
        if not self.path.exists():
            return
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise WalError(f"cannot read WAL {self.path}: {exc}") from exc
        for line in lines:
            parsed = self._parse(line)
            if parsed is None:
                return
            yield parsed

    @staticmethod
    def _parse(line: str) -> tuple[str, list[ChangeEvent]] | None:
        from repro.cdc.feed import ChangeEvent

        line = line.rstrip("\n")
        if len(line) < 10 or line[8] != " ":
            return None
        checksum, payload = line[:8], line[9:]
        if f"{crc32(payload.encode('utf-8')):08x}" != checksum:
            return None
        try:
            record = json.loads(payload)
            events = [
                ChangeEvent.from_json(spec) for spec in record["events"]
            ]
            return record["database"], events
        except (json.JSONDecodeError, KeyError, TypeError):
            return None

    def last_seqs(self) -> dict[str, int]:
        """Highest logged sequence number per database."""
        seqs: dict[str, int] = {}
        for database, events in self.records():
            for event in events:
                if event.seq > seqs.get(database, 0):
                    seqs[database] = event.seq
        return seqs

    def truncate(self) -> None:
        """Discard the log (call only after a snapshot has captured it)."""
        if self.path.exists():
            self.path.unlink()

    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0


# ---------------------------------------------------------------------------
# Replay: re-apply CDC events to store engines
# ---------------------------------------------------------------------------


def apply_change(polystore: Polystore, event: ChangeEvent) -> None:
    """Re-apply one CDC event to its store, idempotently.

    Semantics are *upsert/replace*: CDC payloads are post-state, so an
    append of an existing key or an update of a missing one both land
    on the recorded state, and a delete of a missing key is a no-op.
    That is what makes replaying an already-applied suffix of the WAL
    harmless.
    """
    store = polystore.database(event.database)
    engine = store.engine
    with store.lock:
        if engine == "keyvalue":
            _apply_keyvalue(store, event)
        elif engine == "document":
            _apply_document(store, event)
        elif engine == "relational":
            _apply_relational(store, event)
        elif engine == "graph":
            _apply_graph(store, event)
        else:
            raise WalError(f"cannot replay into engine {engine!r}")


def _apply_keyvalue(store: Any, event: ChangeEvent) -> None:
    if event.op == "delete":
        store.delete(event.key)
    else:
        store.set(event.key, event.value)


def _apply_document(store: Any, event: ChangeEvent) -> None:
    store.create_collection(event.collection)
    if event.op == "delete":
        store.delete_one(event.collection, event.key)
        return
    # Replace: CDC captured the full post-state document, and a plain
    # merge could not drop fields removed by $unset/$rename.
    store.delete_one(event.collection, event.key)
    document = dict(event.value or {})
    document["_id"] = event.key
    store.insert(event.collection, document)


def _apply_relational(store: Any, event: ChangeEvent) -> None:
    table = store.table(event.collection)
    if event.op == "delete":
        table.delete(event.key)
        return
    try:
        table.row(event.key)
    except KeyNotFoundError:
        table.insert(dict(event.value or {}))
    else:
        table.update(event.key, dict(event.value or {}))


def _apply_graph(store: Any, event: ChangeEvent) -> None:
    if event.collection == "_edge":
        value = dict(event.value or {})
        if event.op == "append":
            store.create_edge(
                value["start"],
                value["type"],
                value["end"],
                value.get("properties"),
            )
        return
    if event.op == "delete":
        store.delete_node(event.key)
        return
    payload = dict(event.value or {})
    labels = tuple(payload.pop("_labels", ()) or (event.collection,))
    payload.pop("_id", None)
    if event.key in store._nodes:
        store.update_node(event.key, payload, replace=True)
    else:
        store.create_node(labels, payload, node_id=event.key)


def replay(
    polystore: Polystore,
    wal: WriteAheadLog,
    applied_seqs: dict[str, int] | None = None,
) -> tuple[dict[str, int], list[ChangeEvent]]:
    """Replay the WAL delta into ``polystore``.

    Skips events at or below ``applied_seqs`` (per database — typically
    the sequence numbers a snapshot captured). Returns the new per-
    database applied sequence numbers and the list of replayed events,
    in log order, for the caller to feed through the incremental
    maintainer. Stores should not have CDC feeds attached yet: replay
    must not re-emit the events it is consuming.
    """
    applied = dict(applied_seqs or {})
    replayed: list[ChangeEvent] = []
    for database, events in wal.records():
        for event in events:
            if event.seq <= applied.get(database, 0):
                continue
            apply_change(polystore, event)
            applied[database] = event.seq
            replayed.append(event)
    return applied, replayed
