"""JSON serialization of stores, polystores and A' indexes.

Layout of a snapshot directory::

    manifest.json        {"version": 1, "databases": [{"name", "engine"}]}
    db_<name>.json       engine-specific payload (see serializers below)
    aindex.json          {"relations": [{"left", "right", "type", "p"}]}

Round-trips preserve: every data object (keys and payloads), schemas
and secondary indexes of relational tables, document-store indexes,
graph labels/edges/properties, and every p-relation with its type and
probability. Inferred-edge lineage is *not* persisted (it only drives
the optional cascade deletion) — reloading re-adds edges with
consistency enforcement off, so the stored closure is kept verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.aindex import AIndex
from repro.errors import ReproError
from repro.model.objects import GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation, RelationType
from repro.stores.base import Store
from repro.stores.document.store import DocumentStore
from repro.stores.graph.store import GraphStore
from repro.stores.keyvalue.store import KeyValueStore
from repro.stores.relational.engine import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot directory is missing, malformed, or incompatible."""


# ---------------------------------------------------------------------------
# Store serializers
# ---------------------------------------------------------------------------


def _dump_relational(store: RelationalStore) -> dict[str, Any]:
    tables = {}
    for name in store.tables():
        table = store.table(name)
        tables[name] = {
            "schema": {
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
            },
            "indexes": sorted(table._indexes),
            "rows": [row for __, row in sorted(table.rows())],
        }
    return {"tables": tables}


def _load_relational(payload: dict[str, Any]) -> RelationalStore:
    store = RelationalStore()
    for name, spec in payload["tables"].items():
        schema = TableSchema(
            columns=[
                Column(c["name"], ColumnType(c["type"]), c["nullable"])
                for c in spec["schema"]["columns"]
            ],
            primary_key=spec["schema"]["primary_key"],
        )
        table = store.create_table(name, schema)
        for row in spec["rows"]:
            table.insert(row)
        for column in spec["indexes"]:
            table.create_index(column)
    return store


def _dump_document(store: DocumentStore) -> dict[str, Any]:
    return {
        "collections": {
            name: {
                "indexes": sorted(store._indexes.get(name, {})),
                "documents": [
                    store.get_value(name, key)
                    for key in sorted(store.collection_keys(name))
                ],
            }
            for name in store.collections()
        }
    }


def _load_document(payload: dict[str, Any]) -> DocumentStore:
    store = DocumentStore()
    for name, spec in payload["collections"].items():
        store.create_collection(name)
        for document in spec["documents"]:
            store.insert(name, document)
        for field in spec["indexes"]:
            store.create_index(name, field)
    return store


def _dump_graph(store: GraphStore) -> dict[str, Any]:
    nodes = [
        {
            "id": node.id,
            "labels": list(node.labels),
            "properties": node.properties,
        }
        for node in sorted(store._nodes.values(), key=lambda n: n.id)
    ]
    edges = [
        {
            "type": edge.type,
            "start": edge.start,
            "end": edge.end,
            "properties": edge.properties,
        }
        for edge in sorted(store._edges.values(), key=lambda e: e.id)
    ]
    return {"nodes": nodes, "edges": edges}


def _load_graph(payload: dict[str, Any]) -> GraphStore:
    store = GraphStore()
    for node in payload["nodes"]:
        store.create_node(
            tuple(node["labels"]), node["properties"], node_id=node["id"]
        )
    for edge in payload["edges"]:
        store.create_edge(
            edge["start"], edge["type"], edge["end"], edge["properties"]
        )
    return store


def _dump_keyvalue(store: KeyValueStore) -> dict[str, Any]:
    return {
        "keyspace": store.keyspace,
        "entries": {
            key: store.get_command(key)
            for key in sorted(store.collection_keys(store.keyspace))
        },
    }


def _load_keyvalue(payload: dict[str, Any]) -> KeyValueStore:
    store = KeyValueStore(keyspace=payload["keyspace"])
    for key, value in payload["entries"].items():
        store.set(key, value)
    return store


_DUMPERS = {
    "relational": _dump_relational,
    "document": _dump_document,
    "graph": _dump_graph,
    "keyvalue": _dump_keyvalue,
}
_LOADERS = {
    "relational": _load_relational,
    "document": _load_document,
    "graph": _load_graph,
    "keyvalue": _load_keyvalue,
}


# ---------------------------------------------------------------------------
# Snapshot API
# ---------------------------------------------------------------------------


def save_snapshot(
    directory: str | Path, polystore: Polystore, aindex: AIndex | None = None
) -> Path:
    """Write ``polystore`` (and optionally ``aindex``) to ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {"version": SNAPSHOT_VERSION, "databases": []}
    for name in sorted(polystore):
        store = polystore.database(name)
        dumper = _DUMPERS.get(store.engine)
        if dumper is None:
            raise SnapshotError(
                f"cannot snapshot engine {store.engine!r} of {name!r}"
            )
        manifest["databases"].append({"name": name, "engine": store.engine})
        _write_json(path / f"db_{name}.json", dumper(store))
    if aindex is not None:
        relations = []
        seen: set[tuple[str, str]] = set()
        for node in aindex.nodes():
            for neighbor in aindex.neighbors(node):
                pair = tuple(sorted((str(node), str(neighbor.key))))
                if pair in seen:
                    continue
                seen.add(pair)  # type: ignore[arg-type]
                relations.append(
                    {
                        "left": pair[0],
                        "right": pair[1],
                        "type": neighbor.type.value,
                        "p": neighbor.probability,
                    }
                )
        relations.sort(key=lambda r: (r["left"], r["right"]))
        _write_json(path / "aindex.json", {"relations": relations})
    _write_json(path / "manifest.json", manifest)
    return path


def load_snapshot(directory: str | Path) -> tuple[Polystore, AIndex]:
    """Load a snapshot; returns the polystore and its A' index.

    The returned index has consistency enforcement disabled so the
    persisted edge set is restored verbatim (it was already closed when
    saved, if it was built that way).
    """
    path = Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise SnapshotError(f"no snapshot manifest in {path}")
    manifest = _read_json(manifest_path)
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    polystore = Polystore()
    for entry in manifest["databases"]:
        loader = _LOADERS.get(entry["engine"])
        if loader is None:
            raise SnapshotError(f"unknown engine {entry['engine']!r}")
        payload = _read_json(path / f"db_{entry['name']}.json")
        polystore.attach(entry["name"], loader(payload))
    aindex = AIndex(enforce_consistency=False)
    aindex_path = path / "aindex.json"
    if aindex_path.exists():
        for relation in _read_json(aindex_path)["relations"]:
            aindex.add(
                PRelation(
                    GlobalKey.parse(relation["left"]),
                    GlobalKey.parse(relation["right"]),
                    RelationType(relation["type"]),
                    relation["p"],
                )
            )
    return polystore, aindex


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def _read_json(path: Path) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read {path}: {exc}") from exc
