"""JSON serialization of stores, polystores and A' indexes.

Layout of a version-2 snapshot directory::

    manifest.json        {"version": 2, "databases": [{"name", "engine"}],
                          "applied_seqs": {db: seq}}
    db_<name>.json       engine-specific payload (see serializers below)
    aindex.json          {"relations": [{"left", "right", "type", "p"}],
                          "lineage": [{"left", "right", "supports"}]}
    cdc_state.json       incremental-collector state (optional; see
                          :meth:`repro.cdc.maintainer.IncrementalCollector.dump_state`)

Round-trips preserve: every data object (keys and payloads), schemas
and secondary indexes of relational tables, document-store indexes,
graph labels/edges/properties, every p-relation with its type and
probability, and — since version 2 — the inferred-edge lineage, so
cascade deletion (:meth:`AIndex.remove_relation` with ``cascade=True``)
behaves identically on a reloaded index and a never-restarted one.
Version-1 directories still load (without lineage or CDC cursors).

``applied_seqs`` records the per-store CDC sequence number the snapshot
captured; a warm restart replays only WAL events past it — O(changes),
not O(world) (see :mod:`repro.persistence.wal`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.aindex import AIndex
from repro.errors import ReproError
from repro.model.objects import GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation, RelationType
from repro.stores.base import Store
from repro.stores.document.store import DocumentStore
from repro.stores.graph.store import GraphStore
from repro.stores.keyvalue.store import KeyValueStore
from repro.stores.relational.engine import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

SNAPSHOT_VERSION = 2
#: Versions :func:`load_snapshot` understands.
SUPPORTED_VERSIONS = (1, 2)


class SnapshotError(ReproError):
    """A snapshot directory is missing, malformed, or incompatible."""


# ---------------------------------------------------------------------------
# Store serializers
# ---------------------------------------------------------------------------


def _dump_relational(store: RelationalStore) -> dict[str, Any]:
    tables = {}
    for name in store.tables():
        table = store.table(name)
        tables[name] = {
            "schema": {
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
            },
            "indexes": sorted(table._indexes),
            "rows": [row for __, row in sorted(table.rows())],
        }
    return {"tables": tables}


def _load_relational(payload: dict[str, Any]) -> RelationalStore:
    store = RelationalStore()
    for name, spec in payload["tables"].items():
        schema = TableSchema(
            columns=[
                Column(c["name"], ColumnType(c["type"]), c["nullable"])
                for c in spec["schema"]["columns"]
            ],
            primary_key=spec["schema"]["primary_key"],
        )
        table = store.create_table(name, schema)
        for row in spec["rows"]:
            table.insert(row)
        for column in spec["indexes"]:
            table.create_index(column)
    return store


def _dump_document(store: DocumentStore) -> dict[str, Any]:
    return {
        "collections": {
            name: {
                "indexes": sorted(store._indexes.get(name, {})),
                "documents": [
                    store.get_value(name, key)
                    for key in sorted(store.collection_keys(name))
                ],
            }
            for name in store.collections()
        }
    }


def _load_document(payload: dict[str, Any]) -> DocumentStore:
    store = DocumentStore()
    for name, spec in payload["collections"].items():
        store.create_collection(name)
        for document in spec["documents"]:
            store.insert(name, document)
        for field in spec["indexes"]:
            store.create_index(name, field)
    return store


def _dump_graph(store: GraphStore) -> dict[str, Any]:
    nodes = [
        {
            "id": node.id,
            "labels": list(node.labels),
            "properties": node.properties,
        }
        for node in sorted(store._nodes.values(), key=lambda n: n.id)
    ]
    edges = [
        {
            "type": edge.type,
            "start": edge.start,
            "end": edge.end,
            "properties": edge.properties,
        }
        for edge in sorted(store._edges.values(), key=lambda e: e.id)
    ]
    return {"nodes": nodes, "edges": edges}


def _load_graph(payload: dict[str, Any]) -> GraphStore:
    store = GraphStore()
    for node in payload["nodes"]:
        store.create_node(
            tuple(node["labels"]), node["properties"], node_id=node["id"]
        )
    for edge in payload["edges"]:
        store.create_edge(
            edge["start"], edge["type"], edge["end"], edge["properties"]
        )
    return store


def _dump_keyvalue(store: KeyValueStore) -> dict[str, Any]:
    return {
        "keyspace": store.keyspace,
        "entries": {
            key: store.get_command(key)
            for key in sorted(store.collection_keys(store.keyspace))
        },
    }


def _load_keyvalue(payload: dict[str, Any]) -> KeyValueStore:
    store = KeyValueStore(keyspace=payload["keyspace"])
    for key, value in payload["entries"].items():
        store.set(key, value)
    return store


_DUMPERS = {
    "relational": _dump_relational,
    "document": _dump_document,
    "graph": _dump_graph,
    "keyvalue": _dump_keyvalue,
}
_LOADERS = {
    "relational": _load_relational,
    "document": _load_document,
    "graph": _load_graph,
    "keyvalue": _load_keyvalue,
}


# ---------------------------------------------------------------------------
# Snapshot API
# ---------------------------------------------------------------------------


@dataclass
class SnapshotBundle:
    """Everything a version-2 snapshot directory holds."""

    polystore: Polystore
    aindex: AIndex
    version: int = SNAPSHOT_VERSION
    #: Per-database CDC sequence number captured by the snapshot
    #: (empty for version-1 snapshots and CDC-less systems).
    applied_seqs: dict[str, int] = field(default_factory=dict)
    #: Incremental-collector state, if the snapshot carried one.
    cdc_state: dict[str, Any] | None = None


def save_snapshot(
    directory: str | Path,
    polystore: Polystore,
    aindex: AIndex | None = None,
    applied_seqs: dict[str, int] | None = None,
    cdc_state: dict[str, Any] | None = None,
) -> Path:
    """Write ``polystore`` (and optionally ``aindex``) to ``directory``.

    ``applied_seqs`` and ``cdc_state`` make the snapshot *incremental*:
    a warm restart loads it, replays only WAL events past the recorded
    sequence numbers, and resumes incremental maintenance from the
    persisted collector state.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "databases": [],
        "applied_seqs": dict(applied_seqs or {}),
    }
    for name in sorted(polystore):
        store = polystore.database(name)
        dumper = _DUMPERS.get(store.engine)
        if dumper is None:
            raise SnapshotError(
                f"cannot snapshot engine {store.engine!r} of {name!r}"
            )
        manifest["databases"].append({"name": name, "engine": store.engine})
        with store.lock:
            _write_json(path / f"db_{name}.json", dumper(store))
    if aindex is not None:
        relations = []
        seen: set[tuple[str, str]] = set()
        for node in aindex.nodes():
            for neighbor in aindex.neighbors(node):
                pair = tuple(sorted((str(node), str(neighbor.key))))
                if pair in seen:
                    continue
                seen.add(pair)  # type: ignore[arg-type]
                relations.append(
                    {
                        "left": pair[0],
                        "right": pair[1],
                        "type": neighbor.type.value,
                        "p": neighbor.probability,
                    }
                )
        relations.sort(key=lambda r: (r["left"], r["right"]))
        lineage = [
            {
                "left": str(pair[0]),
                "right": str(pair[1]),
                "supports": sorted(
                    [str(s[0]), str(s[1])] for s in supports
                ),
            }
            for pair, supports in aindex._lineage.items()
        ]
        lineage.sort(key=lambda entry: (entry["left"], entry["right"]))
        _write_json(
            path / "aindex.json",
            {"relations": relations, "lineage": lineage},
        )
    if cdc_state is not None:
        _write_json(path / "cdc_state.json", cdc_state)
    _write_json(path / "manifest.json", manifest)
    return path


def load_snapshot(directory: str | Path) -> tuple[Polystore, AIndex]:
    """Load a snapshot; returns the polystore and its A' index.

    Thin compatibility wrapper over :func:`load_snapshot_bundle`.
    """
    bundle = load_snapshot_bundle(directory)
    return bundle.polystore, bundle.aindex


def load_snapshot_bundle(directory: str | Path) -> SnapshotBundle:
    """Load a snapshot directory (version 1 or 2) in full.

    The returned index has consistency enforcement disabled so the
    persisted edge set is restored verbatim (it was already closed when
    saved, if it was built that way); version-2 snapshots also restore
    the inferred-edge lineage, so post-reload cascade deletion matches
    a never-restarted instance.
    """
    path = Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise SnapshotError(f"no snapshot manifest in {path}")
    manifest = _read_json(manifest_path)
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    polystore = Polystore()
    for entry in manifest["databases"]:
        loader = _LOADERS.get(entry["engine"])
        if loader is None:
            raise SnapshotError(f"unknown engine {entry['engine']!r}")
        payload = _read_json(path / f"db_{entry['name']}.json")
        polystore.attach(entry["name"], loader(payload))
    aindex = AIndex(enforce_consistency=False)
    aindex_path = path / "aindex.json"
    if aindex_path.exists():
        payload = _read_json(aindex_path)
        for relation in payload["relations"]:
            aindex.add(
                PRelation(
                    GlobalKey.parse(relation["left"]),
                    GlobalKey.parse(relation["right"]),
                    RelationType(relation["type"]),
                    relation["p"],
                )
            )
        for entry in payload.get("lineage", ()):
            pair = (
                GlobalKey.parse(entry["left"]),
                GlobalKey.parse(entry["right"]),
            )
            aindex._lineage[pair] = {
                (GlobalKey.parse(a), GlobalKey.parse(b))
                for a, b in entry["supports"]
            }
    cdc_path = path / "cdc_state.json"
    return SnapshotBundle(
        polystore=polystore,
        aindex=aindex,
        version=version,
        applied_seqs={
            name: int(seq)
            for name, seq in (manifest.get("applied_seqs") or {}).items()
        },
        cdc_state=_read_json(cdc_path) if cdc_path.exists() else None,
    )


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def _read_json(path: Path) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read {path}: {exc}") from exc
