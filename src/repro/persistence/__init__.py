"""Persistence: snapshots plus the CDC write-ahead log.

Operational tooling for the reproduction: a generated polystore (or a
hand-built one) can be written to a directory and reloaded later, so
experiments and demos do not have to regenerate data. One file per
database plus ``aindex.json`` and a ``manifest.json``; everything is
plain JSON, diff-able and engine-agnostic.

Version-2 snapshots are *incremental*: they record per-store CDC
sequence numbers, the A' lineage, and the incremental collector's
state, so a restarted server loads the snapshot and replays only the
write-ahead-log delta (:mod:`repro.persistence.wal`) — O(changes)
instead of a full rebuild.
"""

from repro.persistence.snapshot import (
    SnapshotBundle,
    load_snapshot,
    load_snapshot_bundle,
    save_snapshot,
)
from repro.persistence.wal import WriteAheadLog, apply_change, replay

__all__ = [
    "SnapshotBundle",
    "WriteAheadLog",
    "apply_change",
    "load_snapshot",
    "load_snapshot_bundle",
    "replay",
    "save_snapshot",
]
