"""Snapshots: save/load a polystore and its A' index as JSON files.

Operational tooling for the reproduction: a generated polystore (or a
hand-built one) can be written to a directory and reloaded later, so
experiments and demos do not have to regenerate data. One file per
database plus ``aindex.json`` and a ``manifest.json``; everything is
plain JSON, diff-able and engine-agnostic.
"""

from repro.persistence.snapshot import load_snapshot, save_snapshot

__all__ = ["load_snapshot", "save_snapshot"]
