"""Deployment profiles and the store-access cost model.

The paper evaluates two deployments (Section VII-A):

* **centralized** — QUEPA and all stores on one m4.4xlarge (16 vCPU);
  latency is in-host, sub-millisecond.
* **distributed** — QUEPA and each store on t2.medium machines placed in
  different EC2 regions; latency reaches a few hundred milliseconds.

A :class:`DeploymentProfile` assigns every database a
:class:`StoreSite`: the machine it runs on (a capacity-limited CPU
resource in virtual time) and the one-way network latency between QUEPA
and that machine. The :class:`CostModel` holds the scalar costs of a
store access — per-query overhead, per-object service time, per-object
client-side CPU — used by the virtual runtime to charge operations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.network.clock import Resource


@dataclass
class Machine:
    """A host with a fixed number of cores, modelled as a CPU resource."""

    name: str
    cores: int
    cpu: Resource = field(init=False)

    def __post_init__(self) -> None:
        self.cpu = Resource(self.cores, name=f"{self.name}.cpu")

    def reset(self) -> None:
        self.cpu.reset()


@dataclass(frozen=True)
class CostModel:
    """Scalar costs of store access, in virtual seconds.

    The defaults are calibrated so that the paper's experiment scales
    hold: a 10,000-result level-1 query touches up to ~1M objects and a
    sequential run in the distributed deployment is network-dominated.
    """

    #: Fixed server-side cost of admitting and planning one query.
    per_query_overhead: float = 0.0005
    #: Server-side service time per object returned.
    per_object_service: float = 0.00002
    #: Client-side CPU per object to parse/arrange into the answer.
    per_object_cpu: float = 0.000005
    #: Client-side CPU to create and synchronize one worker thread.
    thread_spawn_overhead: float = 0.0006
    #: Client-side CPU to set up one worker pool.
    pool_create_overhead: float = 0.001
    #: Client-side CPU for one cache probe.
    cache_probe_cost: float = 0.0000005
    #: Client-side CPU per A' index edge examined while planning.
    aindex_edge_cost: float = 0.0000002


@dataclass
class StoreSite:
    """Where a database lives: its machine and its one-way latency."""

    machine: Machine
    one_way_latency: float

    @property
    def roundtrip(self) -> float:
        return 2.0 * self.one_way_latency


class DeploymentProfile:
    """Maps database names to sites; owns the QUEPA host machine."""

    def __init__(
        self,
        name: str,
        quepa_machine: Machine,
        cost_model: CostModel | None = None,
        default_latency: float = 0.0002,
    ) -> None:
        self.name = name
        self.quepa_machine = quepa_machine
        self.cost_model = cost_model or CostModel()
        self.default_latency = default_latency
        self._sites: dict[str, StoreSite] = {}
        self._default_machine = quepa_machine

    def place(self, database: str, machine: Machine, one_way_latency: float) -> None:
        """Assign ``database`` to ``machine`` at the given latency."""
        self._sites[database] = StoreSite(machine, one_way_latency)

    def site(self, database: str) -> StoreSite:
        """The site of ``database`` (co-located default if never placed)."""
        if database not in self._sites:
            self._sites[database] = StoreSite(
                self._default_machine, self.default_latency
            )
        return self._sites[database]

    def machines(self) -> list[Machine]:
        seen: dict[str, Machine] = {self.quepa_machine.name: self.quepa_machine}
        for site in self._sites.values():
            seen.setdefault(site.machine.name, site.machine)
        return list(seen.values())

    def reset(self) -> None:
        """Reset all machine resources (between virtual runs)."""
        for machine in self.machines():
            machine.reset()


def centralized_profile(
    databases: list[str],
    cores: int = 16,
    store_cores: int = 16,
    cost_model: CostModel | None = None,
) -> DeploymentProfile:
    """The paper's centralized deployment: everything on one big host.

    Stores share a host modelled separately from the QUEPA process (the
    paper notes the stores ran on a slower machine than QUEPA), with
    in-host latency of ~0.2 ms.
    """
    quepa = Machine("quepa-host", cores)
    stores_host = Machine("stores-host", store_cores)
    profile = DeploymentProfile("centralized", quepa, cost_model)
    for database in databases:
        profile.place(database, stores_host, one_way_latency=0.0002)
    return profile


def distributed_profile(
    databases: list[str],
    cores: int = 2,
    store_cores: int = 2,
    min_latency: float = 0.040,
    max_latency: float = 0.220,
    seed: int = 7,
    cost_model: CostModel | None = None,
) -> DeploymentProfile:
    """The paper's distributed deployment: one t2.medium per store.

    Each store lives on its own 2-core machine in a different region;
    one-way latencies are drawn uniformly from
    ``[min_latency, max_latency]`` with a fixed seed so runs are
    reproducible ("network latency reaches, in some cases, few hundred
    milliseconds").
    """
    rng = random.Random(seed)
    quepa = Machine("quepa-host", cores)
    profile = DeploymentProfile("distributed", quepa, cost_model)
    for index, database in enumerate(sorted(databases)):
        machine = Machine(f"region-{index}", store_cores)
        profile.place(database, machine, rng.uniform(min_latency, max_latency))
    return profile
