"""A monotone virtual clock and capacity-limited virtual resources."""

from __future__ import annotations


class VirtualClock:
    """A simple virtual clock measured in (simulated) seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


class Resource:
    """A capacity-limited virtual resource (CPU cores, store workers).

    Jobs are placed with greedy list scheduling: a job arriving at time
    ``arrival`` with duration ``duration`` starts on the earliest-free
    slot, no sooner than its arrival. This is deterministic and, for the
    fork-join workloads the augmenters generate, matches what a real
    work-conserving scheduler would do.
    """

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._free_at = [0.0] * capacity
        self.busy_time = 0.0
        self.jobs = 0

    def acquire(self, arrival: float, duration: float) -> tuple[float, float]:
        """Schedule a job; returns ``(start, end)`` and books the slot."""
        if duration < 0:
            raise ValueError(f"negative job duration: {duration}")
        slot = min(range(self.capacity), key=self._free_at.__getitem__)
        start = max(arrival, self._free_at[slot])
        end = start + duration
        self._free_at[slot] = end
        self.busy_time += duration
        self.jobs += 1
        return start, end

    def earliest_free(self) -> float:
        return min(self._free_at)

    def reset(self) -> None:
        self._free_at = [0.0] * self.capacity
        self.busy_time = 0.0
        self.jobs = 0
