"""Execution runtimes: virtual time and real threads behind one API.

Augmenters and connectors never talk to clocks or thread pools directly;
they use an :class:`ExecContext`:

* ``ctx.cpu(seconds)`` — QUEPA-side CPU work;
* ``ctx.store_call(database, fn)`` — one native query against a store,
  charged as latency + per-query overhead + per-object service time;
* ``ctx.pool(workers)`` — a worker pool whose tasks receive child
  contexts, so nested parallelism (the OUTER-INNER augmenter) composes.

:class:`VirtualRuntime` implements the contract on a deterministic
virtual clock with capacity-limited CPU resources (see DESIGN.md);
:class:`RealRuntime` implements it with ``ThreadPoolExecutor`` and
optional scaled real sleeps. Answers are identical under both; only the
time measurements differ.

Both runtimes carry an :class:`~repro.obs.Observability` bundle. Every
store call, CPU charge and pool lifetime is recorded as spans/metrics on
the runtime's *own* clock — instrumentation reads the clock but never
charges it, so virtual-time numbers are identical with tracing on.
Child contexts created by :meth:`WorkerPool.submit` inherit the active
span of the submitting context, so traces keep their tree shape across
worker threads.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.errors import InjectedFaultError, StoreError
from repro.network.latency import DeploymentProfile
from repro.obs import Observability, Span

T = TypeVar("T")

#: A store operation: a zero-argument callable returning a list of results.
StoreOp = Callable[[], Sequence[Any]]


class QueryMeter:
    """Counts queries and objects fetched, per database (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries_by_database: dict[str, int] = {}
        self.objects_by_database: dict[str, int] = {}
        self.failed_queries_by_database: dict[str, int] = {}

    def record(self, database: str, objects: int) -> None:
        with self._lock:
            self.queries_by_database[database] = (
                self.queries_by_database.get(database, 0) + 1
            )
            self.objects_by_database[database] = (
                self.objects_by_database.get(database, 0) + objects
            )

    def record_failure(self, database: str) -> None:
        """A query that errored: counted as issued, zero objects.

        Failed calls used to vanish from the meter entirely, so a
        partial batch (some calls errored mid-run) over-represented the
        store's throughput: only the objects actually returned may
        count, but the roundtrips still happened.
        """
        with self._lock:
            self.queries_by_database[database] = (
                self.queries_by_database.get(database, 0) + 1
            )
            self.failed_queries_by_database[database] = (
                self.failed_queries_by_database.get(database, 0) + 1
            )

    def snapshot(self) -> dict[str, dict[str, int]]:
        """A consistent copy of all three per-database tallies.

        Readers that iterate the meter while store calls are in flight
        (record emission, fault reports, ``explain --analyze``) must use
        this instead of copying the dicts directly: an unlocked
        ``dict(...)`` can raise ``RuntimeError: dictionary changed size
        during iteration`` under concurrent sessions.
        """
        with self._lock:
            return {
                "queries_by_database": dict(self.queries_by_database),
                "objects_by_database": dict(self.objects_by_database),
                "failed_queries_by_database": dict(
                    self.failed_queries_by_database
                ),
            }

    @property
    def total_queries(self) -> int:
        with self._lock:
            return sum(self.queries_by_database.values())

    @property
    def total_objects(self) -> int:
        with self._lock:
            return sum(self.objects_by_database.values())


class ExecContext(ABC):
    """One logical thread of execution (main process or pool worker)."""

    #: Set by concrete contexts at construction.
    _runtime: "Runtime"
    #: The active span this context's operations are children of.
    _span_id: int | None = None
    #: The owning request's trace id (serving), stamped on every span
    #: this context records; ``None`` for classic single-run contexts.
    _trace_id: str | None = None
    #: Whether the most recent (fault-injected) store call returned a
    #: truncated result list; augmenters read this to keep truncated
    #: keys out of the ``missing`` (lazy-deletion) accounting.
    last_call_truncated: bool = False

    @property
    def cost_model(self):
        """The deployment profile's cost model (scalar access costs)."""
        return self._runtime.profile.cost_model

    @property
    def obs(self) -> Observability:
        """The runtime's tracer + metrics bundle."""
        return self._runtime.obs

    @property
    def accelerator(self):
        """The runtime's store-call accelerator, or ``None``.

        Connectors route ``multi_get`` fetches through it when present,
        so coalescing/hedging apply to every fetch of every concurrent
        request without the augmenters knowing.
        """
        return self._runtime.accelerator

    @property
    @abstractmethod
    def now(self) -> float:
        """Current local time, in seconds (virtual or wall)."""

    @abstractmethod
    def cpu(self, seconds: float) -> None:
        """Perform ``seconds`` of QUEPA-side CPU work."""

    @abstractmethod
    def store_call(
        self, database: str, fn: StoreOp, query: Any = None
    ) -> Sequence[Any]:
        """Execute one native query against ``database`` and charge it.

        ``query`` is the native query text/descriptor, used only for
        slow-query events — never executed or charged.
        """

    @abstractmethod
    def pool(self, workers: int) -> "WorkerPool":
        """Create a pool of ``workers`` logical threads."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Wait without consuming CPU (retry backoff, flap recovery).

        Virtual contexts advance their local clock without adding
        machine demand; real contexts sleep scaled wall time.
        """

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Trace a block as a span on this context's clock.

        Purely observational: no CPU or latency is charged. Nested
        ``span``/``store_call``/pool operations become children.
        """
        obs = self._runtime.obs
        entry = obs.tracer.begin(
            name, self.now, self._span_id, self._trace_id, **attrs
        )
        previous, self._span_id = self._span_id, entry.span_id
        try:
            yield entry
        finally:
            self._span_id = previous
            obs.tracer.end(entry, self.now)

    # -- shared instrumentation helpers --------------------------------------

    def _record_store_call(
        self,
        database: str,
        started: float,
        ended: float,
        objects: int,
        query: Any = None,
    ) -> None:
        runtime = self._runtime
        runtime.obs.tracer.record(
            "store_call",
            started,
            ended,
            self._span_id,
            self._trace_id,
            database=database,
            objects=objects,
        )
        queries, totals, seconds = runtime._store_instruments(database)
        queries.inc()
        totals.inc(objects)
        seconds.observe(ended - started)
        # Slow-query log: observational only (reads the clocks already
        # taken above, charges nothing), and a single None check when
        # disabled — the default — keeps it off the hot path.
        threshold = runtime.obs.slow_query_threshold
        if threshold is not None and ended - started >= threshold:
            runtime.obs.events.emit(
                "slow_query",
                severity="warning",
                ts=ended,
                database=database,
                query="" if query is None else str(query),
                elapsed_s=ended - started,
                objects=objects,
            )

    def _record_failed_call(
        self,
        database: str,
        started: float,
        ended: float,
        query: Any = None,
        injected: bool = False,
    ) -> None:
        """Instrument a store call that errored (no objects returned).

        Failed calls are kept out of ``store_queries_total`` (which
        counts answered queries) and the latency histogram; they get
        their own counter plus a ``store_call`` span flagged with
        ``error`` so traces show where time went while a store was
        misbehaving.
        """
        runtime = self._runtime
        runtime.obs.tracer.record(
            "store_call",
            started,
            ended,
            self._span_id,
            self._trace_id,
            database=database,
            objects=0,
            error=True,
        )
        runtime.obs.metrics.counter(
            "store_failures_total", database=database
        ).inc()
        runtime.obs.events.emit(
            "store_call_failed",
            severity="warning",
            ts=ended,
            database=database,
            query="" if query is None else str(query),
            injected=injected,
        )

    def _record_pool(
        self,
        started: float,
        ended: float,
        parent_span: int | None,
        workers: int,
        tasks: int,
    ) -> None:
        obs = self._runtime.obs
        obs.tracer.record(
            "pool",
            started,
            ended,
            parent_span,
            self._trace_id,
            workers=workers,
            tasks=tasks,
        )
        obs.metrics.histogram("pool_join_seconds").observe(ended - started)
        obs.metrics.counter("pool_tasks_total").inc(tasks)


class WorkerPool(ABC):
    """A fork-join pool: submit tasks, then join to collect results."""

    @abstractmethod
    def submit(self, task: Callable[[ExecContext], T]) -> None:
        """Schedule ``task``; it receives a fresh child context."""

    @abstractmethod
    def join(self) -> list[Any]:
        """Wait for all tasks; returns results in submission order."""


class Runtime(ABC):
    """Factory for the root execution context plus shared metering.

    ``meter`` and the tracer are per-run (reset by :meth:`root`);
    ``obs.metrics`` accumulates over the runtime's lifetime.
    """

    def __init__(self, profile: DeploymentProfile) -> None:
        self.profile = profile
        self.meter = QueryMeter()
        self.obs = Observability()
        #: Optional :class:`~repro.faults.FaultInjector`; when ``None``
        #: (the default) store calls take the plain hot path and the
        #: fault layer costs exactly one attribute check.
        self.faults = None
        #: Optional store-call accelerator (single-flight coalescing +
        #: hedging, :mod:`repro.serving.accel`). ``None`` by default:
        #: connectors check one attribute and take the plain path. The
        #: serving layer attaches one on :class:`RealRuntime` only —
        #: virtual-time runs must stay deterministic.
        self.accelerator = None
        #: Stable handle for the hot cpu() path (one lock, no lookup).
        self._cpu_seconds = self.obs.metrics.counter("cpu_seconds_total")
        self._pools_created = self.obs.metrics.counter("pools_created_total")
        #: Per-database instrument handles for the store_call hot path;
        #: one registry lookup per database for the runtime's lifetime.
        self._store_handles: dict[str, tuple] = {}

    def _store_instruments(self, database: str) -> tuple:
        """The (queries, objects, seconds) instruments for ``database``."""
        handles = self._store_handles.get(database)
        if handles is None:
            metrics = self.obs.metrics
            handles = (
                metrics.counter("store_queries_total", database=database),
                metrics.counter("store_objects_total", database=database),
                metrics.histogram("store_call_seconds", database=database),
            )
            self._store_handles[database] = handles
        return handles

    @abstractmethod
    def root(self) -> ExecContext:
        """The main-process context; also resets timing state."""

    @abstractmethod
    def request_context(
        self,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> ExecContext:
        """A fresh context for one served request.

        Unlike :meth:`root`, this does NOT reset the shared meter,
        tracer or run timer, so many requests can execute concurrently
        against one runtime (the serving layer's contract). Request
        durations are measured as ``ctx.now`` deltas on the returned
        context rather than via :attr:`elapsed`.

        ``trace_id`` attributes every span the context records to one
        served request; ``parent_span`` (usually the scheduler's root
        span) parents them, so a request's trace stays one tree across
        the serving thread handoff.
        """

    @property
    @abstractmethod
    def elapsed(self) -> float:
        """End-to-end duration of the last run, in seconds."""


# ---------------------------------------------------------------------------
# Virtual time implementation
# ---------------------------------------------------------------------------
#
# Tasks execute eagerly (plain Python calls) but keep a *local* virtual
# clock: CPU work and store roundtrips advance the local time and
# accumulate per-machine work demand. Worker pools place task starts with
# greedy list scheduling on their private worker slots (submission order
# is arrival order, so this is exact), and every pool join applies
# Graham's bound: the pool cannot finish before
#
#     max(latest task end, pool start + total demand(machine)/cores)
#
# for any machine its tasks used. This models both thread-level
# parallelism and CPU saturation ("speed-up until the core count, then
# flat", Section VII-B.b) without a full event-driven simulator, and is
# deterministic and independent of Python's execution interleaving.


class _VirtualContext(ExecContext):
    def __init__(self, runtime: "VirtualRuntime", start: float) -> None:
        self._runtime = runtime
        self._now = start
        #: machine name -> (cores, accumulated busy seconds)
        self.demand: dict[str, tuple[int, float]] = {}
        # cpu() runs once per cache probe; resolve the QUEPA machine and
        # the cpu-seconds counter once per context instead of per call.
        machine = runtime.profile.quepa_machine
        self._quepa_name = machine.name
        self._quepa_cores = machine.cores
        self._cpu_counter = runtime._cpu_seconds

    @property
    def now(self) -> float:
        return self._now

    def _add_demand(self, machine_name: str, cores: int, seconds: float) -> None:
        current = self.demand.get(machine_name)
        busy = seconds if current is None else current[1] + seconds
        self.demand[machine_name] = (cores, busy)

    def cpu(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self._now += seconds
        # Inlined _add_demand for the QUEPA machine: same accumulation
        # order (one float addition per call), fewer lookups.
        name = self._quepa_name
        current = self.demand.get(name)
        self.demand[name] = (
            self._quepa_cores,
            seconds if current is None else current[1] + seconds,
        )
        self._cpu_counter.inc(seconds)

    def store_call(
        self, database: str, fn: StoreOp, query: Any = None
    ) -> Sequence[Any]:
        if self._runtime.faults is not None:
            return self._injected_store_call(database, fn, query)
        started = self._now
        try:
            results = fn()
        except StoreError:
            self._charge_failed_call(database, started, query)
            raise
        n = len(results)
        profile = self._runtime.profile
        cost = profile.cost_model
        site = profile.site(database)
        service = cost.per_query_overhead + cost.per_object_service * n
        self._now += site.roundtrip + service
        self._add_demand(site.machine.name, site.machine.cores, service)
        self.cpu(cost.per_object_cpu * n)
        self._runtime.meter.record(database, n)
        self._record_store_call(database, started, self._now, n, query)
        return results

    def _charge_failed_call(
        self, database: str, started: float, query: Any, injected: bool = False
    ) -> None:
        """Charge and meter a store call that came back as an error.

        The error reply still crossed the network and was admitted by
        the engine, so the roundtrip and the per-query overhead are
        charged — only the per-object costs are not, since no objects
        were returned.
        """
        profile = self._runtime.profile
        cost = profile.cost_model
        site = profile.site(database)
        self._now += site.roundtrip + cost.per_query_overhead
        self._add_demand(
            site.machine.name, site.machine.cores, cost.per_query_overhead
        )
        self._runtime.meter.record_failure(database)
        self._record_failed_call(
            database, started, self._now, query, injected=injected
        )

    def _injected_store_call(
        self, database: str, fn: StoreOp, query: Any
    ) -> Sequence[Any]:
        """The store-call path with the fault injector armed."""
        runtime = self._runtime
        decision = runtime.faults.decide(database, self._now)
        self.last_call_truncated = False
        started = self._now
        if decision.extra_seconds:
            # A stall is pure added latency: the clock moves, no CPU.
            self._now += decision.extra_seconds
        if decision.action == "fail":
            self._charge_failed_call(database, started, query, injected=True)
            raise InjectedFaultError(
                f"{database}: injected fault (schedule seed "
                f"{runtime.faults.seed})"
            )
        try:
            results = fn()
        except StoreError:
            self._charge_failed_call(database, started, query)
            raise
        if decision.action == "truncate":
            results = list(results)
            kept = int(len(results) * decision.keep_fraction)
            if kept < len(results):
                runtime.faults.note_truncation(database, len(results) - kept)
                results = results[:kept]
                self.last_call_truncated = True
        n = len(results)
        profile = runtime.profile
        cost = profile.cost_model
        site = profile.site(database)
        service = cost.per_query_overhead + cost.per_object_service * n
        self._now += site.roundtrip + service
        self._add_demand(site.machine.name, site.machine.cores, service)
        self.cpu(cost.per_object_cpu * n)
        runtime.meter.record(database, n)
        self._record_store_call(database, started, self._now, n, query)
        return results

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            # Waiting occupies no cores: the local clock advances but
            # no machine demand accumulates (unlike cpu()).
            self._now += seconds

    def pool(self, workers: int) -> WorkerPool:
        # Setting up a pool costs the creating thread CPU (the paper's
        # "overhead of creating and synchronizing threads", VII-B.b).
        self.cpu(self._runtime.profile.cost_model.pool_create_overhead)
        self._runtime._pools_created.inc()
        return _VirtualPool(self._runtime, self, workers)

    def advance_to(self, timestamp: float) -> None:
        if timestamp > self._now:
            self._now = timestamp

    def merge_demand(self, other: "_VirtualContext") -> None:
        for machine_name, (cores, busy) in other.demand.items():
            self._add_demand(machine_name, cores, busy)


class _VirtualPool(WorkerPool):
    """Greedy list scheduling on private worker slots + Graham's bound."""

    def __init__(
        self, runtime: "VirtualRuntime", parent: _VirtualContext, workers: int
    ) -> None:
        self._runtime = runtime
        self._parent = parent
        self._workers = max(1, workers)
        self._slots = [parent.now] * self._workers
        self._start = parent.now
        self._results: list[Any] = []
        self._ends: list[float] = []
        self._children: list[_VirtualContext] = []

    def submit(self, task: Callable[[ExecContext], T]) -> None:
        cost = self._runtime.profile.cost_model
        # Spawning/synchronizing a thread costs the submitting thread CPU.
        self._parent.cpu(cost.thread_spawn_overhead)
        slot = min(range(len(self._slots)), key=self._slots.__getitem__)
        start = max(self._parent.now, self._slots[slot])
        child = _VirtualContext(self._runtime, start)
        child._span_id = self._parent._span_id
        child._trace_id = self._parent._trace_id
        result = task(child)
        self._slots[slot] = child.now
        self._results.append(result)
        self._ends.append(child.now)
        self._children.append(child)

    def join(self) -> list[Any]:
        end = max(self._ends) if self._ends else self._parent.now
        # Graham's bound per machine the tasks used.
        total: dict[str, tuple[int, float]] = {}
        for child in self._children:
            for machine_name, (cores, busy) in child.demand.items():
                current = total.get(machine_name)
                summed = busy if current is None else current[1] + busy
                total[machine_name] = (cores, summed)
        for cores, busy in total.values():
            end = max(end, self._start + busy / cores)
        self._parent.advance_to(end)
        for machine_name, (cores, busy) in total.items():
            self._parent._add_demand(machine_name, cores, busy)
        results = self._results
        tasks = len(results)
        self._results = []
        self._ends = []
        self._children = []
        self._parent._record_pool(
            self._start,
            self._parent.now,
            self._parent._span_id,
            self._workers,
            tasks,
        )
        return results


class VirtualRuntime(Runtime):
    """Deterministic virtual-time runtime used by the benchmark figures."""

    def __init__(self, profile: DeploymentProfile) -> None:
        super().__init__(profile)
        self._root: _VirtualContext | None = None

    def root(self) -> ExecContext:
        self.profile.reset()
        self.meter = QueryMeter()
        self.obs.tracer.reset()
        self._root = _VirtualContext(self, 0.0)
        return self._root

    def request_context(
        self,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> ExecContext:
        """A fresh virtual context at t=0 with no shared-state resets.

        Each served request gets its own local clock; the runtime's
        meter/tracer/metrics keep accumulating across requests.
        """
        ctx = _VirtualContext(self, 0.0)
        ctx._trace_id = trace_id
        ctx._span_id = parent_span
        return ctx

    @property
    def elapsed(self) -> float:
        if self._root is None:
            return 0.0
        return self._root.now


# ---------------------------------------------------------------------------
# Real-thread implementation
# ---------------------------------------------------------------------------


class _RealContext(ExecContext):
    def __init__(self, runtime: "RealRuntime") -> None:
        self._runtime = runtime

    @property
    def now(self) -> float:
        return time.monotonic()

    def cpu(self, seconds: float) -> None:
        if seconds > 0:
            if self._runtime.time_scale > 0:
                time.sleep(seconds * self._runtime.time_scale)
            self._runtime._cpu_seconds.inc(seconds)

    def store_call(
        self, database: str, fn: StoreOp, query: Any = None
    ) -> Sequence[Any]:
        started = self.now
        runtime = self._runtime
        profile = runtime.profile
        site = profile.site(database)
        if runtime.time_scale > 0:
            time.sleep(site.roundtrip * runtime.time_scale)
        decision = None
        if runtime.faults is not None:
            decision = runtime.faults.decide(database, self.now)
            self.last_call_truncated = False
            if decision.extra_seconds and runtime.time_scale > 0:
                time.sleep(decision.extra_seconds * runtime.time_scale)
            if decision.action == "fail":
                runtime.meter.record_failure(database)
                self._record_failed_call(
                    database, started, self.now, query, injected=True
                )
                raise InjectedFaultError(f"{database}: injected fault")
        try:
            results = fn()
        except StoreError:
            runtime.meter.record_failure(database)
            self._record_failed_call(database, started, self.now, query)
            raise
        if decision is not None and decision.action == "truncate":
            results = list(results)
            kept = int(len(results) * decision.keep_fraction)
            if kept < len(results):
                runtime.faults.note_truncation(database, len(results) - kept)
                results = results[:kept]
                self.last_call_truncated = True
        runtime.meter.record(database, len(results))
        self._record_store_call(
            database, started, self.now, len(results), query
        )
        return results

    def sleep(self, seconds: float) -> None:
        if seconds > 0 and self._runtime.time_scale > 0:
            time.sleep(seconds * self._runtime.time_scale)

    def pool(self, workers: int) -> WorkerPool:
        self.cpu(self._runtime.profile.cost_model.pool_create_overhead)
        self._runtime._pools_created.inc()
        return _RealPool(self._runtime, self, workers)


class _RealPool(WorkerPool):
    def __init__(
        self, runtime: "RealRuntime", parent: _RealContext, workers: int
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._runtime = runtime
        self._parent = parent
        self._workers = max(1, workers)
        self._started = parent.now
        self._executor = ThreadPoolExecutor(max_workers=self._workers)
        self._futures: list[Any] = []

    def submit(self, task: Callable[[ExecContext], T]) -> None:
        child = _RealContext(self._runtime)
        # Inherit the submitting context's active span and trace id
        # (read in the submitting thread, so the tree is race-free).
        child._span_id = self._parent._span_id
        child._trace_id = self._parent._trace_id
        self._futures.append(self._executor.submit(task, child))

    def join(self) -> list[Any]:
        results = [future.result() for future in self._futures]
        tasks = len(self._futures)
        self._futures = []
        self._executor.shutdown(wait=True)
        self._parent._record_pool(
            self._started,
            self._parent.now,
            self._parent._span_id,
            self._workers,
            tasks,
        )
        return results


class RealRuntime(Runtime):
    """Real threads, optional scaled sleeps (``time_scale=0`` disables)."""

    def __init__(self, profile: DeploymentProfile, time_scale: float = 0.0) -> None:
        super().__init__(profile)
        self.time_scale = time_scale
        self._started: float | None = None
        self._stopped = 0.0

    def root(self) -> ExecContext:
        self.meter = QueryMeter()
        self.obs.tracer.reset()
        self._started = time.monotonic()
        self._stopped = 0.0
        return _RealContext(self)

    def request_context(
        self,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> ExecContext:
        """A fresh wall-clock context with no shared-state resets."""
        ctx = _RealContext(self)
        ctx._trace_id = trace_id
        ctx._span_id = parent_span
        return ctx

    def stop(self) -> None:
        self._stopped = time.monotonic()

    @property
    def elapsed(self) -> float:
        if self._started is None:
            # Never ran: report zero rather than a huge negative number
            # (monotonic epoch minus nothing).
            return 0.0
        end = self._stopped or time.monotonic()
        return end - self._started
