"""Deployment, cost and execution model for the polystore testbed.

The paper's experiments run on real EC2 machines; here the same cost
structure (network roundtrips, per-query overhead, per-object service
time, CPU contention, thread spawn overhead) is modelled explicitly.

Two interchangeable execution backends drive the augmenters:

* :class:`~repro.network.executor.VirtualRuntime` — deterministic
  virtual time: store operations charge simulated durations and parallel
  work is placed with greedy list scheduling on capacity-limited
  resources. This is what the benchmark figures use.
* :class:`~repro.network.executor.RealRuntime` — real threads
  (``concurrent.futures``) with optional scaled-down real sleeps, used to
  check that every augmenter produces identical *answers* under genuine
  concurrency.
"""

from repro.network.clock import VirtualClock
from repro.network.executor import ExecContext, RealRuntime, Runtime, VirtualRuntime
from repro.network.latency import (
    CostModel,
    DeploymentProfile,
    Machine,
    StoreSite,
    centralized_profile,
    distributed_profile,
)

__all__ = [
    "CostModel",
    "DeploymentProfile",
    "ExecContext",
    "Machine",
    "RealRuntime",
    "Runtime",
    "StoreSite",
    "VirtualClock",
    "VirtualRuntime",
    "centralized_profile",
    "distributed_profile",
]
