"""QUEPA reproduction: augmented access for querying and exploring a polystore.

This package is a complete, from-scratch implementation of the system
described in *Maccioni & Torlone, "Augmented Access for Querying and
Exploring a Polystore", ICDE 2018* — the polystore data model, four
storage engines, the A' index, the augmentation operator, augmented
search/exploration, the optimized augmenters, the record-linkage
collector, the adaptive optimizer, and the middleware baselines of the
paper's evaluation.

Most applications only need::

    from repro import AIndex, GlobalKey, Polystore, PRelation, Quepa

plus a storage engine or the generated Polyphony workload. See
README.md for a tour and DESIGN.md for the module map.
"""

from repro.core.aindex import AIndex
from repro.core.augmentation import AugmentationConfig
from repro.core.search import AugmentedAnswer
from repro.core.system import Quepa
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.model.prelations import PRelation, RelationType

__version__ = "1.0.0"

__all__ = [
    "AIndex",
    "AugmentationConfig",
    "AugmentedAnswer",
    "AugmentedObject",
    "DataObject",
    "GlobalKey",
    "PRelation",
    "Polystore",
    "Quepa",
    "RelationType",
    "__version__",
]
