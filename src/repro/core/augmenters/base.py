"""Shared augmenter machinery: base class, registry, cache handling."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.core.augmentation import AugmentationConfig, AugmentationPlan, PlannedFetch
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.errors import (
    ConfigurationError,
    StoreUnavailableError,
    UnknownAugmenterError,
)
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.network.executor import ExecContext


@dataclass
class AugmentationOutcome:
    """What executing an augmentation plan produced."""

    objects: list[AugmentedObject] = field(default_factory=list)
    #: Keys planned but absent from the polystore (feed lazy deletion).
    #: Deduplicated across seeds by :meth:`Augmenter.execute`.
    missing: list[GlobalKey] = field(default_factory=list)
    cache_hits: int = 0
    queries_issued: int = 0
    #: Batch flushes that reached no store because the target database
    #: was down under ``skip_unavailable`` (not counted as issued).
    skipped_flushes: int = 0
    #: Databases skipped because they were unreachable (only populated
    #: when the configuration sets ``skip_unavailable``).
    unavailable_databases: tuple[str, ...] = ()
    #: Structured trace summary of the run (span counts/durations per
    #: kind), stamped by :meth:`Augmenter.execute`.
    trace: dict | None = None


class Augmenter(ABC):
    """Base class: plan in, materialized augmented objects out.

    ``execute`` is a template method: it validates the configuration,
    arms graceful degradation when requested, runs the strategy's
    ``_run``, and stamps the outcome with any stores found unreachable.
    Instances are single-use per query (Quepa creates one per search).
    """

    name = "abstract"

    def __init__(self, registry: ConnectorRegistry, cache: LruCache) -> None:
        self.registry = registry
        self.cache = cache
        self._skip_unavailable = False
        #: Databases that raised StoreUnavailableError (append-only;
        #: list.append is atomic, so worker threads may share it).
        self._unavailable: list[str] = []
        #: Per-probe CPU charge; resolved per run by :meth:`execute` so
        #: _probe_cache skips the cost-model attribute chase.
        self._probe_cost = 0.0

    def execute(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        """Materialize every planned fetch from the polystore."""
        validate_config(config)
        self._skip_unavailable = config.skip_unavailable
        self._unavailable = []
        # The probe loop runs once per planned fetch; per-probe metric
        # increments (registry lookup + counter lock, three per probe)
        # dwarf the cache probe itself. The shard counters inside the
        # cache already count every probe under their shard lock, so the
        # obs counters are published once per run from the stats delta.
        self._probe_cost = ctx.cost_model.cache_probe_cost
        before = self.cache.stats()
        outcome = self._run(ctx, plan, config)
        after = self.cache.stats()
        metrics = ctx.obs.metrics
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        if hits or misses:
            metrics.counter("cache_probes_total").inc(hits + misses)
            metrics.counter("cache_hits_total").inc(hits)
            metrics.counter("cache_misses_total").inc(misses)
        outcome.unavailable_databases = tuple(sorted(set(self._unavailable)))
        # The same absent key is appended once per seed that planned it;
        # deduplicate so lazy deletion does each removal exactly once.
        outcome.missing = list(dict.fromkeys(outcome.missing))
        outcome.trace = ctx.obs.trace_summary()
        return outcome

    @abstractmethod
    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        """The strategy body; helpers below do the actual fetching."""

    # -- helpers shared by strategies ---------------------------------------

    def _probe_cache(
        self, ctx: ExecContext, fetch: PlannedFetch
    ) -> AugmentedObject | None:
        """Cache lookup with its (small) CPU cost charged.

        Hit/miss accounting happens inside the cache's shard counters;
        :meth:`execute` publishes the per-run delta to the obs metrics.
        """
        ctx.cpu(self._probe_cost)
        cached = self.cache.get(fetch.key)
        if cached is None:
            return None
        return _augmented(cached, fetch)

    def _fetch_single(
        self, ctx: ExecContext, fetch: PlannedFetch, outcome_missing: list[GlobalKey]
    ) -> AugmentedObject | None:
        """One direct-access query for one planned fetch (cache-aside)."""
        connector = self.registry.connector(fetch.key.database)
        with ctx.span("fetch", database=fetch.key.database) as span:
            try:
                obj = connector.fetch_one(ctx, fetch.key)
            except StoreUnavailableError:
                if not self._skip_unavailable:
                    raise
                self._unavailable.append(fetch.key.database)
                span.attrs["skipped"] = True
                ctx.obs.metrics.counter(
                    "store_unavailable_skips_total",
                    database=fetch.key.database,
                ).inc()
                return None
            span.attrs["found"] = obj is not None
        if obj is None:
            outcome_missing.append(fetch.key)
            return None
        self.cache.put(obj)
        return _augmented(obj, fetch)

    def _fetch_group(
        self,
        ctx: ExecContext,
        database: str,
        group: list[PlannedFetch],
        outcome_missing: list[GlobalKey],
    ) -> list[AugmentedObject]:
        """One batch query for a per-database group of planned fetches."""
        unique_keys = list(dict.fromkeys(fetch.key for fetch in group))
        connector = self.registry.connector(database)
        with ctx.span(
            "fetch_group", database=database, keys=len(unique_keys)
        ) as span:
            try:
                objects = connector.fetch_many(ctx, unique_keys)
            except StoreUnavailableError:
                if not self._skip_unavailable:
                    raise
                self._unavailable.append(database)
                span.attrs["skipped"] = True
                ctx.obs.metrics.counter(
                    "store_unavailable_skips_total", database=database
                ).inc()
                return []
            span.attrs["found"] = len(objects)
        by_key = {obj.key: obj for obj in objects}
        for obj in objects:
            self.cache.put(obj)
        results: list[AugmentedObject] = []
        seen_missing: set[GlobalKey] = set()
        for fetch in group:
            obj = by_key.get(fetch.key)
            if obj is None:
                if fetch.key not in seen_missing:
                    seen_missing.add(fetch.key)
                    outcome_missing.append(fetch.key)
                continue
            results.append(_augmented(obj, fetch))
        return results


def _augmented(obj: DataObject, fetch: PlannedFetch) -> AugmentedObject:
    return AugmentedObject(
        obj.with_probability(fetch.probability),
        source=fetch.seed,
        path=fetch.path,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[ConnectorRegistry, LruCache], Augmenter]] = {}


def register_augmenter(
    name: str,
) -> Callable[[type[Augmenter]], type[Augmenter]]:
    def decorator(cls: type[Augmenter]) -> type[Augmenter]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_augmenters() -> list[str]:
    """Names of the registered strategies (the optimizer's choices)."""
    return sorted(_REGISTRY)


def make_augmenter(
    name: str, registry: ConnectorRegistry, cache: LruCache
) -> Augmenter:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownAugmenterError(
            f"unknown augmenter {name!r}; available: {available_augmenters()}"
        ) from None
    return factory(registry, cache)


def validate_config(config: AugmentationConfig) -> None:
    if config.batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {config.batch_size}")
    if config.threads_size < 1:
        raise ConfigurationError(
            f"threads_size must be >= 1, got {config.threads_size}"
        )
    if config.cache_size < 0:
        raise ConfigurationError(f"cache_size must be >= 0, got {config.cache_size}")
