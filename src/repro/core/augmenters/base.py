"""Shared augmenter machinery: base class, registry, cache handling."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.core.augmentation import AugmentationConfig, AugmentationPlan, PlannedFetch
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.errors import (
    ConfigurationError,
    StoreUnavailableError,
    TimeoutExceeded,
    UnknownAugmenterError,
)
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.network.executor import ExecContext


@dataclass
class AugmentationOutcome:
    """What executing an augmentation plan produced."""

    objects: list[AugmentedObject] = field(default_factory=list)
    #: Keys planned but absent from the polystore (feed lazy deletion).
    #: Deduplicated across seeds by :meth:`Augmenter.execute`.
    missing: list[GlobalKey] = field(default_factory=list)
    cache_hits: int = 0
    queries_issued: int = 0
    #: Batch flushes that reached no store because the target database
    #: was down under ``skip_unavailable`` (not counted as issued).
    skipped_flushes: int = 0
    #: Databases skipped because they were unreachable (only populated
    #: when the configuration sets ``skip_unavailable``).
    unavailable_databases: tuple[str, ...] = ()
    #: True iff a fault cost this run planned objects: some planned key
    #: is neither in ``objects`` nor (genuinely) ``missing``. A flaky
    #: store whose every fetch succeeded on retry does *not* degrade.
    degraded: bool = False
    #: Database -> reason for every store that misbehaved during the
    #: run (unavailable, truncated results, timeout budget), whether or
    #: not objects were ultimately lost.
    errors: dict[str, str] = field(default_factory=dict)
    #: Structured trace summary of the run (span counts/durations per
    #: kind), stamped by :meth:`Augmenter.execute`.
    trace: dict | None = None


class Augmenter(ABC):
    """Base class: plan in, materialized augmented objects out.

    ``execute`` is a template method: it validates the configuration,
    arms graceful degradation when requested, runs the strategy's
    ``_run``, and stamps the outcome with any stores found unreachable.
    Instances are single-use per query (Quepa creates one per search).
    """

    name = "abstract"

    def __init__(self, registry: ConnectorRegistry, cache: LruCache) -> None:
        self.registry = registry
        self.cache = cache
        self._skip_unavailable = False
        #: Databases that raised StoreUnavailableError (append-only;
        #: list.append is atomic, so worker threads may share it).
        self._unavailable: list[str] = []
        #: Database -> reason for every fault seen this run (dict item
        #: assignment is atomic, so worker threads may share it).
        self._errors: dict[str, str] = {}
        #: Virtual deadline of this run (``None`` = no timeout budget).
        self._deadline: float | None = None
        self._budget_exceeded = False
        #: Fetches barred by the timeout budget (parent thread reads the
        #: delta to keep them out of ``queries_issued``).
        self._budget_skips = 0
        #: Per-probe CPU charge; resolved per run by :meth:`execute` so
        #: _probe_cache skips the cost-model attribute chase.
        self._probe_cost = 0.0

    def execute(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        """Materialize every planned fetch from the polystore."""
        validate_config(config)
        self._skip_unavailable = config.skip_unavailable
        self._unavailable = []
        self._errors = {}
        self._budget_exceeded = False
        self._budget_skips = 0
        self._deadline = (
            ctx.now + config.timeout_budget
            if config.timeout_budget is not None
            else None
        )
        # The probe loop runs once per planned fetch; per-probe metric
        # increments (registry lookup + counter lock, three per probe)
        # dwarf the cache probe itself. The shard counters inside the
        # cache already count every probe under their shard lock, so the
        # obs counters are published once per run from the stats delta.
        self._probe_cost = ctx.cost_model.cache_probe_cost
        before = self.cache.stats()
        outcome = self._run(ctx, plan, config)
        after = self.cache.stats()
        metrics = ctx.obs.metrics
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        if hits or misses:
            metrics.counter("cache_probes_total").inc(hits + misses)
            metrics.counter("cache_hits_total").inc(hits)
            metrics.counter("cache_misses_total").inc(misses)
        outcome.unavailable_databases = tuple(sorted(set(self._unavailable)))
        # The same absent key is appended once per seed that planned it;
        # deduplicate so lazy deletion does each removal exactly once.
        outcome.missing = list(dict.fromkeys(outcome.missing))
        outcome.errors = dict(sorted(self._errors.items()))
        if outcome.errors:
            # Degraded iff a fault actually cost us objects: planned
            # keys that neither materialized nor were found genuinely
            # absent. A retried-then-successful fetch, or a skipped
            # store whose keys all arrived via another route, leaves
            # the answer complete — errors are reported, but the
            # outcome is not degraded.
            planned = {fetch.key for fetch in plan.all_fetches()}
            got = {entry.key for entry in outcome.objects}
            lost = planned - got - set(outcome.missing)
            outcome.degraded = bool(lost)
        outcome.trace = ctx.obs.trace_summary()
        return outcome

    @abstractmethod
    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        """The strategy body; helpers below do the actual fetching."""

    # -- helpers shared by strategies ---------------------------------------

    def _probe_cache(
        self, ctx: ExecContext, fetch: PlannedFetch
    ) -> AugmentedObject | None:
        """Cache lookup with its (small) CPU cost charged.

        Hit/miss accounting happens inside the cache's shard counters;
        :meth:`execute` publishes the per-run delta to the obs metrics.
        """
        ctx.cpu(self._probe_cost)
        cached = self.cache.get(fetch.key)
        if cached is None:
            return None
        return _augmented(cached, fetch)

    def _over_budget(self, ctx: ExecContext, database: str) -> bool:
        """True when the timeout budget bars any further store calls.

        The first exhausted check emits a ``timeout_budget_exceeded``
        event; every barred database lands in the run's error report
        and is counted as skipped (the store was never contacted).
        """
        deadline = self._deadline
        if deadline is None or ctx.now < deadline:
            return False
        if not self._skip_unavailable:
            # Strict mode: an exhausted budget is an error, not a
            # silently smaller answer.
            raise TimeoutExceeded(
                f"augmentation timeout budget exhausted at t={ctx.now:.6f}s "
                f"(deadline {deadline:.6f}s)"
            )
        if not self._budget_exceeded:
            self._budget_exceeded = True
            ctx.obs.events.emit(
                "timeout_budget_exceeded",
                severity="warning",
                ts=ctx.now,
                deadline=deadline,
            )
        self._budget_skips += 1
        self._note_fault(ctx, database, "timeout budget exceeded")
        return True

    def _note_fault(
        self, ctx: ExecContext, database: str, reason: str
    ) -> None:
        """Record one skipped/degraded database for this run."""
        self._unavailable.append(database)
        self._errors.setdefault(database, reason)
        ctx.obs.metrics.counter(
            "store_unavailable_skips_total", database=database
        ).inc()

    def _fetch_single(
        self, ctx: ExecContext, fetch: PlannedFetch, outcome_missing: list[GlobalKey]
    ) -> AugmentedObject | None:
        """One direct-access query for one planned fetch (cache-aside)."""
        database = fetch.key.database
        if self._over_budget(ctx, database):
            return None
        connector = self.registry.connector(database)
        with ctx.span("fetch", database=database) as span:
            try:
                obj = connector.fetch_one(ctx, fetch.key)
            except StoreUnavailableError as exc:
                if not self._skip_unavailable:
                    raise
                self._note_fault(ctx, database, f"unavailable: {exc}")
                span.attrs["skipped"] = True
                return None
            span.attrs["found"] = obj is not None
        if obj is None:
            if getattr(ctx, "last_call_truncated", False):
                # The store dropped the tail of the reply: the object
                # may well exist, so it must not feed lazy deletion.
                self._errors.setdefault(database, "truncated results")
                return None
            outcome_missing.append(fetch.key)
            return None
        self.cache.put(obj)
        return _augmented(obj, fetch)

    def _fetch_group(
        self,
        ctx: ExecContext,
        database: str,
        group: list[PlannedFetch],
        outcome_missing: list[GlobalKey],
    ) -> list[AugmentedObject]:
        """One batch query for a per-database group of planned fetches."""
        if self._over_budget(ctx, database):
            return []
        unique_keys = list(dict.fromkeys(fetch.key for fetch in group))
        connector = self.registry.connector(database)
        with ctx.span(
            "fetch_group", database=database, keys=len(unique_keys)
        ) as span:
            try:
                objects = connector.fetch_many(ctx, unique_keys)
            except StoreUnavailableError as exc:
                if not self._skip_unavailable:
                    raise
                self._note_fault(ctx, database, f"unavailable: {exc}")
                span.attrs["skipped"] = True
                return []
            span.attrs["found"] = len(objects)
        # A truncated reply dropped the tail of the batch: the absent
        # keys may well exist, so they must not feed lazy deletion
        # (partial batches count only the objects actually returned).
        truncated = getattr(ctx, "last_call_truncated", False)
        if truncated:
            self._errors.setdefault(database, "truncated results")
        by_key = {obj.key: obj for obj in objects}
        for obj in objects:
            self.cache.put(obj)
        results: list[AugmentedObject] = []
        seen_missing: set[GlobalKey] = set()
        for fetch in group:
            obj = by_key.get(fetch.key)
            if obj is None:
                if not truncated and fetch.key not in seen_missing:
                    seen_missing.add(fetch.key)
                    outcome_missing.append(fetch.key)
                continue
            results.append(_augmented(obj, fetch))
        return results


def _augmented(obj: DataObject, fetch: PlannedFetch) -> AugmentedObject:
    return AugmentedObject(
        obj.with_probability(fetch.probability),
        source=fetch.seed,
        path=fetch.path,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[ConnectorRegistry, LruCache], Augmenter]] = {}


def register_augmenter(
    name: str,
) -> Callable[[type[Augmenter]], type[Augmenter]]:
    def decorator(cls: type[Augmenter]) -> type[Augmenter]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_augmenters() -> list[str]:
    """Names of the registered strategies (the optimizer's choices)."""
    return sorted(_REGISTRY)


def make_augmenter(
    name: str, registry: ConnectorRegistry, cache: LruCache
) -> Augmenter:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownAugmenterError(
            f"unknown augmenter {name!r}; available: {available_augmenters()}"
        ) from None
    return factory(registry, cache)


def validate_config(config: AugmentationConfig) -> None:
    if config.batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {config.batch_size}")
    if config.threads_size < 1:
        raise ConfigurationError(
            f"threads_size must be >= 1, got {config.threads_size}"
        )
    if config.cache_size < 0:
        raise ConfigurationError(f"cache_size must be >= 0, got {config.cache_size}")
    if config.timeout_budget is not None and config.timeout_budget <= 0:
        raise ConfigurationError(
            f"timeout_budget must be > 0, got {config.timeout_budget}"
        )
