"""Augmenter execution strategies (Section IV of the paper).

Six strategies, one per subsection:

===============  ==========================================================
``sequential``   one direct-access query per planned object
``batch``        per-database key groups flushed at ``BATCH_SIZE`` (IV-A)
``inner``        parallel fetches *within* each result's augmentation (IV-B.a)
``outer``        one worker per result of the original answer (IV-B.b)
``outer_batch``  workers consume ``BATCH_SIZE`` key groups as the main
                 process keeps filling them (IV-B.c)
``outer_inner``  half the threads across results, half within (IV-B.d)
===============  ==========================================================

All strategies share the LRU cache (IV-C) and produce identical answers;
they differ only in how many native queries they issue and how those
queries overlap in time.
"""

from repro.core.augmenters.base import (
    AugmentationOutcome,
    Augmenter,
    available_augmenters,
    make_augmenter,
)
from repro.core.augmenters.strategies import (
    BatchAugmenter,
    InnerAugmenter,
    OuterAugmenter,
    OuterBatchAugmenter,
    OuterInnerAugmenter,
    SequentialAugmenter,
)

__all__ = [
    "AugmentationOutcome",
    "Augmenter",
    "BatchAugmenter",
    "InnerAugmenter",
    "OuterAugmenter",
    "OuterBatchAugmenter",
    "OuterInnerAugmenter",
    "SequentialAugmenter",
    "available_augmenters",
    "make_augmenter",
]
