"""The six augmenter strategies of Section IV.

All strategies materialize the same :class:`AugmentationPlan`; they
differ in how planned fetches are grouped into native queries and how
those queries are spread over worker threads. Figure 6 of the paper is
the picture to keep in mind: the sequential augmenter issues 11 queries
for 11 objects, BATCH with ``BATCH_SIZE=4`` issues 5.
"""

from __future__ import annotations

from repro.core.augmentation import AugmentationConfig, AugmentationPlan, PlannedFetch
from repro.core.augmenters.base import (
    AugmentationOutcome,
    Augmenter,
    register_augmenter,
)
from repro.model.objects import AugmentedObject, GlobalKey
from repro.network.executor import ExecContext


@register_augmenter("sequential")
class SequentialAugmenter(Augmenter):
    """One direct-access query per planned object, in seed order.

    The baseline of Fig 6(a); the other strategies are measured against
    it. It is also the winner for tiny queries on small polystores,
    where thread spawn overhead dominates (Section VII-B.b).
    """

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        for fetch in plan.all_fetches():
            self._resolve_one(ctx, fetch, outcome)
        return outcome

    def _resolve_one(
        self, ctx: ExecContext, fetch: PlannedFetch, outcome: AugmentationOutcome
    ) -> None:
        hit = self._probe_cache(ctx, fetch)
        if hit is not None:
            outcome.cache_hits += 1
            outcome.objects.append(hit)
            return
        # A fetch barred by the timeout budget never reached a store:
        # count it as skipped, not as an issued query (parent thread
        # only, so the counter delta is race-free here).
        skips_before = self._budget_skips
        obj = self._fetch_single(ctx, fetch, outcome.missing)
        if self._budget_skips > skips_before:
            outcome.skipped_flushes += 1
        else:
            outcome.queries_issued += 1
        if obj is not None:
            outcome.objects.append(obj)


@register_augmenter("batch")
class BatchAugmenter(Augmenter):
    """Group global keys by target database; flush groups of
    ``BATCH_SIZE`` keys as one native query each (Section IV-A)."""

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        groups: dict[str, list[PlannedFetch]] = {}
        for fetch in plan.all_fetches():
            hit = self._probe_cache(ctx, fetch)
            if hit is not None:
                outcome.cache_hits += 1
                outcome.objects.append(hit)
                continue
            group = groups.setdefault(fetch.key.database, [])
            group.append(fetch)
            if len(group) >= config.batch_size:
                self._flush(ctx, fetch.key.database, group, outcome)
                groups[fetch.key.database] = []
        for database, group in groups.items():
            if group:
                self._flush(ctx, database, group, outcome)
        return outcome

    def _flush(
        self,
        ctx: ExecContext,
        database: str,
        group: list[PlannedFetch],
        outcome: AugmentationOutcome,
    ) -> None:
        # A flush that was swallowed by skip_unavailable issued nothing:
        # count it as skipped, not as a query, or the optimizer trains on
        # phantom store traffic. _fetch_group records the skip by
        # appending the database to self._unavailable (parent thread
        # only, so the length check is race-free here).
        skips_before = len(self._unavailable)
        outcome.objects.extend(
            self._fetch_group(ctx, database, group, outcome.missing)
        )
        if len(self._unavailable) > skips_before:
            outcome.skipped_flushes += 1
        else:
            outcome.queries_issued += 1


@register_augmenter("inner")
class InnerAugmenter(Augmenter):
    """Parallelize *within* each result's augmentation (Section IV-B.a).

    The main process walks the original answer sequentially; the fetches
    of each result are spread over ``THREADS_SIZE`` workers. Best suited
    to augmented exploration, where a single object is augmented at a
    time; worst for big answers, since parallelism is bounded by each
    result's (usually small) augmentation.
    """

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        for seed in plan.seeds:
            fetches = plan.fetches_by_seed.get(seed, [])
            if not fetches:
                continue
            # The pool is created lazily on the first cache miss: a seed
            # whose fetches all hit cache pays neither pool setup nor an
            # empty join.
            pool = None
            pending = 0
            for fetch in fetches:
                hit = self._probe_cache(ctx, fetch)
                if hit is not None:
                    outcome.cache_hits += 1
                    outcome.objects.append(hit)
                    continue
                if pool is None:
                    pool = ctx.pool(config.threads_size)
                pool.submit(self._worker(fetch))
                pending += 1
            if pool is not None:
                for obj, missing_key in pool.join():
                    self._collect(outcome, obj, missing_key)
            outcome.queries_issued += pending
        return outcome

    def _worker(self, fetch: PlannedFetch):
        def task(child: ExecContext):
            missing: list[GlobalKey] = []
            obj = self._fetch_single(child, fetch, missing)
            return obj, (missing[0] if missing else None)

        return task

    @staticmethod
    def _collect(
        outcome: AugmentationOutcome,
        obj: AugmentedObject | None,
        missing_key: GlobalKey | None,
    ) -> None:
        if obj is not None:
            outcome.objects.append(obj)
        if missing_key is not None:
            outcome.missing.append(missing_key)


@register_augmenter("outer")
class OuterAugmenter(Augmenter):
    """One worker per result of the original answer (Section IV-B.b).

    The main process launches a task per seed without waiting; each task
    retrieves that seed's objects sequentially.
    """

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        if plan.total_fetches() == 0:
            # Empty plan: nothing to submit, so skip pool setup + join.
            return outcome
        pool = ctx.pool(config.threads_size)
        for seed in plan.seeds:
            fetches = plan.fetches_by_seed.get(seed, [])
            if fetches:
                pool.submit(self._seed_worker(fetches))
        for objects, missing, hits, queries in pool.join():
            outcome.objects.extend(objects)
            outcome.missing.extend(missing)
            outcome.cache_hits += hits
            outcome.queries_issued += queries
        return outcome

    def _seed_worker(self, fetches: list[PlannedFetch]):
        def task(child: ExecContext):
            objects: list[AugmentedObject] = []
            missing: list[GlobalKey] = []
            hits = 0
            queries = 0
            for fetch in fetches:
                hit = self._probe_cache(child, fetch)
                if hit is not None:
                    hits += 1
                    objects.append(hit)
                    continue
                obj = self._fetch_single(child, fetch, missing)
                queries += 1
                if obj is not None:
                    objects.append(obj)
            return objects, missing, hits, queries

        return task


@register_augmenter("outer_batch")
class OuterBatchAugmenter(Augmenter):
    """Batching plus multi-threading (Section IV-B.c).

    The main process keeps filling per-database groups of ``BATCH_SIZE``
    keys; each full group is handed to a worker, so group filling and
    query execution overlap. The paper's overall winner.
    """

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        if plan.total_fetches() == 0:
            # Empty plan: nothing to submit, so skip pool setup + join.
            return outcome
        pool = ctx.pool(config.threads_size)
        groups: dict[str, list[PlannedFetch]] = {}
        submitted = 0
        for fetch in plan.all_fetches():
            hit = self._probe_cache(ctx, fetch)
            if hit is not None:
                outcome.cache_hits += 1
                outcome.objects.append(hit)
                continue
            group = groups.setdefault(fetch.key.database, [])
            group.append(fetch)
            if len(group) >= config.batch_size:
                pool.submit(self._group_worker(fetch.key.database, group))
                submitted += 1
                groups[fetch.key.database] = []
        for database, group in groups.items():
            if group:
                pool.submit(self._group_worker(database, group))
                submitted += 1
        for objects, missing in pool.join():
            outcome.objects.extend(objects)
            outcome.missing.extend(missing)
        outcome.queries_issued += submitted
        return outcome

    def _group_worker(self, database: str, group: list[PlannedFetch]):
        def task(child: ExecContext):
            missing: list[GlobalKey] = []
            objects = self._fetch_group(child, database, group, missing)
            return objects, missing

        return task


@register_augmenter("outer_inner")
class OuterInnerAugmenter(Augmenter):
    """Both levels of parallelism (Section IV-B.d).

    ``THREADS_SIZE / 2`` workers iterate the original answer; each runs
    an inner pool of ``THREADS_SIZE / 2`` workers for its fetches. Tends
    to create many threads, which is exactly the behaviour the paper
    reports.
    """

    def _run(
        self,
        ctx: ExecContext,
        plan: AugmentationPlan,
        config: AugmentationConfig,
    ) -> AugmentationOutcome:
        outcome = AugmentationOutcome()
        half = max(1, config.threads_size // 2)
        pool = ctx.pool(half)
        for seed in plan.seeds:
            fetches = plan.fetches_by_seed.get(seed, [])
            if fetches:
                pool.submit(self._seed_worker(fetches, half))
        for objects, missing, hits, queries in pool.join():
            outcome.objects.extend(objects)
            outcome.missing.extend(missing)
            outcome.cache_hits += hits
            outcome.queries_issued += queries
        return outcome

    def _seed_worker(self, fetches: list[PlannedFetch], inner_threads: int):
        def task(child: ExecContext):
            objects: list[AugmentedObject] = []
            missing: list[GlobalKey] = []
            hits = 0
            queries = 0
            inner_pool = child.pool(inner_threads)
            for fetch in fetches:
                hit = self._probe_cache(child, fetch)
                if hit is not None:
                    hits += 1
                    objects.append(hit)
                    continue
                inner_pool.submit(self._fetch_worker(fetch))
                queries += 1
            for obj, missing_key in inner_pool.join():
                if obj is not None:
                    objects.append(obj)
                if missing_key is not None:
                    missing.append(missing_key)
            return objects, missing, hits, queries

        return task

    def _fetch_worker(self, fetch: PlannedFetch):
        def task(grandchild: ExecContext):
            missing: list[GlobalKey] = []
            obj = self._fetch_single(grandchild, fetch, missing)
            return obj, (missing[0] if missing else None)

        return task
