"""Connectors: native key access to each store engine (Section III-A).

A connector knows how to turn "fetch these global keys" into the most
efficient *native* operation of its engine — a ``WHERE pk IN (...)``
for the relational store, a ``$in`` filter for the document store, MGET
for the key-value store, node lookups for the graph store. All cost
accounting flows through the :class:`~repro.network.executor.ExecContext`
so both runtimes (virtual and real) see every roundtrip.

Missing objects are reported back so the caller can trigger the lazy
A' index deletion.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.objects import DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.network.executor import ExecContext
from repro.stores.base import Store


class Connector:
    """Key-based access to one database of the polystore.

    With a :class:`~repro.faults.ResilienceManager` attached, every
    fetch goes through its retry + circuit-breaker policy; without one
    (the default) fetches hit ``ctx.store_call`` directly, so the
    fault-free hot path is unchanged.
    """

    def __init__(
        self, database: str, store: Store, resilience=None
    ) -> None:
        self.database = database
        self.store = store
        self.resilience = resilience

    def fetch_one(self, ctx: ExecContext, key: GlobalKey) -> DataObject | None:
        """One direct-access query for a single object."""
        # ``query`` is only stringified if a slow-query event fires, so
        # pass the key itself rather than formatting on the hot path.
        op = lambda: self._get_list(key)  # noqa: E731
        accelerator = ctx.accelerator
        if accelerator is not None:
            results = accelerator.fetch_many(
                ctx,
                self.database,
                (key,),
                lambda c: self._issue(c, op, key),
            )
        else:
            results = self._issue(ctx, op, key)
        return results[0] if results else None

    def fetch_many(
        self, ctx: ExecContext, keys: Sequence[GlobalKey]
    ) -> list[DataObject]:
        """One native batch query for several objects.

        This is the primitive the BATCH family of augmenters relies on:
        however many keys are in the group, it costs a single roundtrip.
        With a store-call accelerator attached to the runtime (the
        serving layer does this), the roundtrip may additionally be
        coalesced with an identical concurrent fetch or hedged with a
        backup call — either way the cache/faults/obs layers still see
        exactly one logical call per physical roundtrip.
        """
        if not keys:
            return []
        op = lambda: self._multi_get(keys)  # noqa: E731
        query = ("multi_get", len(keys))
        accelerator = ctx.accelerator
        if accelerator is not None:
            return list(
                accelerator.fetch_many(
                    ctx,
                    self.database,
                    keys,
                    lambda c: self._issue(c, op, query),
                )
            )
        return list(self._issue(ctx, op, query))

    def _issue(self, ctx: ExecContext, op, query) -> Sequence[DataObject]:
        """One physical store call, through resilience when attached."""
        if self.resilience is not None:
            return self.resilience.call(ctx, self.database, op, query=query)
        return ctx.store_call(self.database, op, query=query)

    def _get_list(self, key: GlobalKey) -> list[DataObject]:
        # Single fetches ride the same native batch protocol as groups
        # (a one-key IN / $in / MGET): one code path per engine, and
        # missing keys come back as an empty list rather than an
        # exception crossing the store boundary.
        return self._multi_get((key,))

    def _multi_get(self, keys: Sequence[GlobalKey]) -> list[DataObject]:
        # Every key fetch holds the store's engine lock: the engines are
        # unsynchronized in-memory structures, and serving-layer writers
        # may be mutating them between (never during) reads.
        with self.store.lock:
            return self.store.multi_get(keys)


def _make_connector(database: str, store: Store, resilience) -> Connector:
    """The connector class appropriate for one store.

    Sharded stores get the scatter-gather connector (parallel per-shard
    ``multi_get`` with partition pruning); plain stores keep the base
    connector, so the unsharded hot path is byte-for-byte unchanged.
    """
    if getattr(store, "sharded", False):
        from repro.sharding.connector import ShardConnector

        return ShardConnector(database, store, resilience)
    return Connector(database, store, resilience)


class ConnectorRegistry:
    """Connectors for every database of a polystore."""

    def __init__(self, polystore: Polystore, resilience=None) -> None:
        self.polystore = polystore
        self.resilience = resilience
        self._connectors = {
            name: _make_connector(name, store, resilience)
            for name, store in polystore.databases.items()
        }

    def connector(self, database: str) -> Connector:
        current = self.polystore.database(database)
        cached = self._connectors.get(database)
        if cached is None or cached.store is not current:
            # The polystore may have grown, or the store may have been
            # detached and re-attached (e.g. recovery after an outage).
            cached = _make_connector(database, current, self.resilience)
            self._connectors[database] = cached
        return cached

    def fetch_grouped(
        self, ctx: ExecContext, keys: Sequence[GlobalKey]
    ) -> tuple[list[DataObject], list[GlobalKey]]:
        """Fetch keys grouped per database (one batch query each).

        Returns ``(found, missing)``; ``missing`` keys feed the lazy
        deletion in the A' index.
        """
        by_database: dict[str, list[GlobalKey]] = {}
        for key in keys:
            by_database.setdefault(key.database, []).append(key)
        found: list[DataObject] = []
        for database, db_keys in by_database.items():
            found.extend(self.connector(database).fetch_many(ctx, db_keys))
        found_keys = {obj.key for obj in found}
        missing = [key for key in keys if key not in found_keys]
        return found, missing
