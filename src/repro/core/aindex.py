"""The A' index: a graph of p-relations over global keys (Section III-B).

Each global key is a node; edges carry the relation type (identity or
matching) and its probability. The index enforces the paper's
Consistency Condition at insertion time (Section III-C):

* adding an identity ``a ~ b`` materializes, by transitivity, an
  identity between ``a`` and every identity-neighbour of ``b`` (and vice
  versa), with probability equal to the product along the two edges
  (Example 7: 0.8 x 0.85 -> 0.68);
* since ``x = b`` and ``b ~ a`` must imply ``x = a``, matching edges are
  propagated across new identity edges the same way.

Deletions are lazy: an object found missing during augmentation is
dropped with :meth:`AIndex.remove_object`. Every *inferred* edge records
its two supporting edges (lineage), enabling the cascading deletion the
paper lists as future work (:meth:`AIndex.remove_relation` with
``cascade=True``).

The index carries a monotonically increasing ``generation`` counter,
bumped on every successful mutation. :meth:`AIndex.frozen` returns a
cached :class:`~repro.core.compressed.FrozenAIndex` CSR snapshot of the
current generation, rebuilding it only when the live index has changed
since the last freeze — this is what lets the augmentation planner scan
a compact read-only snapshot by default while lazy deletions still
invalidate it transparently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One edge out of a node: the other endpoint, type, probability."""

    key: GlobalKey
    type: RelationType
    probability: float


def _pair(a: GlobalKey, b: GlobalKey) -> tuple[GlobalKey, GlobalKey]:
    return (a, b) if str(a) <= str(b) else (b, a)


class AIndex:
    """An in-memory, adjacency-list p-relation graph."""

    def __init__(self, enforce_consistency: bool = True) -> None:
        #: key -> neighbour key -> (type, probability)
        self._adjacency: dict[
            GlobalKey, dict[GlobalKey, tuple[RelationType, float]]
        ] = {}
        #: lineage of inferred edges: pair -> set of supporting pairs
        self._lineage: dict[
            tuple[GlobalKey, GlobalKey], set[tuple[GlobalKey, GlobalKey]]
        ] = {}
        self.enforce_consistency = enforce_consistency
        #: Bumped on every successful mutation; read snapshots compare it
        #: to decide whether a cached freeze is still current.
        self.generation = 0
        #: Times :meth:`frozen` actually rebuilt the snapshot.
        self.refreezes = 0
        self._frozen_snapshot = None
        self._frozen_generation = -1
        #: Guards every mutation and the freeze path, so a concurrent
        #: writer can never tear the adjacency dicts out from under a
        #: snapshot rebuild. Reentrant because consistency propagation
        #: and cascading deletion recurse through the public surface.
        self._mutex = threading.RLock()

    # -- size ------------------------------------------------------------------

    def node_count(self) -> int:
        return len(self._adjacency)

    def edge_count(self) -> int:
        with self._mutex:
            return sum(len(adj) for adj in self._adjacency.values()) // 2

    def __contains__(self, key: GlobalKey) -> bool:
        return key in self._adjacency

    def nodes(self) -> Iterator[GlobalKey]:
        return iter(self._adjacency)

    # -- insertion ----------------------------------------------------------------

    def add(self, relation: PRelation) -> None:
        """Insert a p-relation, enforcing the Consistency Condition."""
        with self._mutex:
            inferred = self._set_edge(
                relation.left, relation.right, relation.type, relation.probability
            )
            if not inferred or not self.enforce_consistency:
                return
            if relation.type is RelationType.IDENTITY:
                self._propagate_identity(relation)
            else:
                self._propagate_matching(relation)

    def add_all(self, relations: Iterable[PRelation]) -> None:
        with self._mutex:
            for relation in relations:
                self.add(relation)

    def _set_edge(
        self,
        a: GlobalKey,
        b: GlobalKey,
        rel_type: RelationType,
        probability: float,
    ) -> bool:
        """Store an undirected edge; returns False if an equal-or-stronger
        edge already exists (identity supersedes matching; higher
        probability supersedes lower)."""
        if a == b:
            return False
        existing = self._adjacency.get(a, {}).get(b)
        if existing is not None:
            current_type, current_probability = existing
            stronger = (
                current_type is RelationType.IDENTITY
                and rel_type is RelationType.MATCHING
            )
            if stronger:
                return False
            if current_type is rel_type and current_probability >= probability:
                return False
        self._adjacency.setdefault(a, {})[b] = (rel_type, probability)
        self._adjacency.setdefault(b, {})[a] = (rel_type, probability)
        self.generation += 1
        return True

    def _propagate_identity(self, relation: PRelation) -> None:
        """Materialize transitive identities and propagated matchings
        across the new identity edge ``left ~ right``."""
        for anchor, other in (
            (relation.left, relation.right),
            (relation.right, relation.left),
        ):
            # Neighbours of `other` become related to `anchor`.
            for neighbor_key, (n_type, n_prob) in list(
                self._adjacency.get(other, {}).items()
            ):
                if neighbor_key == anchor:
                    continue
                combined = relation.probability * n_prob
                if combined <= 0.0:
                    continue
                if self._set_edge(anchor, neighbor_key, n_type, combined):
                    self._record_lineage(
                        anchor, neighbor_key,
                        supports=[(anchor, other), (other, neighbor_key)],
                    )
                    # Newly inferred identities propagate further.
                    if n_type is RelationType.IDENTITY:
                        self._propagate_identity(
                            PRelation.identity(anchor, neighbor_key, combined)
                        )

    def _propagate_matching(self, relation: PRelation) -> None:
        """``x = b`` plus ``b ~ a`` implies ``x = a``: the new matching
        edge must connect the whole identity class of each endpoint to
        the whole identity class of the other.

        Identity classes are materialized cliques (see
        :meth:`_propagate_identity`), so one hop of identity edges is
        the full class. Probabilities compose multiplicatively along
        ``x ~ left = right ~ y``.
        """
        left_class = self._identity_class(relation.left)
        right_class = self._identity_class(relation.right)
        for x, p_left in left_class.items():
            for y, p_right in right_class.items():
                if x == y or (x, y) == (relation.left, relation.right):
                    continue
                combined = p_left * relation.probability * p_right
                if combined <= 0.0:
                    continue
                if self._set_edge(x, y, RelationType.MATCHING, combined):
                    self._record_lineage(
                        x, y,
                        supports=[(relation.left, relation.right)],
                    )

    def _identity_class(self, key: GlobalKey) -> dict[GlobalKey, float]:
        """The materialized identity class of ``key``: the key itself
        (probability 1) plus its direct identity neighbours."""
        members = {key: 1.0}
        for neighbor_key, (n_type, n_prob) in self._adjacency.get(key, {}).items():
            if n_type is RelationType.IDENTITY:
                members[neighbor_key] = n_prob
        return members

    def _record_lineage(
        self,
        a: GlobalKey,
        b: GlobalKey,
        supports: list[tuple[GlobalKey, GlobalKey]],
    ) -> None:
        self._lineage.setdefault(_pair(a, b), set()).update(
            _pair(x, y) for x, y in supports
        )

    def copy(self) -> "AIndex":
        """An independent replica of this index (Section III-A: each
        QUEPA instance has its own A' index replica)."""
        replica = AIndex(enforce_consistency=self.enforce_consistency)
        with self._mutex:
            replica._adjacency = {
                key: dict(adjacency) for key, adjacency in self._adjacency.items()
            }
            replica._lineage = {
                pair: set(supports) for pair, supports in self._lineage.items()
            }
        return replica

    # -- read snapshot ------------------------------------------------------------

    def frozen(self):
        """The CSR snapshot of the current generation, rebuilt on demand.

        The snapshot is cached: repeated calls between mutations return
        the same :class:`~repro.core.compressed.FrozenAIndex` instance,
        so planners pay the freeze cost once per index generation rather
        than once per query.

        Thread-safe: the rebuild happens under the index mutex, so a
        concurrent writer can never tear the adjacency dicts mid-freeze
        and two readers never build the same generation twice. Each
        snapshot is stamped with the generation it was frozen from
        (``FrozenAIndex.generation``), which is what serving-layer
        snapshot isolation pins per request.
        """
        if self._frozen_generation == self.generation:
            # Fast path: `_frozen_snapshot` is assigned before
            # `_frozen_generation` below, so a matching generation
            # always sees the finished snapshot.
            return self._frozen_snapshot
        with self._mutex:
            if self._frozen_generation != self.generation:
                from repro.core.compressed import FrozenAIndex

                self._frozen_snapshot = FrozenAIndex.freeze(self)
                self._frozen_generation = self.generation
                self.refreezes += 1
            return self._frozen_snapshot

    # -- queries --------------------------------------------------------------------

    def neighbors(
        self, key: GlobalKey, rel_type: RelationType | None = None
    ) -> list[Neighbor]:
        """All edges out of ``key``, optionally filtered by type."""
        with self._mutex:
            adjacency = self._adjacency.get(key)
            if not adjacency:
                return []
            return [
                Neighbor(other, edge_type, probability)
                for other, (edge_type, probability) in adjacency.items()
                if rel_type is None or edge_type is rel_type
            ]

    def neighbor_arcs(
        self, key: GlobalKey
    ) -> list[tuple[GlobalKey, float]]:
        """All edges out of ``key`` as bare ``(key, probability)`` pairs.

        The planner's traversal never looks at the relation type, so this
        skips the per-edge :class:`Neighbor` construction. Pairs come in
        adjacency insertion order, same as :meth:`neighbors`.
        """
        with self._mutex:
            adjacency = self._adjacency.get(key)
            if not adjacency:
                return []
            return [
                (other, probability)
                for other, (_, probability) in adjacency.items()
            ]

    def relation(self, a: GlobalKey, b: GlobalKey) -> PRelation | None:
        edge = self._adjacency.get(a, {}).get(b)
        if edge is None:
            return None
        edge_type, probability = edge
        return PRelation(a, b, edge_type, probability)

    def degree(self, key: GlobalKey) -> int:
        return len(self._adjacency.get(key, {}))

    # -- deletion ----------------------------------------------------------------------

    def remove_object(self, key: GlobalKey) -> int:
        """Lazy deletion: drop a node and its incident edges.

        Called when augmentation discovers the object no longer exists
        in the polystore. Returns the number of edges removed. Inferred
        p-relations that were derived *via* this node are kept, per the
        paper's stated strategy.
        """
        with self._mutex:
            adjacency = self._adjacency.pop(key, None)
            if adjacency is None:
                return 0
            for other in adjacency:
                self._adjacency.get(other, {}).pop(key, None)
            self.generation += 1
            return len(adjacency)

    def excise(self, keys: Iterable[GlobalKey]) -> int:
        """Surgically remove a set of nodes, their incident edges, and
        every lineage record touching them, in one generation bump.

        Unlike :meth:`remove_object` (the paper's lazy deletion, which
        keeps inferred edges and their lineage), ``excise`` is the
        rebuild primitive of incremental maintenance: the caller removes
        a whole affected region and re-inserts its current base
        relations, so stale inferred edges and stale lineage must go
        with the nodes. Returns the number of nodes removed.
        """
        targets = set(keys)
        if not targets:
            return 0
        with self._mutex:
            removed = 0
            for key in targets:
                adjacency = self._adjacency.pop(key, None)
                if adjacency is None:
                    continue
                removed += 1
                for other in adjacency:
                    if other not in targets:
                        self._adjacency.get(other, {}).pop(key, None)
            changed = removed > 0
            for pair in list(self._lineage):
                if pair[0] in targets or pair[1] in targets:
                    del self._lineage[pair]
                    changed = True
                    continue
                supports = self._lineage[pair]
                stale = [
                    s for s in supports
                    if s[0] in targets or s[1] in targets
                ]
                if stale:
                    supports.difference_update(stale)
                    changed = True
                    if not supports:
                        del self._lineage[pair]
            if changed:
                self.generation += 1
            return removed

    def remove_relation(
        self, a: GlobalKey, b: GlobalKey, cascade: bool = False
    ) -> int:
        """Remove the edge ``a -- b``.

        With ``cascade=True``, edges whose lineage includes the removed
        edge are removed too, recursively — the "data oblivion" lineage
        system the paper plans as future work. Returns the number of
        edges removed.
        """
        with self._mutex:
            if self._adjacency.get(a, {}).pop(b, None) is None:
                return 0
            self._adjacency.get(b, {}).pop(a, None)
            self.generation += 1
            removed = 1
            removed_pair = _pair(a, b)
            self._lineage.pop(removed_pair, None)
            if cascade:
                dependents = [
                    pair
                    for pair, supports in self._lineage.items()
                    if removed_pair in supports
                ]
                for pair in dependents:
                    removed += self.remove_relation(pair[0], pair[1], cascade=True)
            return removed

    def is_inferred(self, a: GlobalKey, b: GlobalKey) -> bool:
        return _pair(a, b) in self._lineage
