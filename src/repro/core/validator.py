"""Query validation and rewriting for augmented execution (Section III-A).

The validator decides whether a native query can be augmented and, when
needed, rewrites it so that every returned object carries its
identifier:

* relational — aggregate queries (GROUP BY / HAVING / aggregate
  functions) cannot be augmented; a projection that drops the primary
  key is rewritten to include it;
* document — a projection that excludes ``_id`` is rewritten to keep it;
* graph and key-value — results always carry their identifiers, so
  queries pass through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import NotAugmentableError, SqlSyntaxError
from repro.stores.base import Store
from repro.stores.relational.ast import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
)
from repro.stores.relational.engine import RelationalStore
from repro.stores.relational.parser import parse_sql


@dataclass
class ValidationResult:
    """Outcome of validating one native query."""

    query: Any
    rewritten: bool = False
    notes: str = ""


class Validator:
    """Checks augmentability and injects identifiers where needed."""

    def validate(self, store: Store, query: Any) -> ValidationResult:
        """Validate ``query`` for augmented execution on ``store``.

        Raises :class:`NotAugmentableError` for queries whose results
        cannot be mapped back to stored data objects.
        """
        if isinstance(store, RelationalStore):
            return self._validate_sql(store, query)
        # Document / graph / key-value results always carry their keys;
        # only document projections can drop them.
        if store.engine == "document":
            return self._validate_document(query)
        return ValidationResult(query)

    # -- relational ---------------------------------------------------------

    def _validate_sql(self, store: RelationalStore, query: Any) -> ValidationResult:
        if not isinstance(query, str):
            raise NotAugmentableError(
                f"relational queries must be SQL strings, got {type(query).__name__}"
            )
        try:
            statement = parse_sql(query)
        except SqlSyntaxError as exc:
            raise NotAugmentableError(f"query does not parse: {exc}") from exc
        if not isinstance(statement, Select):
            raise NotAugmentableError("only SELECT statements can be augmented")
        if statement.is_aggregate():
            raise NotAugmentableError(
                "queries containing aggregate functions cannot be augmented"
            )
        if statement.distinct:
            raise NotAugmentableError(
                "DISTINCT queries collapse rows and cannot be augmented"
            )
        if statement.joins:
            raise NotAugmentableError(
                "join results are derived rows and cannot be augmented"
            )
        table = store.table(statement.table.name)
        pk = table.schema.primary_key
        if self._selects_pk(statement, pk):
            return ValidationResult(query)
        rewritten = self._add_pk(statement, pk)
        return ValidationResult(
            sql_to_string(rewritten),
            rewritten=True,
            notes=f"added primary key {pk!r} to the select list",
        )

    @staticmethod
    def _selects_pk(statement: Select, pk: str) -> bool:
        for item in statement.items:
            if isinstance(item.expr, Star):
                return True
            if isinstance(item.expr, ColumnRef) and item.expr.name == pk:
                return True
        return False

    @staticmethod
    def _add_pk(statement: Select, pk: str) -> Select:
        items = statement.items + (SelectItem(ColumnRef(pk)),)
        return Select(
            items=items,
            table=statement.table,
            joins=statement.joins,
            where=statement.where,
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
        )

    # -- document ------------------------------------------------------------

    def _validate_document(self, query: Any) -> ValidationResult:
        if isinstance(query, Mapping) and "collection" in query:
            projection = query.get("projection")
            if projection and projection.get("_id", 1) == 0:
                fixed = dict(query)
                fixed_projection = {
                    k: v for k, v in projection.items() if k != "_id"
                }
                if fixed_projection:
                    fixed["projection"] = fixed_projection
                else:
                    fixed.pop("projection")
                return ValidationResult(
                    fixed, rewritten=True, notes="restored _id to the projection"
                )
        return ValidationResult(query)


# ---------------------------------------------------------------------------
# SQL printing (for rewritten queries)
# ---------------------------------------------------------------------------


def sql_to_string(statement: Select) -> str:
    """Render a SELECT AST back to SQL text."""
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item_sql(item) for item in statement.items))
    parts.append("FROM")
    parts.append(_table_sql(statement.table))
    for join in statement.joins:
        keyword = "LEFT JOIN" if join.kind == "LEFT" else "JOIN"
        parts.append(f"{keyword} {_table_sql(join.table)} ON {expr_to_string(join.on)}")
    if statement.where is not None:
        parts.append(f"WHERE {expr_to_string(statement.where)}")
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(expr_to_string(e) for e in statement.group_by)
        )
    if statement.having is not None:
        parts.append(f"HAVING {expr_to_string(statement.having)}")
    if statement.order_by:
        parts.append("ORDER BY " + ", ".join(_order_sql(o) for o in statement.order_by))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
        if statement.offset:
            parts.append(f"OFFSET {statement.offset}")
    return " ".join(parts)


def _item_sql(item: SelectItem) -> str:
    text = expr_to_string(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _table_sql(table) -> str:
    if table.alias:
        return f"{table.name} {table.alias}"
    return table.name


def _order_sql(order: OrderItem) -> str:
    suffix = "" if order.ascending else " DESC"
    return expr_to_string(order.expr) + suffix


def expr_to_string(expr: Expr) -> str:
    """Render an expression AST back to SQL text."""
    if isinstance(expr, Literal):
        return _literal_sql(expr.value)
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, BinaryOp):
        return f"({expr_to_string(expr.left)} {expr.op} {expr_to_string(expr.right)})"
    if isinstance(expr, LikeOp):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return f"{expr_to_string(expr.expr)} {keyword} {expr_to_string(expr.pattern)}"
    if isinstance(expr, InOp):
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(expr_to_string(item) for item in expr.items)
        return f"{expr_to_string(expr.expr)} {keyword} ({items})"
    if isinstance(expr, BetweenOp):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{expr_to_string(expr.expr)} {keyword} "
            f"{expr_to_string(expr.low)} AND {expr_to_string(expr.high)}"
        )
    if isinstance(expr, IsNullOp):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{expr_to_string(expr.expr)} {keyword}"
    if isinstance(expr, FuncCall):
        inner = ", ".join(expr_to_string(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    from repro.stores.relational.ast import UnaryOp

    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"NOT ({expr_to_string(expr.operand)})"
        return f"-{expr_to_string(expr.operand)}"
    raise ValueError(f"cannot render expression {expr!r}")


def _literal_sql(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
