"""A compressed, read-only A' index snapshot (paper future work).

Section VIII: "We are also studying more performing strategies to
implement our A' index." This module provides one: a CSR-style frozen
snapshot of an :class:`AIndex`. Global keys are interned into dense
integer ids; adjacency is three parallel arrays (offsets, neighbour
ids, probabilities) plus a bit-per-edge type vector. Planning-time
neighbour scans avoid per-edge tuple/dict overhead and the snapshot is
~3-5x smaller than the dict-of-dicts index.

The snapshot implements the same ``neighbors`` protocol the
augmentation planner uses, so ``Augmentation(FrozenAIndex.freeze(ix))``
works unchanged. It is immutable: maintenance (insertions, lazy
deletions, promotion) stays on the live index; refreeze to publish.
In practice planners obtain snapshots via :meth:`AIndex.frozen`, which
caches the freeze per index generation, so a refreeze happens only
after the live index actually mutated.

Freezing preserves the live index's node and adjacency iteration order
(Python dicts iterate in insertion order, which is deterministic for a
given build sequence). This matters: the planner's best-first traversal
breaks probability ties by discovery order, so an order-preserving
snapshot replays the live traversal edge-for-edge and the virtual-time
benchmarks stay bit-identical whichever index backs the plan.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.core.aindex import AIndex, Neighbor
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType


class FrozenAIndex:
    """An immutable CSR snapshot of an A' index."""

    def __init__(
        self,
        keys: list[GlobalKey],
        offsets: array,
        targets: array,
        probabilities: array,
        is_identity: list[bool],
    ) -> None:
        self._keys = keys
        self._ids = {key: index for index, key in enumerate(keys)}
        self._offsets = offsets
        self._targets = targets
        self._probabilities = probabilities
        self._is_identity = is_identity
        #: Per-node (key, probability) arc lists, built lazily from the
        #: CSR arrays on first access (planner fast path).
        self._arcs: list[list[tuple[GlobalKey, float]] | None] = [None] * len(
            keys
        )
        #: Generation of the live index this snapshot was frozen from
        #: (``None`` for snapshots built outside :meth:`freeze`). The
        #: serving layer pins this per request for snapshot isolation.
        self.generation: int | None = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def freeze(cls, index: AIndex) -> "FrozenAIndex":
        """Build a snapshot of ``index``, preserving its iteration order.

        Targets that are not themselves nodes of ``index`` are interned
        as zero-degree ghost nodes appended after the real ones. A full
        A' index never produces these (every edge endpoint is a node);
        partition views of a sharded index do — their cross-shard
        neighbour stubs point at nodes owned by other partitions.
        """
        keys = list(index.nodes())
        ids = {key: i for i, key in enumerate(keys)}
        offsets = array("l", [0])
        targets = array("l")
        probabilities = array("d")
        is_identity: list[bool] = []
        # Iterating a list while appending ghosts to it visits the
        # ghosts too, giving them empty adjacency entries.
        for key in keys:
            for neighbor in index.neighbors(key):
                target = ids.get(neighbor.key)
                if target is None:
                    target = len(keys)
                    ids[neighbor.key] = target
                    keys.append(neighbor.key)
                targets.append(target)
                probabilities.append(neighbor.probability)
                is_identity.append(neighbor.type is RelationType.IDENTITY)
            offsets.append(len(targets))
        snapshot = cls(keys, offsets, targets, probabilities, is_identity)
        snapshot.generation = getattr(index, "generation", None)
        return snapshot

    # -- AIndex read protocol -----------------------------------------------------

    def neighbors(
        self, key: GlobalKey, rel_type: RelationType | None = None
    ) -> list[Neighbor]:
        node = self._ids.get(key)
        if node is None:
            return []
        start = self._offsets[node]
        end = self._offsets[node + 1]
        out: list[Neighbor] = []
        for position in range(start, end):
            edge_type = (
                RelationType.IDENTITY
                if self._is_identity[position]
                else RelationType.MATCHING
            )
            if rel_type is not None and edge_type is not rel_type:
                continue
            out.append(
                Neighbor(
                    self._keys[self._targets[position]],
                    edge_type,
                    self._probabilities[position],
                )
            )
        return out

    def neighbor_arcs(
        self, key: GlobalKey
    ) -> list[tuple[GlobalKey, float]]:
        """All edges out of ``key`` as bare ``(key, probability)`` pairs.

        Same order as :meth:`neighbors`, minus the per-edge
        :class:`Neighbor` and :class:`RelationType` materialization the
        planner never looks at. Arc lists are memoized per node, so
        repeated traversals (every seed of a plan revisits hub nodes)
        reduce to one list lookup.
        """
        node = self._ids.get(key)
        if node is None:
            return []
        arcs = self._arcs[node]
        if arcs is None:
            keys = self._keys
            targets = self._targets
            probabilities = self._probabilities
            arcs = [
                (keys[targets[position]], probabilities[position])
                for position in range(
                    self._offsets[node], self._offsets[node + 1]
                )
            ]
            self._arcs[node] = arcs
        return arcs

    def frozen(self) -> "FrozenAIndex":
        """A frozen index is its own snapshot (mirrors ``AIndex.frozen``)."""
        return self

    def relation(self, a: GlobalKey, b: GlobalKey) -> PRelation | None:
        for neighbor in self.neighbors(a):
            if neighbor.key == b:
                return PRelation(a, b, neighbor.type, neighbor.probability)
        return None

    def degree(self, key: GlobalKey) -> int:
        node = self._ids.get(key)
        if node is None:
            return 0
        return self._offsets[node + 1] - self._offsets[node]

    def __contains__(self, key: GlobalKey) -> bool:
        return key in self._ids

    def nodes(self) -> Iterator[GlobalKey]:
        return iter(self._keys)

    def node_count(self) -> int:
        return len(self._keys)

    def edge_count(self) -> int:
        return len(self._targets) // 2

    # -- immutability guards ---------------------------------------------------------

    def add(self, relation: PRelation) -> None:
        raise TypeError(
            "FrozenAIndex is read-only; mutate the live AIndex and refreeze"
        )

    def remove_object(self, key: GlobalKey) -> int:
        raise TypeError(
            "FrozenAIndex is read-only; mutate the live AIndex and refreeze"
        )
