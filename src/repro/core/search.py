"""Augmented search (Definition 3) and its answer representation.

An augmented search runs a native query on one database, then expands
the result with the augmentation of level ``n``, ordered by probability.
The answer keeps the original results first (they are certain, p = 1.0)
followed by the augmented objects ranked by probability — the paper's
colors/rankings presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.model.objects import AugmentedObject, DataObject, GlobalKey


@dataclass
class AugmentedAnswer:
    """The result of one augmented search.

    ``originals`` is the local answer ``Q(D)``; ``augmented`` the
    deduplicated, probability-ranked expansion. ``stats`` carries the
    execution measurements used by the run log and the experiments.
    """

    originals: list[DataObject] = field(default_factory=list)
    augmented: list[AugmentedObject] = field(default_factory=list)
    stats: "SearchStats" = field(default_factory=lambda: SearchStats())

    def __iter__(self) -> Iterator[DataObject]:
        """Iterate all objects, originals first then ranked augmentation."""
        yield from self.originals
        for entry in self.augmented:
            yield entry.object

    def __len__(self) -> int:
        return len(self.originals) + len(self.augmented)

    def augmented_keys(self) -> list[GlobalKey]:
        return [entry.key for entry in self.augmented]

    def top(self, count: int) -> list[AugmentedObject]:
        """The ``count`` most probable augmented objects."""
        return self.augmented[:count]

    def by_database(self) -> dict[str, list[AugmentedObject]]:
        """Augmented objects grouped by their home database."""
        grouped: dict[str, list[AugmentedObject]] = {}
        for entry in self.augmented:
            grouped.setdefault(entry.key.database, []).append(entry)
        return grouped


@dataclass
class SearchStats:
    """Measurements of one augmented run (feeds the optimizer log)."""

    database: str = ""
    level: int = 0
    original_count: int = 0
    augmented_count: int = 0
    planned_fetches: int = 0
    queries_issued: int = 0
    cache_hits: int = 0
    missing_objects: int = 0
    elapsed: float = 0.0
    augmenter: str = ""
    batch_size: int = 0
    threads_size: int = 0
    cache_size: int = 0
    rewritten: bool = False
    #: Databases skipped under graceful degradation (skip_unavailable).
    unavailable_databases: tuple[str, ...] = ()
    #: True iff faults cost this answer planned objects (see
    #: :class:`~repro.core.augmenters.base.AugmentationOutcome`).
    degraded: bool = False
    #: Database -> reason for every store that misbehaved during the run.
    errors: dict[str, str] = field(default_factory=dict)
    #: True iff this answer was served from the materialized
    #: augmentation tier (:mod:`repro.cdc.materialize`) instead of
    #: being planned and traversed for this request.
    materialized: bool = False


def assemble_answer(
    originals: list[DataObject],
    raw_augmented: list[AugmentedObject],
    stats: SearchStats,
) -> AugmentedAnswer:
    """Deduplicate and rank the raw augmentation output.

    The same object can be reached from several seeds; the entry with
    the highest probability wins. Objects of the original answer are not
    repeated in the augmented section when reached from themselves, but
    are kept when reached from *another* seed (Example 4 of the paper).
    Ordering is by probability descending, key as tiebreak.
    """
    best: dict[GlobalKey, AugmentedObject] = {}
    for entry in raw_augmented:
        if entry.source == entry.key:
            continue
        current = best.get(entry.key)
        if current is None or entry.probability > current.probability:
            best[entry.key] = entry
    # Decorate-sort-undecorate: one entry per key, so the (probability,
    # key-text) prefix is unique and the entries themselves are never
    # compared. Going through entry.object skips two property hops per
    # element, which dominates the sort at answer sizes ~10k.
    decorated = [
        (-entry.object.probability, str(entry.object.key), entry)
        for entry in best.values()
    ]
    decorated.sort()
    ranked = [entry for __, __, entry in decorated]
    stats.augmented_count = len(ranked)
    stats.original_count = len(originals)
    return AugmentedAnswer(list(originals), ranked, stats)


def format_answer(answer: AugmentedAnswer, limit: int = 10) -> str:
    """Human-readable rendering of an augmented answer.

    Mirrors the paper's introduction example: each original object is
    printed with the augmented objects it links to, annotated with their
    probabilities.
    """
    lines: list[str] = []
    by_source: dict[GlobalKey, list[AugmentedObject]] = {}
    for entry in answer.augmented:
        if entry.source is not None:
            by_source.setdefault(entry.source, []).append(entry)
    for original in answer.originals[:limit]:
        lines.append(f"{original.key}  {_short(original.value)}")
        for entry in by_source.get(original.key, [])[:limit]:
            lines.append(
                f"  => {entry.key} (p={entry.probability:.2f}) "
                f"{_short(entry.object.value)}"
            )
    remaining = len(answer.originals) - limit
    if remaining > 0:
        lines.append(f"... and {remaining} more results")
    return "\n".join(lines)


def _short(value: Any, width: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= width else text[: width - 3] + "..."
