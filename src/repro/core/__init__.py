"""QUEPA core: the augmentation operator and everything around it.

* :mod:`repro.core.aindex` — the A' index graph of p-relations.
* :mod:`repro.core.augmentation` — the augmentation operator (Def. 2).
* :mod:`repro.core.augmenters` — SEQUENTIAL/BATCH/INNER/OUTER/
  OUTER-BATCH/OUTER-INNER execution strategies (Section IV).
* :mod:`repro.core.search` / :mod:`repro.core.exploration` — augmented
  search (Def. 3) and augmented exploration (Def. 4).
* :mod:`repro.core.validator` — query augmentability checks/rewrites.
* :mod:`repro.core.connectors` — native key access per engine.
* :mod:`repro.core.cache` — the LRU object cache (Section IV-C).
* :mod:`repro.core.promotion` — p-relation promotion from user paths.
* :mod:`repro.core.system` — the :class:`~repro.core.system.Quepa`
  facade tying it all together.
"""

from repro.core.aindex import AIndex
from repro.core.augmentation import AugmentationConfig, Augmentation
from repro.core.cache import LruCache
from repro.core.search import AugmentedAnswer
from repro.core.system import Quepa

__all__ = [
    "AIndex",
    "Augmentation",
    "AugmentationConfig",
    "AugmentedAnswer",
    "LruCache",
    "Quepa",
]
