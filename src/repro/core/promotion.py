"""Promotion of p-relations from exploration behaviour (Section III-D.a).

QUEPA tracks, in a repository called D_P, the *full paths* users walk
through the A' index during augmented exploration: sequences
``v0, v1, ..., vk`` (k > 1) from the first object of a session to the
last. When a path has been traversed ``tau`` times, a matching
p-relation between its endpoints is added to the A' index as a
shortcut, with probability equal to the average of the probabilities
along the path. The threshold decreases with path length — long paths
are rarer, so fewer visits are needed to call them interesting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation


@dataclass(frozen=True)
class PromotionPolicy:
    """Threshold schedule: tau(length) = max(min_visits, base / (length - 1)).

    ``length`` is the number of edges in the path (>= 2 by definition of
    full path). With the defaults, a 2-edge path needs 12 visits, a
    3-edge path 6, a 4-edge path 4, and no path ever needs fewer than
    ``min_visits``.
    """

    base: int = 24
    min_visits: int = 2

    def threshold(self, length: int) -> int:
        if length < 2:
            raise ValueError("full paths have at least two edges")
        return max(self.min_visits, math.ceil(self.base / (length - 1) / 2))


class PathRepository:
    """D_P: visit counts of full exploration paths, plus promotion."""

    def __init__(
        self, aindex: AIndex, policy: PromotionPolicy | None = None
    ) -> None:
        self.aindex = aindex
        self.policy = policy or PromotionPolicy()
        self._visits: dict[tuple[GlobalKey, ...], int] = {}
        self.promoted: list[PRelation] = []

    def record_path(self, path: tuple[GlobalKey, ...]) -> PRelation | None:
        """Record one traversal of ``path``; returns the promoted
        p-relation if this visit crossed the threshold.

        Paths with fewer than two edges (three nodes) are not full paths
        and are ignored, matching the paper's ``k > 1`` condition.
        """
        if len(path) < 3:
            return None
        self._visits[path] = self._visits.get(path, 0) + 1
        length = len(path) - 1
        if self._visits[path] != self.policy.threshold(length):
            return None
        return self._promote(path)

    def visits(self, path: tuple[GlobalKey, ...]) -> int:
        return self._visits.get(path, 0)

    def _promote(self, path: tuple[GlobalKey, ...]) -> PRelation | None:
        start, end = path[0], path[-1]
        if start == end:
            return None
        if self.aindex.relation(start, end) is not None:
            return None  # "if not yet present"
        probabilities = []
        for a, b in zip(path, path[1:]):
            relation = self.aindex.relation(a, b)
            if relation is None:
                # The path is stale (an edge was deleted); do not promote.
                return None
            probabilities.append(relation.probability)
        average = sum(probabilities) / len(probabilities)
        promoted = PRelation.matching(start, end, average)
        self.aindex.add(promoted)
        self.promoted.append(promoted)
        return promoted
