"""Run records: what QUEPA logs about each completed augmentation.

Section V, Phase 1: "We keep the logs of the completed augmentation
runs. They include QUEPA parameters such as BATCH_SIZE or THREADS_SIZE,
the overall execution time and the characteristics of the query (target
database, number of original data objects in the result, number of
augmented data objects)." These records are the training set of the
adaptive optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryFeatures:
    """Characteristics of a query/polystore pair, known before execution.

    The planned fetch count is available before any store is contacted
    because planning only reads the (local) A' index.
    """

    engine: str
    database: str
    level: int
    original_count: int
    planned_fetches: int
    store_count: int
    deployment: str

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "database": self.database,
            "level": self.level,
            "original_count": self.original_count,
            "planned_fetches": self.planned_fetches,
            "store_count": self.store_count,
            "deployment": self.deployment,
        }


@dataclass(frozen=True)
class RunRecord:
    """One completed augmentation run: features, configuration, time.

    Beyond the paper's fields, records are enriched with the run's
    observability data (see :mod:`repro.obs`): per-database query/object
    counts from the runtime meter and a per-span-kind time breakdown, so
    the optimizer's training set can explain *where* time went, not just
    how much of it passed.
    """

    features: QueryFeatures
    augmenter: str
    batch_size: int
    threads_size: int
    cache_size: int
    elapsed: float
    queries_issued: int = 0
    cache_hits: int = 0
    #: Batch flushes swallowed by skip_unavailable (never reached a store).
    skipped_flushes: int = 0
    missing_objects: int = 0
    #: True iff faults cost this run planned objects (degraded answer).
    degraded: bool = False
    #: Database -> reason for every store that misbehaved during the run.
    errors: dict[str, str] = field(default_factory=dict)
    #: Per-database native query / object counts for this run.
    queries_by_database: dict[str, int] = field(default_factory=dict)
    objects_by_database: dict[str, int] = field(default_factory=dict)
    #: Per-database failed store calls (injected faults, outages).
    failed_queries_by_database: dict[str, int] = field(default_factory=dict)
    #: Span kind -> {"count": n, "total_s": seconds} for this run.
    span_summary: dict[str, dict] = field(default_factory=dict)
    #: The serving trace id this run executed under (``None`` for
    #: classic single-session runs).
    trace_id: str | None = None
    #: Request-scoped critical-path breakdown (store time by database,
    #: per-shard fetches, coalesce waits, hedge outcomes) computed by
    #: :func:`repro.obs.requests.latency_breakdown`; empty when the run
    #: was not request-scoped.
    breakdown: dict = field(default_factory=dict)

    def query_signature(self) -> tuple:
        """Groups runs of the same logical query for label derivation."""
        f = self.features
        return (
            f.engine,
            f.database,
            f.level,
            f.original_count,
            f.planned_fetches,
            f.store_count,
            f.deployment,
        )
