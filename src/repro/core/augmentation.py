"""The augmentation operator alpha^n (Definition 2).

Augmentation of level ``n`` expands a set of data objects with every
object reachable in the A' index within ``n + 1`` hops: level 0 adds the
direct identity/matching neighbours of each result, level 1 additionally
adds their neighbours, and so on (Example 4 of the paper).

The *plan* — which global keys to retrieve, at which probability, from
which seed — is computed here by a pure, index-only traversal. The
*execution* — actually materializing the objects from the polystore —
is the augmenters' job (:mod:`repro.core.augmenters`), because that is
where the paper's network/CPU/memory optimizations live.

Probabilities compose multiplicatively along a path; when several paths
reach the same object the most probable one wins. Seed objects (the
original answer) are never re-added as augmented entries of themselves,
but an object of the original answer can legitimately appear in the
augmentation of *another* seed (Example 4: the answer to Q contains o,
and o2 = transactions.inventory.a32 appears in its augmentation).
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey


@dataclass
class AugmentationConfig:
    """Tunable parameters of one augmentation run (Section V).

    ``augmenter`` selects the strategy; ``batch_size``/``threads_size``
    parameterize it; ``cache_size`` is applied to the shared LRU cache.
    ``min_probability`` optionally prunes very weak paths from the plan.
    """

    augmenter: str = "sequential"
    batch_size: int = 64
    threads_size: int = 4
    cache_size: int = 1024
    min_probability: float = 0.0
    #: Degrade gracefully when a store is down: skip its objects instead
    #: of failing the whole augmented query (loose coupling in action).
    skip_unavailable: bool = False
    #: Runtime-clock seconds the augmentation may spend before further
    #: store calls are skipped (degrading the outcome). ``None`` = no
    #: budget. Checked between fetches, never mid-call.
    timeout_budget: float | None = None


@dataclass(frozen=True, slots=True)
class PlannedFetch:
    """One object the augmentation must retrieve.

    ``seed`` is the original-answer object this fetch augments and
    ``path`` the chain of intermediate keys (excluding the seed,
    including the target), so the exploration UI can explain each link.
    """

    key: GlobalKey
    probability: float
    seed: GlobalKey
    path: tuple[GlobalKey, ...]


@dataclass
class AugmentationPlan:
    """The per-seed fetch lists for one augmented query."""

    level: int
    seeds: list[GlobalKey]
    fetches_by_seed: dict[GlobalKey, list[PlannedFetch]] = field(
        default_factory=dict
    )
    #: Number of A' index edges examined (charged as CPU by augmenters).
    edges_examined: int = 0

    def all_fetches(self) -> list[PlannedFetch]:
        """Fetches of every seed, in seed order (duplicates possible —
        overlapping augmentations are deduplicated only in the final
        answer, which is exactly why the cache helps at level > 0)."""
        return [
            fetch
            for seed in self.seeds
            for fetch in self.fetches_by_seed.get(seed, [])
        ]

    def total_fetches(self) -> int:
        return sum(len(f) for f in self.fetches_by_seed.values())


class Augmentation:
    """Plans augmentations over an A' index.

    Planning runs against a read-only CSR snapshot of the index by
    default (:meth:`AIndex.frozen`): the snapshot is cached per index
    generation, so the freeze cost is paid once per mutation rather
    than once per query, and live edits (including lazy deletions)
    invalidate it transparently. Passing a :class:`FrozenAIndex`
    directly still works — a frozen index is its own snapshot.
    """

    #: Recently computed plans kept per planner (repeated queries over
    #: an unchanged index replay the same traversal).
    PLAN_CACHE_SIZE = 8

    def __init__(self, aindex: AIndex) -> None:
        self.aindex = aindex
        #: (level, min_probability, seeds) -> (planning index, plan).
        #: The stored index pins the snapshot the plan was computed
        #: over; a hit requires the current snapshot to be the same
        #: object, so any index mutation (new generation, new frozen
        #: instance) invalidates cached plans transparently.
        self._plan_cache: "OrderedDict[tuple, tuple[object, AugmentationPlan]]" = (
            OrderedDict()
        )
        #: Guards the plan cache's LRU bookkeeping; concurrent serving
        #: sessions share one planner per Quepa instance.
        self._plan_cache_lock = threading.Lock()

    def _planning_index(self):
        """The read snapshot to traverse: frozen if available, else live."""
        frozen = getattr(self.aindex, "frozen", None)
        return frozen() if frozen is not None else self.aindex

    def plan(
        self,
        seeds: list[GlobalKey],
        level: int,
        min_probability: float = 0.0,
    ) -> AugmentationPlan:
        """Compute the fetch plan for ``alpha^level`` over ``seeds``.

        Plans over a frozen snapshot are cached: re-running the same
        query against an unchanged index (the warm half of the paper's
        protocol) returns the previously computed plan — including its
        ``edges_examined``, so the charged planning cost is identical —
        instead of repeating the traversal.
        """
        if level < 0:
            raise ValueError(f"augmentation level must be >= 0, got {level}")
        index = self._planning_index()
        # Only immutable snapshots are safe plan-cache anchors; a live
        # duck-typed index can mutate without changing identity.
        cacheable = index is not self.aindex or not hasattr(index, "add")
        cache_key = None
        if cacheable:
            cache_key = (level, min_probability, tuple(seeds))
            with self._plan_cache_lock:
                cached = self._plan_cache.get(cache_key)
                if cached is not None and cached[0] is index:
                    self._plan_cache.move_to_end(cache_key)
                    return cached[1]
        plan = AugmentationPlan(level=level, seeds=list(seeds))
        for seed in seeds:
            fetches, edges = self._expand(index, seed, level, min_probability)
            plan.fetches_by_seed[seed] = fetches
            plan.edges_examined += edges
        if cacheable:
            with self._plan_cache_lock:
                self._plan_cache[cache_key] = (index, plan)
                while len(self._plan_cache) > self.PLAN_CACHE_SIZE:
                    self._plan_cache.popitem(last=False)
        return plan

    def explain(
        self,
        seeds: list[GlobalKey],
        level: int,
        min_probability: float = 0.0,
    ) -> dict:
        """Describe how ``alpha^level`` over ``seeds`` would be planned.

        Reports the A' index traversal — which snapshot (type and
        generation), whether the plan cache already holds this plan,
        edges walked, and the planned fetch workload per target
        database. Planning is index-only, so this runs the real
        traversal (or replays the cached plan) but never touches a
        store.
        """
        index = self._planning_index()
        cacheable = index is not self.aindex or not hasattr(index, "add")
        plan_cache_hit = False
        if cacheable:
            with self._plan_cache_lock:
                cached = self._plan_cache.get(
                    (level, min_probability, tuple(seeds))
                )
            plan_cache_hit = cached is not None and cached[0] is index
        plan = self.plan(seeds, level, min_probability)
        fetches_by_database: dict[str, int] = {}
        for fetch in plan.all_fetches():
            database = fetch.key.database
            fetches_by_database[database] = (
                fetches_by_database.get(database, 0) + 1
            )
        return {
            "level": level,
            "seeds": len(seeds),
            "min_probability": min_probability,
            "snapshot": type(index).__name__,
            "snapshot_generation": getattr(self.aindex, "generation", None),
            "refreezes": getattr(self.aindex, "refreezes", None),
            "plan_cacheable": cacheable,
            "plan_cache_hit": plan_cache_hit,
            "edges_examined": plan.edges_examined,
            "planned_fetches": plan.total_fetches(),
            "fetches_by_database": dict(sorted(fetches_by_database.items())),
        }

    def _expand(
        self, index, seed: GlobalKey, level: int, min_probability: float
    ) -> tuple[list[PlannedFetch], int]:
        """Best-probability-first traversal to depth ``level + 1``.

        A Dijkstra-style search over ``-log p`` (implemented directly on
        products) guarantees each reachable key is planned with its
        maximum path probability.
        """
        max_depth = level + 1
        best: dict[GlobalKey, float] = {seed: 1.0}
        result: dict[GlobalKey, PlannedFetch] = {}
        edges = 0
        arcs = getattr(index, "neighbor_arcs", None) or _arcs_via_neighbors(
            index
        )
        # Heap entries: (-probability, tiebreak, key, depth, path)
        counter = 0
        heap: list[tuple[float, int, GlobalKey, int, tuple[GlobalKey, ...]]] = [
            (-1.0, counter, seed, 0, ())
        ]
        heappop, heappush = heapq.heappop, heapq.heappush
        best_get = best.get
        while heap:
            neg_probability, __, key, depth, path = heappop(heap)
            probability = -neg_probability
            if probability < best_get(key, 0.0):
                continue  # stale entry
            if depth >= max_depth:
                continue
            next_depth = depth + 1
            arc_list = arcs(key)
            edges += len(arc_list)
            for neighbor_key, neighbor_probability in arc_list:
                combined = probability * neighbor_probability
                if combined < min_probability or combined <= 0.0:
                    continue
                if combined <= best_get(neighbor_key, 0.0):
                    continue
                best[neighbor_key] = combined
                new_path = path + (neighbor_key,)
                if neighbor_key != seed:
                    result[neighbor_key] = PlannedFetch(
                        neighbor_key, combined, seed, new_path
                    )
                counter += 1
                heappush(
                    heap, (-combined, counter, neighbor_key, next_depth, new_path)
                )
        # Decorate-sort-undecorate: one fetch per key, so the
        # (probability, key-text) prefix is unique and PlannedFetch
        # instances are never compared.
        decorated = [
            (-fetch.probability, str(fetch.key), fetch)
            for fetch in result.values()
        ]
        decorated.sort()
        return [fetch for __, __, fetch in decorated], edges


def _arcs_via_neighbors(index):
    """Arc accessor for duck-typed indexes without ``neighbor_arcs``."""

    def arcs(key: GlobalKey) -> list[tuple[GlobalKey, float]]:
        return [(n.key, n.probability) for n in index.neighbors(key)]

    return arcs
