"""The augmentation operator alpha^n (Definition 2).

Augmentation of level ``n`` expands a set of data objects with every
object reachable in the A' index within ``n + 1`` hops: level 0 adds the
direct identity/matching neighbours of each result, level 1 additionally
adds their neighbours, and so on (Example 4 of the paper).

The *plan* — which global keys to retrieve, at which probability, from
which seed — is computed here by a pure, index-only traversal. The
*execution* — actually materializing the objects from the polystore —
is the augmenters' job (:mod:`repro.core.augmenters`), because that is
where the paper's network/CPU/memory optimizations live.

Probabilities compose multiplicatively along a path; when several paths
reach the same object the most probable one wins. Seed objects (the
original answer) are never re-added as augmented entries of themselves,
but an object of the original answer can legitimately appear in the
augmentation of *another* seed (Example 4: the answer to Q contains o,
and o2 = transactions.inventory.a32 appears in its augmentation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey


@dataclass
class AugmentationConfig:
    """Tunable parameters of one augmentation run (Section V).

    ``augmenter`` selects the strategy; ``batch_size``/``threads_size``
    parameterize it; ``cache_size`` is applied to the shared LRU cache.
    ``min_probability`` optionally prunes very weak paths from the plan.
    """

    augmenter: str = "sequential"
    batch_size: int = 64
    threads_size: int = 4
    cache_size: int = 1024
    min_probability: float = 0.0
    #: Degrade gracefully when a store is down: skip its objects instead
    #: of failing the whole augmented query (loose coupling in action).
    skip_unavailable: bool = False


@dataclass(frozen=True, slots=True)
class PlannedFetch:
    """One object the augmentation must retrieve.

    ``seed`` is the original-answer object this fetch augments and
    ``path`` the chain of intermediate keys (excluding the seed,
    including the target), so the exploration UI can explain each link.
    """

    key: GlobalKey
    probability: float
    seed: GlobalKey
    path: tuple[GlobalKey, ...]


@dataclass
class AugmentationPlan:
    """The per-seed fetch lists for one augmented query."""

    level: int
    seeds: list[GlobalKey]
    fetches_by_seed: dict[GlobalKey, list[PlannedFetch]] = field(
        default_factory=dict
    )
    #: Number of A' index edges examined (charged as CPU by augmenters).
    edges_examined: int = 0

    def all_fetches(self) -> list[PlannedFetch]:
        """Fetches of every seed, in seed order (duplicates possible —
        overlapping augmentations are deduplicated only in the final
        answer, which is exactly why the cache helps at level > 0)."""
        return [
            fetch
            for seed in self.seeds
            for fetch in self.fetches_by_seed.get(seed, [])
        ]

    def total_fetches(self) -> int:
        return sum(len(f) for f in self.fetches_by_seed.values())


class Augmentation:
    """Plans augmentations over an A' index."""

    def __init__(self, aindex: AIndex) -> None:
        self.aindex = aindex

    def plan(
        self,
        seeds: list[GlobalKey],
        level: int,
        min_probability: float = 0.0,
    ) -> AugmentationPlan:
        """Compute the fetch plan for ``alpha^level`` over ``seeds``."""
        if level < 0:
            raise ValueError(f"augmentation level must be >= 0, got {level}")
        plan = AugmentationPlan(level=level, seeds=list(seeds))
        for seed in seeds:
            fetches, edges = self._expand(seed, level, min_probability)
            plan.fetches_by_seed[seed] = fetches
            plan.edges_examined += edges
        return plan

    def _expand(
        self, seed: GlobalKey, level: int, min_probability: float
    ) -> tuple[list[PlannedFetch], int]:
        """Best-probability-first traversal to depth ``level + 1``.

        A Dijkstra-style search over ``-log p`` (implemented directly on
        products) guarantees each reachable key is planned with its
        maximum path probability.
        """
        max_depth = level + 1
        best: dict[GlobalKey, float] = {seed: 1.0}
        result: dict[GlobalKey, PlannedFetch] = {}
        edges = 0
        # Heap entries: (-probability, tiebreak, key, depth, path)
        counter = 0
        heap: list[tuple[float, int, GlobalKey, int, tuple[GlobalKey, ...]]] = [
            (-1.0, counter, seed, 0, ())
        ]
        while heap:
            neg_probability, __, key, depth, path = heapq.heappop(heap)
            probability = -neg_probability
            if probability < best.get(key, 0.0):
                continue  # stale entry
            if depth >= max_depth:
                continue
            for neighbor in self.aindex.neighbors(key):
                edges += 1
                combined = probability * neighbor.probability
                if combined < min_probability or combined <= 0.0:
                    continue
                if combined <= best.get(neighbor.key, 0.0):
                    continue
                best[neighbor.key] = combined
                new_path = path + (neighbor.key,)
                if neighbor.key != seed:
                    result[neighbor.key] = PlannedFetch(
                        neighbor.key, combined, seed, new_path
                    )
                counter += 1
                heapq.heappush(
                    heap, (-combined, counter, neighbor.key, depth + 1, new_path)
                )
        ordered = sorted(
            result.values(), key=lambda fetch: (-fetch.probability, str(fetch.key))
        )
        return ordered, edges
