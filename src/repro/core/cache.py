"""Sharded LRU object cache (Section IV-C).

All augmenters consult a shared LRU cache keyed by global key before
asking the polystore for an object — the stand-in for the paper's
Ehcache. The cache is sized in objects (``CACHE_SIZE``), thread-safe
(augmenters fetch from worker threads under the real runtime), and can
be resized online, which is what the adaptive optimizer's cache-delta
formula does between queries.

Large caches are *lock-striped*: the keyspace is hash-partitioned over
independent LRU shards, each with its own lock, so concurrent augmenter
workers stop serializing on a single mutex. Small caches (below
``SHARD_MIN_CAPACITY`` objects per shard) collapse to one shard, which
preserves the exact global-LRU eviction order the unit tests and the
adaptive optimizer's cache-delta model assume. Eviction is per-shard,
so a sharded cache may evict a slightly different *victim* than a
global LRU would — hit/miss behaviour is identical as long as the cache
is not overflowing, which is the regime the figure benchmarks run in.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from repro.model.objects import DataObject, GlobalKey

#: Default number of lock stripes for large caches.
DEFAULT_SHARDS = 8
#: A shard smaller than this many objects is not worth its lock: the
#: cache collapses to a single shard below ``shards * SHARD_MIN_CAPACITY``.
SHARD_MIN_CAPACITY = 512


class _Shard:
    """One lock-striped LRU partition of the cache."""

    __slots__ = ("lock", "entries", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[GlobalKey, DataObject] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> dict[str, int]:
        with self.lock:
            return {
                "size": len(self.entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class LruCache:
    """A thread-safe, lock-striped LRU cache of data objects."""

    def __init__(self, capacity: int = 1024, shards: int = DEFAULT_SHARDS) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if shards < 1:
            raise ValueError(f"cache shards must be >= 1, got {shards}")
        self._capacity = capacity
        self._shards = [
            _Shard(c) for c in _shard_capacities(capacity, _shard_count(capacity, shards))
        ]
        self._mask_mod = len(self._shards)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def _shard(self, key: GlobalKey) -> _Shard:
        if self._mask_mod == 1:
            return self._shards[0]
        return self._shards[hash(key) % self._mask_mod]

    # -- single-key interface ----------------------------------------------

    def get(self, key: GlobalKey) -> DataObject | None:
        """Look up ``key``; a hit refreshes its recency."""
        shard = self._shard(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            return entry

    def put(self, obj: DataObject) -> None:
        """Insert an object, evicting the least recently used if full.

        Objects are stored with probability 1.0 so a cached object can be
        re-weighted per query (the probability depends on the path that
        reached it, not on the object itself).
        """
        shard = self._shard(obj.key)
        with shard.lock:
            # The capacity check must happen under the lock: a concurrent
            # resize() (the adaptive optimizer's cache-delta path) may
            # zero the capacity between check and insert, leaving an
            # entry stranded in a supposedly disabled cache.
            if shard.capacity == 0:
                return
            shard.entries[obj.key] = obj.with_probability(1.0)
            shard.entries.move_to_end(obj.key)
            while len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)
                shard.evictions += 1

    def contains(self, key: GlobalKey) -> bool:
        """Non-mutating membership probe: no recency refresh, no hit or
        miss counted (EXPLAIN must not perturb what it observes)."""
        shard = self._shard(key)
        with shard.lock:
            return key in shard.entries

    def invalidate(self, key: GlobalKey) -> bool:
        shard = self._shard(key)
        with shard.lock:
            return shard.entries.pop(key, None) is not None

    # -- bulk interface -----------------------------------------------------

    def get_many(
        self, keys: Iterable[GlobalKey]
    ) -> dict[GlobalKey, DataObject]:
        """Look up several keys, taking each shard's lock only once.

        Returns the found objects keyed by global key; each hit
        refreshes recency exactly as :meth:`get` would. Hit/miss
        counters advance once per *distinct* requested key.
        """
        by_shard: dict[int, list[GlobalKey]] = {}
        for key in dict.fromkeys(keys):
            index = 0 if self._mask_mod == 1 else hash(key) % self._mask_mod
            by_shard.setdefault(index, []).append(key)
        found: dict[GlobalKey, DataObject] = {}
        for index, shard_keys in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                entries = shard.entries
                for key in shard_keys:
                    entry = entries.get(key)
                    if entry is None:
                        shard.misses += 1
                        continue
                    entries.move_to_end(key)
                    shard.hits += 1
                    found[key] = entry
        return found

    def put_many(self, objects: Iterable[DataObject]) -> None:
        """Insert several objects, taking each shard's lock only once."""
        by_shard: dict[int, list[DataObject]] = {}
        for obj in objects:
            index = 0 if self._mask_mod == 1 else hash(obj.key) % self._mask_mod
            by_shard.setdefault(index, []).append(obj)
        for index, shard_objects in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                if shard.capacity == 0:
                    continue
                entries = shard.entries
                for obj in shard_objects:
                    entries[obj.key] = obj.with_probability(1.0)
                    entries.move_to_end(obj.key)
                while len(entries) > shard.capacity:
                    entries.popitem(last=False)
                    shard.evictions += 1

    # -- maintenance --------------------------------------------------------

    def resize(self, capacity: int) -> None:
        """Change capacity online, evicting LRU entries if shrinking.

        The shard count is fixed at construction; a resize redistributes
        the new capacity over the existing shards.
        """
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        for shard, shard_capacity in zip(
            self._shards, _shard_capacities(capacity, len(self._shards))
        ):
            with shard.lock:
                shard.capacity = shard_capacity
                while len(shard.entries) > shard.capacity:
                    shard.entries.popitem(last=False)
                    shard.evictions += 1

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.hits = 0
                shard.misses = 0
                shard.evictions = 0

    # -- statistics ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(shard.snapshot()["hits"] for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.snapshot()["misses"] for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        stats = self.stats()
        total = stats["hits"] + stats["misses"]
        return stats["hits"] / total if total else 0.0

    def stats(self) -> dict:
        """A consistent snapshot of the cache counters.

        Unlike reading ``hits``/``misses`` back-to-back (two separate
        lock acquisitions that a concurrent probe can interleave), the
        totals here come from one pass over per-shard snapshots, each
        taken under its shard's lock, so ``hits + misses`` equals the
        number of completed probes. The per-shard breakdown feeds the
        CLI ``stats`` table and the shard metrics gauges.
        """
        shards = [shard.snapshot() for shard in self._shards]
        hits = sum(s["hits"] for s in shards)
        misses = sum(s["misses"] for s in shards)
        return {
            "capacity": self._capacity,
            "size": sum(s["size"] for s in shards),
            "hits": hits,
            "misses": misses,
            "evictions": sum(s["evictions"] for s in shards),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "shards": shards,
        }


def _shard_count(capacity: int, requested: int) -> int:
    """Collapse to one shard when stripes would be too small to matter."""
    if requested <= 1 or capacity < requested * SHARD_MIN_CAPACITY:
        return 1
    return requested


def _shard_capacities(capacity: int, shards: int) -> list[int]:
    """Split ``capacity`` over ``shards``, remainder to the first ones."""
    base, remainder = divmod(capacity, shards)
    return [base + (1 if i < remainder else 0) for i in range(shards)]
