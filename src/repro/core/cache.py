"""LRU object cache (Section IV-C).

All augmenters consult a shared LRU cache keyed by global key before
asking the polystore for an object — the stand-in for the paper's
Ehcache. The cache is sized in objects (``CACHE_SIZE``), thread-safe
(augmenters fetch from worker threads under the real runtime), and can
be resized online, which is what the adaptive optimizer's cache-delta
formula does between queries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.model.objects import DataObject, GlobalKey


class LruCache:
    """A thread-safe LRU cache of data objects."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[GlobalKey, DataObject] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: GlobalKey) -> DataObject | None:
        """Look up ``key``; a hit refreshes its recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, obj: DataObject) -> None:
        """Insert an object, evicting the least recently used if full.

        Objects are stored with probability 1.0 so a cached object can be
        re-weighted per query (the probability depends on the path that
        reached it, not on the object itself).
        """
        with self._lock:
            # The capacity check must happen under the lock: a concurrent
            # resize() (the adaptive optimizer's cache-delta path) may
            # zero the capacity between check and insert, leaving an
            # entry stranded in a supposedly disabled cache.
            if self._capacity == 0:
                return
            self._entries[obj.key] = obj.with_probability(1.0)
            self._entries.move_to_end(obj.key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate(self, key: GlobalKey) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def resize(self, capacity: int) -> None:
        """Change capacity online, evicting LRU entries if shrinking."""
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
