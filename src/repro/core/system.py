"""The QUEPA facade: plug-and-play augmented access to a polystore.

``Quepa`` wires together the A' index, the validator, the connectors,
the cache, the augmenters and (optionally) an optimizer. It stores no
data itself — multiple instances over the same polystore are
independent, as the paper's architecture section points out.

Typical use::

    quepa = Quepa(polystore, aindex, profile=centralized_profile([...]))
    answer = quepa.augmented_search("transactions",
                                    "SELECT * FROM inventory WHERE ...",
                                    level=1)
    session = quepa.explore("transactions", "SELECT * FROM sales ...")
"""

from __future__ import annotations

import math
from dataclasses import asdict, replace
from typing import Any, Callable, Protocol

from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation, AugmentationConfig
from repro.core.augmenters import make_augmenter
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.core.exploration import ExplorationSession
from repro.core.promotion import PathRepository, PromotionPolicy
from repro.core.runlog import QueryFeatures, RunRecord
from repro.core.search import (
    AugmentedAnswer,
    SearchStats,
    assemble_answer,
)
from repro.core.validator import Validator
from repro.errors import StoreUnavailableError
from repro.faults import FaultInjector, ResilienceConfig, ResilienceManager
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.model.polystore import Polystore
from repro.network.executor import ExecContext, RealRuntime, Runtime, VirtualRuntime
from repro.network.latency import DeploymentProfile, centralized_profile
from repro.obs import Observability, latency_breakdown
from repro.stores.querycache import parse_cache_stats


class Optimizer(Protocol):
    """What Quepa needs from an optimizer (see repro.optimizer)."""

    def configure(
        self, features: QueryFeatures, current_cache_size: int
    ) -> AugmentationConfig:  # pragma: no cover - protocol
        ...


class Quepa:
    """Augmented search and exploration over one polystore."""

    def __init__(
        self,
        polystore: Polystore,
        aindex: AIndex,
        profile: DeploymentProfile | None = None,
        runtime: Runtime | None = None,
        config: AugmentationConfig | None = None,
        optimizer: Optimizer | None = None,
        promotion_policy: PromotionPolicy | None = None,
        resilience: ResilienceConfig | ResilienceManager | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.polystore = polystore
        self.aindex = aindex
        self.profile = profile or centralized_profile(list(polystore))
        self.runtime: Runtime = runtime or VirtualRuntime(self.profile)
        #: Tracing + metrics for this system (shared with the runtime, so
        #: contexts and augmenters report into the same bundle).
        self.obs: Observability = self.runtime.obs
        self.config = config or AugmentationConfig()
        self.optimizer = optimizer
        if optimizer is not None and hasattr(optimizer, "bind_metrics"):
            optimizer.bind_metrics(self.obs.metrics)
        #: Retry/breaker policy for store calls (None = direct calls,
        #: the fault-free hot path).
        if isinstance(resilience, ResilienceConfig):
            resilience = ResilienceManager(resilience)
        self.resilience: ResilienceManager | None = resilience
        if self.resilience is not None:
            self.resilience.bind(self.obs)
        #: Seeded fault schedule evaluated inside store_call (None = off).
        self.faults = faults
        if faults is not None:
            faults.bind(self.obs)
            self.runtime.faults = faults
        self.validator = Validator()
        self.registry = ConnectorRegistry(polystore, self.resilience)
        self.cache = LruCache(self.config.cache_size)
        self.augmentation = Augmentation(aindex)
        self.paths = PathRepository(aindex, promotion_policy)
        #: Lazily built cost-based cross-store planner (repro.planner);
        #: shares this system's profile, resilience and fault layers.
        self._planner_engine = None
        #: Listeners invoked with each completed RunRecord.
        self.run_listeners: list[Callable[[RunRecord], None]] = []
        self.last_record: RunRecord | None = None

    # -- augmented search ------------------------------------------------------

    def augmented_search(
        self,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
    ) -> AugmentedAnswer:
        """Run ``query`` on ``database`` and augment its answer.

        ``level`` is the augmentation level of Definition 3. With
        ``augment=False`` only the (validated) local query runs — used
        to seed explorations and as the no-augmentation baseline.

        This is the classic single-session entry point: it resets the
        runtime (meter, tracer, run timer) via ``runtime.root()`` and
        reports elapsed time from :attr:`Runtime.elapsed`. It must not
        be called concurrently with itself; the serving layer uses
        :meth:`serve_search` instead.
        """
        store = self.polystore.database(database)
        validation = self.validator.validate(store, query)
        ctx = self.runtime.root()
        return self._search_body(
            ctx,
            store,
            database,
            validation,
            level,
            config,
            augment,
            finish=self._finish_timer,
            clock=lambda: self.runtime.elapsed,
        )

    def serve_search(
        self,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        augment: bool = True,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> AugmentedAnswer:
        """Concurrency-safe :meth:`augmented_search` for served sessions.

        Same answer for the same inputs, but safe to call from many
        threads at once against one ``Quepa`` instance: the request
        runs on a fresh :meth:`Runtime.request_context` (no shared
        meter/tracer/timer resets), measures ``stats.elapsed`` as a
        local clock delta on its own context, and reads the A' index
        through one pinned :class:`FrozenAIndex` snapshot per request,
        so concurrent p-relation writers never tear a traversal.

        The runtime's meter and metrics accumulate across all served
        requests rather than being per-run, so a :class:`RunRecord`
        emitted here carries cumulative per-database query counts.

        ``trace_id``/``parent_span`` (set by the scheduler) scope every
        span of this request to its serving trace; the emitted record
        then carries a request-local span summary and latency breakdown
        instead of the cumulative one.
        """
        store = self.polystore.database(database)
        validation = self.validator.validate(store, query)
        ctx = self.runtime.request_context(
            trace_id=trace_id, parent_span=parent_span
        )
        start = ctx.now
        return self._search_body(
            ctx,
            store,
            database,
            validation,
            level,
            config,
            augment,
            finish=lambda: None,
            clock=lambda: ctx.now - start,
        )

    def _search_body(
        self,
        ctx: ExecContext,
        store,
        database: str,
        validation,
        level: int,
        config: AugmentationConfig | None,
        augment: bool,
        finish: Callable[[], None],
        clock: Callable[[], float],
    ) -> AugmentedAnswer:
        """The shared search pipeline behind both entry points.

        ``finish`` is called exactly where the classic path stopped the
        run timer; ``clock`` reports elapsed run seconds (classic:
        :attr:`Runtime.elapsed`; serving: a context-local delta).
        """
        op = lambda: self._locked_execute(store, validation.query)  # noqa: E731
        try:
            if self.resilience is not None:
                originals = list(
                    self.resilience.call(
                        ctx, database, op, query=validation.query
                    )
                )
            else:
                originals = list(
                    ctx.store_call(database, op, query=validation.query)
                )
        except StoreUnavailableError as exc:
            if self.resilience is None or not self.resilience.config.degrade:
                raise
            # The queried store itself is unreachable: no seeds, no
            # augmentation — answer empty but degraded, never raise.
            return self._degraded_local_answer(
                database, level, validation, exc, finish, clock
            )
        stats = SearchStats(
            database=database,
            level=level,
            rewritten=validation.rewritten,
        )
        if not augment:
            finish()
            stats.elapsed = clock()
            return assemble_answer(originals, [], stats)

        seeds = [obj.key for obj in originals if obj.key.collection != "_result"]
        plan = self._plan(ctx, seeds, level)
        features = QueryFeatures(
            engine=store.engine,
            database=database,
            level=level,
            original_count=len(originals),
            planned_fetches=plan.total_fetches(),
            store_count=len(self.polystore),
            deployment=self.profile.name,
        )
        run_config = self._apply_degradation(self._resolve_config(config, features, ctx))
        if run_config.cache_size != self.cache.capacity:
            self.cache.resize(run_config.cache_size)
        augmenter = make_augmenter(run_config.augmenter, self.registry, self.cache)
        with ctx.span("augment", augmenter=run_config.augmenter) as span:
            outcome = augmenter.execute(ctx, plan, run_config)
            span.attrs["queries"] = outcome.queries_issued
            span.attrs["cache_hits"] = outcome.cache_hits
        for missing in outcome.missing:
            self.aindex.remove_object(missing)  # lazy deletion (III-C.b)
        if outcome.missing:
            self.obs.events.emit(
                "lazy_deletion",
                severity="info",
                ts=clock(),
                database=database,
                removed=len(outcome.missing),
            )
        self._publish_planner_metrics()
        finish()
        stats.planned_fetches = plan.total_fetches()
        stats.queries_issued = outcome.queries_issued + 1  # + the local query
        stats.cache_hits = outcome.cache_hits
        stats.missing_objects = len(outcome.missing)
        stats.elapsed = clock()
        stats.unavailable_databases = outcome.unavailable_databases
        stats.degraded = outcome.degraded
        stats.errors = dict(outcome.errors)
        if outcome.degraded:
            self.obs.events.emit(
                "degraded_answer",
                severity="warning",
                ts=stats.elapsed,
                database=database,
                errors=dict(outcome.errors),
            )
        stats.augmenter = run_config.augmenter
        stats.batch_size = run_config.batch_size
        stats.threads_size = run_config.threads_size
        stats.cache_size = run_config.cache_size
        outcome.trace = self.obs.trace_summary()  # now includes all spans
        answer = assemble_answer(originals, outcome.objects, stats)
        self._emit_record(features, run_config, stats, outcome, ctx=ctx)
        self.obs.events.emit(
            "augmentation_completed",
            ts=stats.elapsed,
            database=database,
            level=level,
            augmenter=run_config.augmenter,
            elapsed_s=stats.elapsed,
            queries=stats.queries_issued,
            cache_hits=stats.cache_hits,
        )
        return answer

    # -- EXPLAIN / ANALYZE -----------------------------------------------------

    def explain(
        self,
        database: str,
        query: Any,
        level: int = 0,
        config: AugmentationConfig | None = None,
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Explain how an augmented search would run, end to end.

        Stitches together the store engine's access-path report, the A'
        index traversal (snapshot generation, plan-cache hit, edges
        walked), the pool/batching decisions of the augmenter the
        configuration resolution would pick, per-database cache
        would-hit counts, and — when an optimizer is attached — the
        T1-T4 rule firings behind the choice.

        Plain EXPLAIN runs only the local query (planning needs its
        seeds; the A' index traversal itself is store-free). With
        ``analyze=True`` the full augmented search also executes and an
        ``"actual"`` section reports measured elapsed time, queries
        issued and cache hits next to the estimates.
        """
        store = self.polystore.database(database)
        validation = self.validator.validate(store, query)
        report: dict[str, Any] = {
            "database": database,
            "level": level,
            "analyze": analyze,
            "query": {
                "rewritten": validation.rewritten,
                "store": store.explain(validation.query, analyze=analyze),
            },
        }
        # Seeds come from the local answer; running it here mirrors the
        # first step of augmented_search but stays off the runtime's
        # clocks (EXPLAIN is free in virtual time).
        originals = self._locked_execute(store, validation.query)
        seeds = [
            obj.key for obj in originals if obj.key.collection != "_result"
        ]
        min_probability = self.config.min_probability
        report["plan"] = self.augmentation.explain(
            seeds, level, min_probability
        )
        features = QueryFeatures(
            engine=store.engine,
            database=database,
            level=level,
            original_count=len(originals),
            planned_fetches=report["plan"]["planned_fetches"],
            store_count=len(self.polystore),
            deployment=self.profile.name,
        )
        chosen, source, rules = self._explain_config(config, features)
        report["config"] = {"source": source, **asdict(chosen)}
        if rules:
            report["config"]["rules"] = rules
        report["execution"] = self._explain_execution(
            chosen, seeds, level, min_probability
        )
        report["planner"] = self._explain_planner(
            database,
            validation.query,
            level,
            min_probability,
            originals,
            report["query"]["store"],
            analyze,
        )
        if analyze:
            answer = self.augmented_search(
                database, query, level=level, config=config
            )
            stats = answer.stats
            report["actual"] = {
                "elapsed_s": stats.elapsed,
                "queries_issued": stats.queries_issued,
                "cache_hits": stats.cache_hits,
                "augmented_objects": len(answer.augmented),
                "missing_objects": stats.missing_objects,
                "augmenter": stats.augmenter,
                "queries_by_database": self.runtime.meter.snapshot()[
                    "queries_by_database"
                ],
                "trace": self.obs.trace_summary(),
            }
        return report

    def planner_engine(self):
        """The cost-based cross-store planner bound to this system.

        Built lazily on first use (explain's ``planner`` section, the
        ``plan`` CLI/API endpoints) and cached; it shares this system's
        deployment profile, resilience manager (so breaker state is
        common) and fault injector. See :mod:`repro.planner`.
        """
        if self._planner_engine is None:
            from repro.planner import FederatedEngine

            degrade = (
                self.resilience.config.degrade
                if self.resilience is not None
                else True
            )
            self._planner_engine = FederatedEngine(
                self.polystore,
                self.aindex,
                profile=self.profile,
                config=self.config,
                resilience=self.resilience,
                faults=self.faults,
                degrade=degrade,
            )
        return self._planner_engine

    def _explain_planner(
        self,
        database: str,
        query: Any,
        level: int,
        min_probability: float,
        originals,
        store_report: dict,
        analyze: bool,
    ) -> dict:
        """The ``planner`` section: enumerated plans, costs, the pick.

        Reuses the originals and store report explain already computed,
        so the section adds zero extra store executions (``analyze=True``
        additionally runs the chosen plan, like the rest of ANALYZE).
        """
        from repro.planner import LogicalQuery

        logical = LogicalQuery(
            database=database,
            query=query,
            level=level,
            min_probability=min_probability,
        )
        return self.planner_engine().explain_section(
            logical,
            originals=originals,
            store_report=store_report,
            analyze=analyze,
        )

    def _explain_config(
        self, explicit: AugmentationConfig | None, features: QueryFeatures
    ) -> tuple[AugmentationConfig, str, list[dict]]:
        """Resolve the config as :meth:`_resolve_config` would, without
        side effects, and report where it came from."""
        if explicit is not None:
            return explicit, "explicit", []
        if self.optimizer is not None:
            if hasattr(self.optimizer, "explain_choice"):
                choice = self.optimizer.explain_choice(
                    features, self.cache.capacity
                )
                return choice["config"], "optimizer", choice["rules"]
            return (
                self.optimizer.configure(features, self.cache.capacity),
                "optimizer",
                [],
            )
        return self.config, "default", []

    _POOL_SHAPES = {
        "sequential": "no pool: one direct-access query per fetch",
        "batch": "no pool: native batch query per flush, grouped by database",
        "inner": "one pool per seed over that seed's fetch list",
        "outer": "one pool over all fetches",
        "outer_batch": "one pool whose tasks are batch flushes",
        "outer_inner": "nested pools: outer over seeds, inner per seed",
    }

    def _explain_execution(
        self,
        chosen: AugmentationConfig,
        seeds: list[Any],
        level: int,
        min_probability: float,
    ) -> dict[str, Any]:
        """Pool/batching decisions plus per-database cache would-hits.

        Cache probes use :meth:`LruCache.contains`, which neither
        refreshes recency nor counts hits/misses — EXPLAIN must not
        change what a subsequent real run observes. A key planned for
        several seeds is fetched at most once: the first miss populates
        the cache, so repeats count as hits, matching what the run's
        own counters will report.
        """
        plan = self.augmentation.plan(seeds, level, min_probability)
        batching = chosen.augmenter in ("batch", "outer_batch")
        pooled = chosen.augmenter in (
            "inner", "outer", "outer_batch", "outer_inner",
        )
        per_database: dict[str, dict[str, Any]] = {}
        keys_by_database: dict[str, list[Any]] = {}
        would_hit = 0
        seen: set[Any] = set()
        for fetch in plan.all_fetches():
            entry = per_database.setdefault(
                fetch.key.database, {"fetches": 0, "cached": 0}
            )
            entry["fetches"] += 1
            if fetch.key in seen or self.cache.contains(fetch.key):
                entry["cached"] += 1
                would_hit += 1
            else:
                keys_by_database.setdefault(
                    fetch.key.database, []
                ).append(fetch.key)
            seen.add(fetch.key)
        estimated_queries = 1  # the local query
        for database, entry in per_database.items():
            misses = entry["fetches"] - entry["cached"]
            entry["estimated_queries"] = (
                math.ceil(misses / chosen.batch_size) if batching else misses
            )
            estimated_queries += entry["estimated_queries"]
            store = self.polystore.databases.get(database)
            if getattr(store, "sharded", False):
                # Shard routing for the keys this plan would actually
                # fetch: which partitions the scatter must scan, and
                # which the placement scheme provably prunes.
                routing = store.route_keys(keys_by_database.get(database, []))
                entry["sharding"] = {
                    "placement": routing.placement,
                    "shards": routing.shards,
                    "fanout": routing.fanout,
                    "scanned_partitions": routing.scanned,
                    "pruned_partitions": routing.pruned,
                }
        return {
            "augmenter": chosen.augmenter,
            "batching": batching,
            "batch_size": chosen.batch_size if batching else None,
            "pooled": pooled,
            "pool_workers": chosen.threads_size if pooled else 0,
            "shape": self._POOL_SHAPES.get(chosen.augmenter, "unknown"),
            "cache": {
                "capacity": self.cache.capacity,
                "size": len(self.cache),
                "would_hit": would_hit,
            },
            "per_database": dict(sorted(per_database.items())),
            "estimated_queries": estimated_queries,
        }

    def _publish_planner_metrics(self) -> None:
        """Publish planner/parse-cache state to the metrics registry.

        Gauges rather than counters: the refreeze count lives on the
        index and parse-cache hits on process-wide caches, so each
        search stamps the current totals instead of accumulating.
        """
        metrics = self.obs.metrics
        refreezes = getattr(self.aindex, "refreezes", None)
        if refreezes is not None:
            metrics.gauge("aindex_refreezes_total").set(refreezes)
        for entry in parse_cache_stats():
            metrics.gauge(
                "parse_cache_hits_total", cache=entry["name"]
            ).set(entry["hits"])
            metrics.gauge(
                "parse_cache_hit_rate", cache=entry["name"]
            ).set(entry["hit_rate"])

    def _plan(self, ctx: ExecContext, seeds: list[GlobalKey], level: int):
        """Plan the augmentation, traced and charged as A' index CPU."""
        with ctx.span("plan", level=level, seeds=len(seeds)) as span:
            plan = self.augmentation.plan(
                seeds, level, self.config.min_probability
            )
            ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
            span.attrs["fetches"] = plan.total_fetches()
            span.attrs["edges"] = plan.edges_examined
        return plan

    def _apply_degradation(
        self, config: AugmentationConfig
    ) -> AugmentationConfig:
        """Force ``skip_unavailable`` when resilience asks to degrade.

        With a resilience policy whose ``degrade`` flag is set, every
        run tolerates unreachable stores regardless of how the config
        was chosen (explicit, optimizer, default). The original config
        object is never mutated.
        """
        if (
            self.resilience is not None
            and self.resilience.config.degrade
            and not config.skip_unavailable
        ):
            return replace(config, skip_unavailable=True)
        return config

    def _locked_execute(self, store, query) -> list[DataObject]:
        """Run a native query holding the store's engine lock.

        The engines are unsynchronized in-memory structures; the lock
        keeps a serving-layer writer from mutating them mid-scan. It
        costs one uncontended acquire on the classic single-session
        path and never touches the charged (virtual-time) costs.
        """
        with store.lock:
            return store.execute(query)

    def _degraded_local_answer(
        self,
        database: str,
        level: int,
        validation,
        exc: Exception,
        finish: Callable[[], None],
        clock: Callable[[], float],
    ) -> AugmentedAnswer:
        """Empty degraded answer when the queried store is unreachable."""
        finish()
        stats = SearchStats(
            database=database,
            level=level,
            rewritten=validation.rewritten,
            elapsed=clock(),
            unavailable_databases=(database,),
            degraded=True,
            errors={database: f"unavailable: {exc}"},
        )
        self.obs.events.emit(
            "degraded_answer",
            severity="warning",
            ts=stats.elapsed,
            database=database,
            errors=dict(stats.errors),
        )
        return assemble_answer([], [], stats)

    def fault_report(self) -> dict[str, Any]:
        """Fault/resilience state of this system, JSON-ready.

        Combines the injector's schedule and injection counters, the
        resilience snapshot (breaker states, retries, fast-fails) and
        the meter's per-database failed-call counts. Sections are
        ``None`` when the corresponding layer is not attached.
        """
        meter = self.runtime.meter.snapshot()
        return {
            "faults": (
                self.faults.stats() if self.faults is not None else None
            ),
            "resilience": (
                self.resilience.snapshot()
                if self.resilience is not None
                else None
            ),
            "failed_queries_by_database": meter[
                "failed_queries_by_database"
            ],
        }

    def _resolve_config(
        self,
        explicit: AugmentationConfig | None,
        features: QueryFeatures,
        ctx: ExecContext | None = None,
    ) -> AugmentationConfig:
        if explicit is not None:
            return explicit
        if self.optimizer is not None:
            if ctx is None:
                return self.optimizer.configure(features, self.cache.capacity)
            with ctx.span("optimize") as span:
                chosen = self.optimizer.configure(
                    features, self.cache.capacity
                )
                span.attrs["augmenter"] = chosen.augmenter
            self.obs.metrics.counter(
                "optimizer_choices_total", augmenter=chosen.augmenter
            ).inc()
            return chosen
        return self.config

    def _emit_record(
        self,
        features: QueryFeatures,
        config: AugmentationConfig,
        stats: SearchStats,
        outcome=None,
        ctx: ExecContext | None = None,
    ) -> None:
        meter = self.runtime.meter.snapshot()
        trace_id = getattr(ctx, "_trace_id", None)
        if trace_id is not None:
            # Request-scoped run: summarize only this request's spans,
            # and attach the critical-path breakdown the serving layer
            # surfaces through the flight recorder.
            request_spans = self.obs.tracer.spans_for(trace_id)
            span_summary: dict[str, dict] = {}
            for span in request_spans:
                entry = span_summary.setdefault(
                    span.name, {"count": 0, "total_s": 0.0}
                )
                entry["count"] += 1
                entry["total_s"] += span.duration
            breakdown = latency_breakdown(request_spans)
        else:
            span_summary = self.obs.tracer.summary()
            breakdown = {}
        record = RunRecord(
            features=features,
            augmenter=config.augmenter,
            batch_size=config.batch_size,
            threads_size=config.threads_size,
            cache_size=config.cache_size,
            elapsed=stats.elapsed,
            queries_issued=stats.queries_issued,
            cache_hits=stats.cache_hits,
            skipped_flushes=getattr(outcome, "skipped_flushes", 0),
            missing_objects=stats.missing_objects,
            degraded=stats.degraded,
            errors=dict(stats.errors),
            queries_by_database=meter["queries_by_database"],
            objects_by_database=meter["objects_by_database"],
            failed_queries_by_database=meter["failed_queries_by_database"],
            span_summary=span_summary,
            trace_id=trace_id,
            breakdown=breakdown,
        )
        self.obs.metrics.counter("runs_recorded_total").inc()
        self.last_record = record
        for listener in self.run_listeners:
            listener(record)

    def _finish_timer(self) -> None:
        if isinstance(self.runtime, RealRuntime):
            self.runtime.stop()

    # -- augmented exploration ----------------------------------------------------

    def explore(self, database: str, query: Any) -> ExplorationSession:
        """Start an augmented exploration from a native query."""
        return ExplorationSession(self, database, query)

    def augment_object(
        self,
        key: GlobalKey,
        level: int = 0,
        config: AugmentationConfig | None = None,
    ) -> list[AugmentedObject]:
        """Augment a single object (an exploration step at level 0).

        Uses the inner augmenter, which the paper singles out as the
        efficient choice when a single result is augmented at a time.
        ``config`` overrides the batch/threads/degradation/budget knobs
        of the step (the augmenter itself stays ``inner``).
        """
        ctx = self.runtime.root()
        return self._augment_object_body(
            ctx, key, level, self._finish_timer, config=config
        )

    def serve_augment_object(
        self,
        key: GlobalKey,
        level: int = 0,
        config: AugmentationConfig | None = None,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> list[AugmentedObject]:
        """Concurrency-safe :meth:`augment_object` for served sessions.

        Runs the exploration step on a fresh request context (no
        shared-state resets), so many exploration sessions can step
        concurrently against one ``Quepa`` instance. ``config`` carries
        the serving layer's effective per-request configuration — in
        particular a deadline folded into ``timeout_budget``, which
        must bound exploration steps exactly as it bounds searches.
        """
        ctx = self.runtime.request_context(
            trace_id=trace_id, parent_span=parent_span
        )
        return self._augment_object_body(
            ctx, key, level, lambda: None, config=config
        )

    def _augment_object_body(
        self,
        ctx: ExecContext,
        key: GlobalKey,
        level: int,
        finish: Callable[[], None],
        config: AugmentationConfig | None = None,
    ) -> list[AugmentedObject]:
        with ctx.span("plan", level=level, seeds=1) as span:
            plan = self.augmentation.plan([key], level=level)
            ctx.cpu(plan.edges_examined * ctx.cost_model.aindex_edge_cost)
            span.attrs["fetches"] = plan.total_fetches()
        augmenter = make_augmenter("inner", self.registry, self.cache)
        base = config if config is not None else self.config
        step_config = self._apply_degradation(
            AugmentationConfig(
                augmenter="inner",
                batch_size=base.batch_size,
                threads_size=base.threads_size,
                cache_size=self.cache.capacity,
                skip_unavailable=base.skip_unavailable,
                timeout_budget=base.timeout_budget,
            )
        )
        outcome = augmenter.execute(ctx, plan, step_config)
        for missing in outcome.missing:
            self.aindex.remove_object(missing)
        finish()
        ranked = sorted(
            outcome.objects, key=lambda entry: (-entry.probability, str(entry.key))
        )
        return ranked

    def record_exploration(self, path: tuple[GlobalKey, ...]) -> None:
        """Feed a finished session's full path to the promotion repo."""
        self.paths.record_path(path)

    # -- direct access ----------------------------------------------------------------

    def get(self, key: GlobalKey) -> DataObject:
        """Fetch one object by global key (utility for examples/UI)."""
        return self.polystore.get(key)
