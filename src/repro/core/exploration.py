"""Augmented exploration (Definition 4): stepwise, link-driven access.

An exploration session starts from a native query. The user picks one
object of the answer; QUEPA augments just that object (one step), shows
the ranked links, the user picks again, and so on until satisfied. Each
completed session contributes its full path to the promotion repository
(:mod:`repro.core.promotion`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import AugmentationError
from repro.model.objects import AugmentedObject, DataObject, GlobalKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import Quepa


@dataclass
class ExplorationStep:
    """One step of a session: the object expanded and the links found."""

    selected: GlobalKey
    links: list[AugmentedObject] = field(default_factory=list)

    def link_keys(self) -> list[GlobalKey]:
        return [link.key for link in self.links]


class ExplorationSession:
    """A stateful walk through the polystore, one click at a time."""

    def __init__(
        self, quepa: "Quepa", database: str, query: object
    ) -> None:
        self._quepa = quepa
        self.database = database
        self.query = query
        answer = quepa.augmented_search(database, query, level=0, augment=False)
        #: The local answer the exploration starts from.
        self.results: list[DataObject] = answer.originals
        self.steps: list[ExplorationStep] = []
        self._path: list[GlobalKey] = []
        self._closed = False

    # -- navigation -----------------------------------------------------------

    def select(self, key: GlobalKey) -> ExplorationStep:
        """Expand ``key``: augment it (level 0) and surface the links.

        The first selection must be an object of the original answer;
        subsequent selections must be links of the previous step, which
        is exactly the click-through discipline of Definition 4.
        """
        if self._closed:
            raise AugmentationError("exploration session is closed")
        self._check_selectable(key)
        links = self._quepa.augment_object(key)
        step = ExplorationStep(selected=key, links=links)
        self.steps.append(step)
        if not self._path:
            self._path.append(key)
        elif self._path[-1] != key:
            self._path.append(key)
        return step

    def _check_selectable(self, key: GlobalKey) -> None:
        if not self.steps:
            if all(obj.key != key for obj in self.results):
                raise AugmentationError(
                    f"{key} is not in the answer of the initial query"
                )
            return
        previous = self.steps[-1]
        if key not in previous.link_keys():
            raise AugmentationError(
                f"{key} is not a link of the previous step"
            )

    @property
    def path(self) -> tuple[GlobalKey, ...]:
        """The full path walked so far (nodes of the A' index)."""
        return tuple(self._path)

    def close(self) -> None:
        """End the session; records the full path for promotion."""
        if self._closed:
            return
        self._closed = True
        self._quepa.record_exploration(self.path)

    def __enter__(self) -> "ExplorationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
