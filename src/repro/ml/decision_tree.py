"""A C4.5-style decision-tree classifier (the Weka J48 stand-in).

Implements the parts of C4.5 the adaptive optimizer needs:

* splits chosen by *gain ratio* (information gain / split info);
* numeric attributes split on a binary threshold at candidate
  midpoints, categorical attributes split multiway on their values;
* stopping on purity, minimum leaf size, or depth;
* pessimistic-error subtree-replacement pruning (the classic upper
  confidence bound on the leaf error rate, z = 0.69 ~ C4.5's CF=25%);
* unseen categorical values at prediction fall through to the
  majority-class branch.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import NotTrainedError, TrainingError
from repro.ml.dataset import Dataset, Example, FeatureValue


@dataclass
class _Node:
    #: Leaf payload
    label: Optional[str] = None
    #: Split payload
    feature: Optional[str] = None
    threshold: Optional[float] = None  # numeric split: <= threshold goes left
    children: dict[object, "_Node"] = field(default_factory=dict)
    majority: str = ""
    size: int = 0
    errors: int = 0  # training errors if this node were a leaf

    @property
    def is_leaf(self) -> bool:
        return self.label is not None


def _entropy(labels: list[str]) -> float:
    counts = Counter(labels)
    total = len(labels)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _pessimistic_errors(errors: int, size: int, z: float = 0.69) -> float:
    """C4.5's upper confidence bound on the error count of a leaf."""
    if size == 0:
        return 0.0
    f = errors / size
    numerator = (
        f
        + z * z / (2 * size)
        + z * math.sqrt(f / size - f * f / size + z * z / (4 * size * size))
    )
    return size * numerator / (1 + z * z / size)


class C45Tree:
    """Classifier with `fit`, `predict`, `predict_many`, `to_text`."""

    def __init__(
        self,
        min_leaf: int = 2,
        max_depth: int = 12,
        prune: bool = True,
    ) -> None:
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.prune = prune
        self._root: Optional[_Node] = None
        self._dataset: Optional[Dataset] = None

    # -- training ---------------------------------------------------------------

    def fit(self, examples: list[Example]) -> "C45Tree":
        dataset = Dataset(examples)
        for example in dataset:
            if not isinstance(example.target, str):
                raise TrainingError(
                    f"classification targets must be strings, got "
                    f"{example.target!r}"
                )
        self._dataset = dataset
        self._root = self._build(list(dataset.examples), depth=0)
        if self.prune:
            self._prune(self._root)
        return self

    def _build(self, examples: list[Example], depth: int) -> _Node:
        labels = [ex.target for ex in examples]
        majority, majority_count = Counter(labels).most_common(1)[0]
        node = _Node(
            majority=majority,
            size=len(examples),
            errors=len(examples) - majority_count,
        )
        if (
            len(set(labels)) == 1
            or len(examples) < 2 * self.min_leaf
            or depth >= self.max_depth
        ):
            node.label = majority
            return node
        split = self._best_split(examples)
        if split is None:
            node.label = majority
            return node
        feature, threshold, partitions = split
        node.feature = feature
        node.threshold = threshold
        for branch_key, branch_examples in partitions.items():
            node.children[branch_key] = self._build(branch_examples, depth + 1)
        return node

    def _best_split(
        self, examples: list[Example]
    ) -> Optional[tuple[str, Optional[float], dict[object, list[Example]]]]:
        assert self._dataset is not None
        labels = [ex.target for ex in examples]
        base_entropy = _entropy(labels)
        best_ratio = 1e-9
        best: Optional[tuple[str, Optional[float], dict]] = None
        for feature in self._dataset.feature_names:
            if self._dataset.is_numeric(feature):
                candidate = self._numeric_split(
                    examples, feature, base_entropy
                )
            else:
                candidate = self._categorical_split(
                    examples, feature, base_entropy
                )
            if candidate is not None and candidate[0] > best_ratio:
                best_ratio = candidate[0]
                best = candidate[1]
        return best

    def _numeric_split(self, examples, feature, base_entropy):
        rows = [
            (float(ex.features[feature]), ex)
            for ex in examples
            if feature in ex.features
        ]
        if len(rows) < 2 * self.min_leaf:
            return None
        rows.sort(key=lambda pair: pair[0])
        values = [v for v, __ in rows]
        best = None
        previous = values[0]
        for index in range(1, len(rows)):
            value = values[index]
            if value == previous:
                continue
            threshold = (previous + value) / 2.0
            previous = value
            left = [ex for v, ex in rows if v <= threshold]
            right = [ex for v, ex in rows if v > threshold]
            if len(left) < self.min_leaf or len(right) < self.min_leaf:
                continue
            ratio = self._gain_ratio(base_entropy, [left, right], len(examples))
            if ratio is not None and (best is None or ratio > best[0]):
                partitions = {"le": left, "gt": right}
                best = (ratio, (feature, threshold, partitions))
        return best

    def _categorical_split(self, examples, feature, base_entropy):
        partitions: dict[object, list[Example]] = {}
        for ex in examples:
            if feature in ex.features:
                partitions.setdefault(ex.features[feature], []).append(ex)
        if len(partitions) < 2:
            return None
        if any(len(part) < self.min_leaf for part in partitions.values()):
            return None
        ratio = self._gain_ratio(
            base_entropy, list(partitions.values()), len(examples)
        )
        if ratio is None:
            return None
        return (ratio, (feature, None, partitions))

    @staticmethod
    def _gain_ratio(
        base_entropy: float, partitions: list[list[Example]], total: int
    ) -> Optional[float]:
        weighted = 0.0
        split_info = 0.0
        for part in partitions:
            weight = len(part) / total
            weighted += weight * _entropy([ex.target for ex in part])
            split_info -= weight * math.log2(weight)
        gain = base_entropy - weighted
        if gain <= 1e-12 or split_info <= 1e-12:
            return None
        return gain / split_info

    # -- pruning ------------------------------------------------------------------

    def _prune(self, node: _Node) -> float:
        """Bottom-up subtree replacement; returns the node's pessimistic
        error count after pruning."""
        if node.is_leaf:
            return _pessimistic_errors(node.errors, node.size)
        subtree_errors = sum(
            self._prune(child) for child in node.children.values()
        )
        leaf_errors = _pessimistic_errors(node.errors, node.size)
        if leaf_errors <= subtree_errors + 0.1:
            node.label = node.majority
            node.children.clear()
            node.feature = None
            node.threshold = None
            return leaf_errors
        return subtree_errors

    # -- prediction ------------------------------------------------------------------

    def predict(self, features: Mapping[str, FeatureValue]) -> str:
        if self._root is None:
            raise NotTrainedError("call fit() before predict()")
        node = self._root
        while not node.is_leaf:
            assert node.feature is not None
            value = features.get(node.feature)
            if node.threshold is not None:
                if value is None:
                    return node.majority
                branch = "le" if float(value) <= node.threshold else "gt"
                child = node.children.get(branch)
            else:
                child = node.children.get(value)
            if child is None:
                return node.majority
            node = child
        assert node.label is not None
        return node.label

    def decision_path(
        self, features: Mapping[str, FeatureValue]
    ) -> list[str]:
        """The tests taken by :meth:`predict` on ``features``, as human-
        readable rule strings ending in the predicted label."""
        if self._root is None:
            raise NotTrainedError("call fit() before predict()")
        path: list[str] = []
        node = self._root
        while not node.is_leaf:
            assert node.feature is not None
            value = features.get(node.feature)
            if node.threshold is not None:
                if value is None:
                    path.append(
                        f"{node.feature} missing -> {node.majority!r}"
                    )
                    return path
                if float(value) <= node.threshold:
                    path.append(
                        f"{node.feature} = {value} <= {node.threshold:g}"
                    )
                    child = node.children.get("le")
                else:
                    path.append(
                        f"{node.feature} = {value} > {node.threshold:g}"
                    )
                    child = node.children.get("gt")
            else:
                path.append(f"{node.feature} = {value!r}")
                child = node.children.get(value)
            if child is None:
                path.append(f"no branch -> {node.majority!r}")
                return path
            node = child
        path.append(f"-> {node.label!r}")
        return path

    def predict_many(
        self, rows: list[Mapping[str, FeatureValue]]
    ) -> list[str]:
        return [self.predict(row) for row in rows]

    def accuracy(self, examples: list[Example]) -> float:
        if not examples:
            return 0.0
        correct = sum(
            1 for ex in examples if self.predict(ex.features) == ex.target
        )
        return correct / len(examples)

    # -- inspection -------------------------------------------------------------------

    def depth(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(child) for child in node.children.values())

        if self._root is None:
            return 0
        return walk(self._root)

    def to_text(self) -> str:
        """Render the tree like the paper's Fig 8."""
        if self._root is None:
            raise NotTrainedError("call fit() before to_text()")
        lines: list[str] = []

        def walk(node: _Node, prefix: str, label: str) -> None:
            if node.is_leaf:
                lines.append(f"{prefix}{label} -> {node.label}")
                return
            if node.threshold is not None:
                lines.append(f"{prefix}{label} [{node.feature}?]")
                walk(node.children["le"], prefix + "  ",
                     f"<= {node.threshold:.3g}")
                walk(node.children["gt"], prefix + "  ",
                     f">  {node.threshold:.3g}")
            else:
                lines.append(f"{prefix}{label} [{node.feature}?]")
                for value, child in sorted(
                    node.children.items(), key=lambda kv: str(kv[0])
                ):
                    walk(child, prefix + "  ", f"= {value}")

        walk(self._root, "", "root")
        return "\n".join(lines)
