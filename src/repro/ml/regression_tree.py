"""A RepTree-style regression tree (the Weka RepTree stand-in).

Regression tree grown with variance reduction, binary numeric splits
and multiway categorical splits, then pruned with *reduced-error
pruning* on a held-out fraction of the training data — which is exactly
what gives Weka's RepTree its name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import NotTrainedError, TrainingError
from repro.ml.dataset import Dataset, Example, FeatureValue


@dataclass
class _RNode:
    value: Optional[float] = None  # leaf prediction
    feature: Optional[str] = None
    threshold: Optional[float] = None
    children: dict[object, "_RNode"] = field(default_factory=dict)
    mean: float = 0.0
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _sse(values: list[float]) -> float:
    """Sum of squared errors around the mean."""
    if not values:
        return 0.0
    mean = _mean(values)
    return sum((v - mean) ** 2 for v in values)


class RepTree:
    """Regressor with `fit`, `predict`, `to_text`."""

    def __init__(
        self,
        min_leaf: int = 3,
        max_depth: int = 10,
        prune: bool = True,
        holdout_fraction: float = 0.25,
        seed: int = 13,
    ) -> None:
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.prune = prune
        self.holdout_fraction = holdout_fraction
        self.seed = seed
        self._root: Optional[_RNode] = None
        self._dataset: Optional[Dataset] = None

    # -- training ----------------------------------------------------------------

    def fit(self, examples: list[Example]) -> "RepTree":
        for example in examples:
            if isinstance(example.target, bool) or not isinstance(
                example.target, (int, float)
            ):
                raise TrainingError(
                    f"regression targets must be numeric, got {example.target!r}"
                )
        dataset = Dataset(examples)
        if self.prune and len(examples) >= 8:
            train, holdout = dataset.split_holdout(
                self.holdout_fraction, self.seed
            )
        else:
            train, holdout = dataset, None
        self._dataset = train
        self._root = self._build(list(train.examples), depth=0)
        if self.prune and holdout is not None and holdout is not train:
            self._reduced_error_prune(self._root, list(holdout.examples))
        return self

    def _build(self, examples: list[Example], depth: int) -> _RNode:
        targets = [float(ex.target) for ex in examples]
        node = _RNode(mean=_mean(targets), size=len(examples))
        if (
            depth >= self.max_depth
            or len(examples) < 2 * self.min_leaf
            or _sse(targets) <= 1e-12
        ):
            node.value = node.mean
            return node
        split = self._best_split(examples, targets)
        if split is None:
            node.value = node.mean
            return node
        feature, threshold, partitions = split
        node.feature = feature
        node.threshold = threshold
        for key, part in partitions.items():
            node.children[key] = self._build(part, depth + 1)
        return node

    def _best_split(self, examples, targets):
        assert self._dataset is not None
        base_sse = _sse(targets)
        best_gain = 1e-9
        best = None
        for feature in self._dataset.feature_names:
            if self._dataset.is_numeric(feature):
                candidate = self._numeric_split(examples, feature, base_sse)
            else:
                candidate = self._categorical_split(examples, feature, base_sse)
            if candidate is not None and candidate[0] > best_gain:
                best_gain, best = candidate
        return best

    def _numeric_split(self, examples, feature, base_sse):
        rows = [
            (float(ex.features[feature]), ex)
            for ex in examples
            if feature in ex.features
        ]
        if len(rows) < 2 * self.min_leaf:
            return None
        rows.sort(key=lambda pair: pair[0])
        best = None
        previous = rows[0][0]
        for index in range(1, len(rows)):
            value = rows[index][0]
            if value == previous:
                continue
            threshold = (previous + value) / 2.0
            previous = value
            left = [ex for v, ex in rows if v <= threshold]
            right = [ex for v, ex in rows if v > threshold]
            if len(left) < self.min_leaf or len(right) < self.min_leaf:
                continue
            gain = base_sse - (
                _sse([float(ex.target) for ex in left])
                + _sse([float(ex.target) for ex in right])
            )
            if best is None or gain > best[0]:
                best = (gain, (feature, threshold, {"le": left, "gt": right}))
        return best

    def _categorical_split(self, examples, feature, base_sse):
        partitions: dict[object, list[Example]] = {}
        for ex in examples:
            if feature in ex.features:
                partitions.setdefault(ex.features[feature], []).append(ex)
        if len(partitions) < 2:
            return None
        if any(len(part) < self.min_leaf for part in partitions.values()):
            return None
        child_sse = sum(
            _sse([float(ex.target) for ex in part])
            for part in partitions.values()
        )
        gain = base_sse - child_sse
        if gain <= 1e-12:
            return None
        return (gain, (feature, None, partitions))

    # -- pruning --------------------------------------------------------------------

    def _reduced_error_prune(
        self, node: _RNode, holdout: list[Example]
    ) -> float:
        """Prune bottom-up wherever the leaf beats the subtree on the
        holdout; returns the node's holdout SSE after pruning."""
        leaf_sse = sum(
            (float(ex.target) - node.mean) ** 2 for ex in holdout
        )
        if node.is_leaf:
            return leaf_sse
        subtree_sse = 0.0
        assert node.feature is not None
        for key, child in node.children.items():
            subset = self._route(holdout, node, key)
            subtree_sse += self._reduced_error_prune(child, subset)
        # Holdout rows that reach no child (unseen category) are scored
        # against this node's mean either way.
        routed = set()
        for key in node.children:
            routed.update(
                id(ex) for ex in self._route(holdout, node, key)
            )
        for ex in holdout:
            if id(ex) not in routed:
                subtree_sse += (float(ex.target) - node.mean) ** 2
        if leaf_sse <= subtree_sse + 1e-12:
            node.value = node.mean
            node.children.clear()
            node.feature = None
            node.threshold = None
            return leaf_sse
        return subtree_sse

    @staticmethod
    def _route(
        holdout: list[Example], node: _RNode, key: object
    ) -> list[Example]:
        assert node.feature is not None
        subset = []
        for ex in holdout:
            value = ex.features.get(node.feature)
            if value is None:
                continue
            if node.threshold is not None:
                branch = "le" if float(value) <= node.threshold else "gt"
                if branch == key:
                    subset.append(ex)
            elif value == key:
                subset.append(ex)
        return subset

    # -- prediction -------------------------------------------------------------------

    def predict(self, features: Mapping[str, FeatureValue]) -> float:
        if self._root is None:
            raise NotTrainedError("call fit() before predict()")
        node = self._root
        while not node.is_leaf:
            assert node.feature is not None
            value = features.get(node.feature)
            if value is None:
                return node.mean
            if node.threshold is not None:
                branch = "le" if float(value) <= node.threshold else "gt"
                child = node.children.get(branch)
            else:
                child = node.children.get(value)
            if child is None:
                return node.mean
            node = child
        assert node.value is not None
        return node.value

    def mse(self, examples: list[Example]) -> float:
        if not examples:
            return 0.0
        return sum(
            (self.predict(ex.features) - float(ex.target)) ** 2
            for ex in examples
        ) / len(examples)

    # -- inspection -------------------------------------------------------------------

    def to_text(self) -> str:
        if self._root is None:
            raise NotTrainedError("call fit() before to_text()")
        lines: list[str] = []

        def walk(node: _RNode, prefix: str, label: str) -> None:
            if node.is_leaf:
                lines.append(f"{prefix}{label} -> {node.value:.4g}")
                return
            lines.append(f"{prefix}{label} [{node.feature}?]")
            if node.threshold is not None:
                walk(node.children["le"], prefix + "  ",
                     f"<= {node.threshold:.3g}")
                walk(node.children["gt"], prefix + "  ",
                     f">  {node.threshold:.3g}")
            else:
                for value, child in sorted(
                    node.children.items(), key=lambda kv: str(kv[0])
                ):
                    walk(child, prefix + "  ", f"= {value}")

        walk(self._root, "", "root")
        return "\n".join(lines)
