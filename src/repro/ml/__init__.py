"""From-scratch tree learners (the Weka stand-ins of Section V).

* :class:`~repro.ml.decision_tree.C45Tree` — a C4.5-style classifier
  (gain ratio, numeric thresholds + multiway categorical splits,
  pessimistic-error pruning), used for T1 (augmenter choice).
* :class:`~repro.ml.regression_tree.RepTree` — a RepTree-style
  regression tree (variance reduction, reduced-error pruning on a
  holdout), used for T2-T4 (BATCH_SIZE / THREADS_SIZE / CACHE_SIZE).

Both consume examples as plain ``dict`` feature maps with numeric or
categorical (string) values, and can render themselves as text — the
shape of the paper's Fig 8.
"""

from repro.ml.dataset import Dataset, Example
from repro.ml.decision_tree import C45Tree
from repro.ml.regression_tree import RepTree

__all__ = ["C45Tree", "Dataset", "Example", "RepTree"]
