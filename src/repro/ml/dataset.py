"""Tiny dataset containers for the tree learners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import TrainingError

#: Feature values are numbers or category strings.
FeatureValue = float | int | str


@dataclass(frozen=True)
class Example:
    """One training example: a feature map and a target.

    The target is a class label (str) for classification or a number
    for regression; the learners check what they receive.
    """

    features: Mapping[str, FeatureValue]
    target: Any


class Dataset:
    """A list of examples with feature-type introspection."""

    def __init__(self, examples: list[Example]) -> None:
        if not examples:
            raise TrainingError("empty training set")
        self.examples = examples
        self._numeric: dict[str, bool] = {}
        names: set[str] = set()
        for example in examples:
            names.update(example.features)
        for name in names:
            values = [
                ex.features[name] for ex in examples if name in ex.features
            ]
            self._numeric[name] = all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values
            )
        self.feature_names = sorted(names)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[Example]:
        return iter(self.examples)

    def is_numeric(self, feature: str) -> bool:
        return self._numeric.get(feature, False)

    def values(self, feature: str) -> list[FeatureValue]:
        return [
            ex.features[feature] for ex in self.examples if feature in ex.features
        ]

    def split_holdout(self, fraction: float, seed: int = 13) -> tuple[
        "Dataset", "Dataset"
    ]:
        """Deterministic train/holdout split for reduced-error pruning."""
        import random

        if not 0.0 < fraction < 1.0:
            raise TrainingError(f"holdout fraction must be in (0,1), got {fraction}")
        indices = list(range(len(self.examples)))
        random.Random(seed).shuffle(indices)
        cut = max(1, int(len(indices) * fraction))
        holdout_idx = set(indices[:cut])
        train = [ex for i, ex in enumerate(self.examples) if i not in holdout_idx]
        holdout = [ex for i, ex in enumerate(self.examples) if i in holdout_idx]
        if not train:
            train, holdout = holdout, []
        return Dataset(train), Dataset(holdout) if holdout else Dataset(train)
