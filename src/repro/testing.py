"""Test doubles for fault-injection: flaky and unavailable stores.

The polystore philosophy is loose coupling: individual stores can be
slow, flaky, or down while the rest of the polystore keeps working.
These wrappers let tests (and users' tests) exercise those paths:

* :class:`FlakyStore` — fails every Nth operation with
  :class:`~repro.errors.StoreUnavailableError`;
* :class:`DownStore` — fails everything (a store that is offline);
* both delegate everything else to the wrapped store unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import StoreUnavailableError
from repro.model.objects import DataObject, GlobalKey
from repro.stores.base import Store


class FlakyStore(Store):
    """Delegates to ``inner``, failing every ``fail_every``-th call.

    The counter spans reads issued through the Store contract
    (``execute``, ``get``, ``multi_get``), which is what connectors
    use — so an augmentation over a flaky store sees realistic
    mid-stream failures.
    """

    def __init__(self, inner: Store, fail_every: int = 3) -> None:
        super().__init__()
        if fail_every < 1:
            raise ValueError("fail_every must be >= 1")
        self.inner = inner
        self.fail_every = fail_every
        self.calls = 0
        self.failures = 0

    @property
    def engine(self) -> str:  # type: ignore[override]
        return self.inner.engine

    def _tick(self) -> None:
        self.calls += 1
        if self.calls % self.fail_every == 0:
            self.failures += 1
            raise StoreUnavailableError(
                f"{self.database_name or 'store'}: injected failure "
                f"(call {self.calls})"
            )

    # -- Store contract, with injection ------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        self._tick()
        return self._rekey(self.inner.execute(query))

    def get(self, key: GlobalKey) -> DataObject:
        self._tick()
        return self.inner.get(key)

    def multi_get(self, keys: Iterable[GlobalKey]) -> list[DataObject]:
        self._tick()
        return self.inner.multi_get(keys)

    def get_value(self, collection: str, key: str) -> Any:
        return self.inner.get_value(collection, key)

    def collections(self) -> list[str]:
        return self.inner.collections()

    def collection_keys(self, collection: str) -> Iterator[str]:
        return self.inner.collection_keys(collection)

    def _rekey(self, objects: list[DataObject]) -> list[DataObject]:
        # The inner store stamps its own database_name; queries through
        # the wrapper must carry the wrapper's attachment name.
        if not self.database_name:
            return objects
        return [
            DataObject(
                GlobalKey(self.database_name, obj.key.collection, obj.key.key),
                obj.value,
                obj.probability,
            )
            for obj in objects
        ]


class DownStore(FlakyStore):
    """A store that is completely unavailable."""

    def __init__(self, inner: Store) -> None:
        super().__init__(inner, fail_every=1)
