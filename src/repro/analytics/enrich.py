"""Entity enrichment: the augmentation as extra columns on a result.

``enrich_table`` runs a local query and flattens each result's own
augmentation into one row, with one column per remote database holding
the most probable related object from that database (key, payload and
probability). This is the tabular, analyst-facing face of
augmentation — the polystore counterpart of entity augmentation over
Web tables (InfoGather, cited in Section VI-B).
"""

from __future__ import annotations

from typing import Any

from repro.core.system import Quepa
from repro.model.objects import AugmentedObject


def enrich_table(
    quepa: Quepa,
    database: str,
    query: Any,
    level: int = 0,
    min_probability: float = 0.0,
) -> list[dict[str, Any]]:
    """One enriched row per original result.

    Each row has the original payload under ``"_local"`` plus, per
    remote database holding related data, a cell
    ``{"key", "value", "probability"}`` for the most probable related
    object (ties broken by key). Objects below ``min_probability`` are
    dropped. Unlike the ranked answer of an augmented search — which
    deduplicates objects across results — each row is built from *its
    own* result's augmentation, so shared objects appear on every row
    they relate to.
    """
    answer = quepa.augmented_search(database, query, augment=False)
    rows = []
    for original in answer.originals:
        if original.key.collection == "_result":
            rows.append({"_key": str(original.key), "_local": original.value})
            continue
        links = quepa.augment_object(original.key, level=level)
        row: dict[str, Any] = {
            "_key": str(original.key),
            "_local": original.value,
        }
        best: dict[str, AugmentedObject] = {}
        for entry in links:
            if entry.probability < min_probability:
                continue
            remote_db = entry.key.database
            current = best.get(remote_db)
            if (
                current is None
                or entry.probability > current.probability
                or (
                    entry.probability == current.probability
                    and str(entry.key) < str(current.key)
                )
            ):
                best[remote_db] = entry
        for remote_db, entry in sorted(best.items()):
            row[remote_db] = {
                "key": str(entry.key),
                "value": entry.object.value,
                "probability": entry.probability,
            }
        rows.append(row)
    return rows
