"""Probability-weighted aggregation over augmented answers.

The augmentation attaches each remote object with the probability that
it is related to the local result. Analytics over an augmented answer
therefore produce *expected values*: a discount reached with p = 0.7
counts as 0.7 of a discount. This is the standard possible-worlds
reading of probabilistic data, applied to the paper's p-relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.search import AugmentedAnswer
from repro.core.system import Quepa
from repro.model.objects import AugmentedObject


@dataclass
class GroupStats:
    """Weighted statistics of one group of augmented objects."""

    expected_count: float = 0.0
    raw_count: int = 0
    weighted_sum: float = 0.0
    #: Sum of weights of objects contributing a numeric value.
    numeric_weight: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    @property
    def expected_mean(self) -> float | None:
        if self.numeric_weight == 0.0:
            return None
        return self.weighted_sum / self.numeric_weight

    def add(self, probability: float, value: Any) -> None:
        self.expected_count += probability
        self.raw_count += 1
        number = _as_number(value)
        if number is None:
            return
        self.weighted_sum += probability * number
        self.numeric_weight += probability
        self.minimum = number if self.minimum is None else min(self.minimum, number)
        self.maximum = number if self.maximum is None else max(self.maximum, number)


@dataclass
class AggregateReport:
    """The result of one augmented aggregation."""

    answer: AugmentedAnswer
    metric_field: str | None
    groups: dict[str, GroupStats] = field(default_factory=dict)

    def group(self, name: str) -> GroupStats:
        return self.groups.setdefault(name, GroupStats())

    def total_expected(self) -> float:
        return sum(stats.expected_count for stats in self.groups.values())


#: A grouping function: augmented object -> group name.
GroupBy = Callable[[AugmentedObject], str]


def by_database(entry: AugmentedObject) -> str:
    return entry.key.database

def by_collection(entry: AugmentedObject) -> str:
    return f"{entry.key.database}.{entry.key.collection}"


def augmented_aggregate(
    quepa: Quepa,
    database: str,
    query: Any,
    level: int = 0,
    group_by: GroupBy = by_database,
    metric_field: str | None = None,
) -> AggregateReport:
    """Augment ``query`` and aggregate the augmented objects.

    ``group_by`` names the group of each augmented object (default: its
    home database). ``metric_field`` optionally selects a numeric field
    of the objects' payloads to sum/average (probability-weighted);
    scalar payloads (key-value entries) are used directly when the
    field is ``"value"``.
    """
    answer = quepa.augmented_search(database, query, level=level)
    report = AggregateReport(answer=answer, metric_field=metric_field)
    for entry in answer.augmented:
        value = _extract(entry, metric_field)
        report.group(group_by(entry)).add(entry.probability, value)
    return report


def augmented_profile(
    quepa: Quepa, database: str, query: Any, level: int = 0
) -> dict[str, dict[str, float]]:
    """Where the related information lives: per-database expected counts
    and mean link probability for one query's augmentation."""
    report = augmented_aggregate(
        quepa, database, query, level=level, group_by=by_database
    )
    profile: dict[str, dict[str, float]] = {}
    for name, stats in sorted(report.groups.items()):
        profile[name] = {
            "expected_objects": round(stats.expected_count, 6),
            "objects": float(stats.raw_count),
            "mean_probability": round(
                stats.expected_count / stats.raw_count, 6
            ) if stats.raw_count else 0.0,
        }
    return profile


def _extract(entry: AugmentedObject, metric_field: str | None) -> Any:
    if metric_field is None:
        return None
    value = entry.object.value
    if isinstance(value, Mapping):
        return value.get(metric_field)
    if metric_field == "value":
        return value
    return None


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip().rstrip("%")
        try:
            return float(text)
        except ValueError:
            return None
    return None
