"""Augmentation for data analytics (the paper's stated future work).

Section VIII: "As a direction of future work, we would like to extend
augmentation to data analytics scenarios." This package implements
that extension on top of the existing operator:

* :func:`~repro.analytics.aggregate.augmented_aggregate` — run a local
  query, augment it, then compute aggregates **over the augmented
  answer**, treating each augmented object's probability as its
  membership weight. Aggregates are therefore *expected values* under
  the p-relation semantics: an object attached with probability 0.7
  contributes 0.7 of itself to counts and sums.
* :func:`~repro.analytics.aggregate.augmented_profile` — a per-database
  breakdown of where an answer's related information lives, the
  "what else does the polystore know about this result set" report.
* :func:`~repro.analytics.enrich.enrich_table` — materialize the
  augmentation as extra columns on the local result (one column per
  remote database), the polystore equivalent of entity augmentation
  over Web tables the related-work section cites (InfoGather).
"""

from repro.analytics.aggregate import (
    AggregateReport,
    augmented_aggregate,
    augmented_profile,
)
from repro.analytics.enrich import enrich_table

__all__ = [
    "AggregateReport",
    "augmented_aggregate",
    "augmented_profile",
    "enrich_table",
]
