"""Mongo-style filter-document evaluation and projection.

Implements the query operators the catalogue workload (and a good deal
more) needs: comparison (``$eq $ne $gt $gte $lt $lte``), membership
(``$in $nin``), logical (``$and $or $nor $not``), element (``$exists
$type``), array (``$all $size $elemMatch``) and ``$regex``. Field paths
use dot notation and descend into nested documents and arrays, matching
MongoDB semantics: a filter on an array field matches if *any* element
matches.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Mapping

from repro.errors import QueryError
from repro.stores.querycache import QueryCache

_COMPARATORS = {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte"}
_TYPE_NAMES = {
    "double": float,
    "string": str,
    "object": dict,
    "array": list,
    "bool": bool,
    "int": int,
    "null": type(None),
}


def resolve_path(document: Any, path: str) -> list[Any]:
    """All values at a dotted ``path``, descending through arrays.

    Returns an empty list when the path does not exist. A document
    ``{"a": [{"b": 1}, {"b": 2}]}`` resolves ``"a.b"`` to ``[1, 2]``.
    """
    return _resolve_parts(document, path.split("."))


def _resolve_parts(document: Any, parts: list[str]) -> list[Any]:
    """``resolve_path`` over a pre-split path (the compiled-filter form)."""
    values = [document]
    for part in parts:
        next_values: list[Any] = []
        for value in values:
            if isinstance(value, Mapping):
                if part in value:
                    next_values.append(value[part])
            elif isinstance(value, list):
                if part.isdigit() and int(part) < len(value):
                    next_values.append(value[int(part)])
                else:
                    for element in value:
                        if isinstance(element, Mapping) and part in element:
                            next_values.append(element[part])
        values = next_values
        if not values:
            break
    return values


def _compare(op: str, candidate: Any, operand: Any) -> bool:
    try:
        if op == "$eq":
            return candidate == operand
        if op == "$ne":
            return candidate != operand
        if op == "$gt":
            return candidate > operand
        if op == "$gte":
            return candidate >= operand
        if op == "$lt":
            return candidate < operand
        if op == "$lte":
            return candidate <= operand
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


def _match_operand(candidate: Any, operator: str, operand: Any) -> bool:
    if operator in _COMPARATORS:
        return _compare(operator, candidate, operand)
    if operator == "$in":
        return candidate in operand
    if operator == "$nin":
        return candidate not in operand
    if operator == "$regex":
        if not isinstance(candidate, str):
            return False
        return re.search(operand, candidate) is not None
    if operator == "$type":
        expected = _TYPE_NAMES.get(operand)
        if expected is None:
            raise QueryError(f"unknown $type name {operand!r}")
        if expected is int and isinstance(candidate, bool):
            return False
        return isinstance(candidate, expected)
    if operator == "$size":
        return isinstance(candidate, list) and len(candidate) == operand
    if operator == "$all":
        return isinstance(candidate, list) and all(
            item in candidate for item in operand
        )
    if operator == "$elemMatch":
        return isinstance(candidate, list) and any(
            isinstance(element, Mapping) and matches_filter(element, operand)
            for element in candidate
        )
    if operator == "$not":
        return not _match_condition([candidate], operand)
    raise QueryError(f"unknown query operator {operator!r}")


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, Mapping) and value and all(
        isinstance(key, str) and key.startswith("$") for key in value
    )


def _match_condition(candidates: Iterable[Any], condition: Any) -> bool:
    """True if any value at the path satisfies ``condition``."""
    candidates = list(candidates)
    if _is_operator_doc(condition):
        if "$exists" in condition:
            exists = bool(condition["$exists"])
            if bool(candidates) != exists:
                return False
            rest = {k: v for k, v in condition.items() if k != "$exists"}
            if not rest:
                return True
            condition = rest
        for operator, operand in condition.items():
            if not any(
                _match_operand(value, operator, operand) for value in candidates
            ) and not (
                # Array fields also match when the array itself satisfies
                # the operator (e.g. {$eq: [1, 2]}), like MongoDB.
                operator == "$eq"
                and any(value == operand for value in candidates)
            ):
                return False
        return True
    # Literal equality: value equals, or an array member equals.
    for value in candidates:
        if value == condition:
            return True
        if isinstance(value, list) and condition in value:
            return True
    return False


#: Compiled-filter cache: a filter document compiles to a matcher
#: closure with paths pre-split and logical operators pre-dispatched,
#: so evaluating the same filter over many documents (or many calls)
#: skips the per-document interpretation of the query structure.
_FILTER_CACHE = QueryCache("document_filters")

#: Matcher signature: document in, verdict out.
FilterMatcher = Callable[[Mapping[str, Any]], bool]


def _compile(query: Mapping[str, Any]) -> FilterMatcher:
    """Translate a filter document into a matcher closure.

    Unknown top-level operators are rejected here, at compile time —
    callers still observe the :class:`QueryError` on the first
    ``matches_filter`` call, exactly as the interpretive version did.
    """
    clauses: list[FilterMatcher] = []
    for key, condition in query.items():
        if key == "$and":
            subs = [_compile(sub) for sub in condition]
            clauses.append(
                lambda doc, subs=subs: all(sub(doc) for sub in subs)
            )
        elif key == "$or":
            subs = [_compile(sub) for sub in condition]
            clauses.append(
                lambda doc, subs=subs: any(sub(doc) for sub in subs)
            )
        elif key == "$nor":
            subs = [_compile(sub) for sub in condition]
            clauses.append(
                lambda doc, subs=subs: not any(sub(doc) for sub in subs)
            )
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            parts = key.split(".")
            clauses.append(
                lambda doc, parts=parts, condition=condition: _match_condition(
                    _resolve_parts(doc, parts), condition
                )
            )
    if len(clauses) == 1:
        return clauses[0]

    def matcher(document: Mapping[str, Any]) -> bool:
        for clause in clauses:
            if not clause(document):
                return False
        return True

    return matcher


def _filter_key(value: Any) -> Any:
    """A hashable mirror of a filter document (raises TypeError if the
    filter contains values that cannot be hashed even via conversion)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _filter_key(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_filter_key(item) for item in value)
    hash(value)
    return value


def compile_filter(query: Mapping[str, Any]) -> FilterMatcher:
    """The compiled matcher for ``query``, cached by its content.

    Filters with unhashable atoms (rare: custom objects as operands)
    are compiled fresh on every call rather than cached.
    """
    try:
        key = _filter_key(query)
    except TypeError:
        return _compile(query)
    return _FILTER_CACHE.get_or_compute(key, lambda: _compile(query))


def matches_filter(document: Mapping[str, Any], query: Mapping[str, Any]) -> bool:
    """True if ``document`` satisfies the Mongo-style ``query``."""
    return compile_filter(query)(document)


def project(
    document: Mapping[str, Any], projection: Mapping[str, int] | None
) -> dict[str, Any]:
    """Apply a Mongo-style projection (inclusion or exclusion form)."""
    if not projection:
        return dict(document)
    include_id = projection.get("_id", 1)
    fields = {key: flag for key, flag in projection.items() if key != "_id"}
    if fields and len(set(fields.values())) > 1:
        raise QueryError("cannot mix inclusion and exclusion in a projection")
    inclusive = not fields or next(iter(fields.values())) == 1
    if inclusive:
        result: dict[str, Any] = {}
        for key in fields:
            values = resolve_path(document, key)
            if values:
                top = key.split(".", 1)[0]
                result[top] = document[top]
        if include_id and "_id" in document:
            result["_id"] = document["_id"]
        return result
    result = {key: value for key, value in document.items() if key not in fields}
    if not include_id:
        result.pop("_id", None)
    return result
