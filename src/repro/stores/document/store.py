"""A MongoDB-like document store.

Collections hold schemaless documents keyed by ``_id``. The native
query interface is :meth:`DocumentStore.find` — filter document,
optional projection, sort, skip, limit — plus ``insert/update/delete``
and equality indexes that ``find`` uses automatically for top-level
equality predicates.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping

from repro.errors import DuplicateKeyError, KeyNotFoundError, QueryError
from repro.model.objects import DataObject, GlobalKey
from repro.stores.base import Store
from repro.stores.document.query import (
    compile_filter,
    project,
    resolve_path,
)


class DocumentStore(Store):
    """An in-memory document database."""

    engine = "document"

    def __init__(self) -> None:
        super().__init__()
        self._collections: dict[str, dict[str, dict[str, Any]]] = {}
        # collection -> field -> value -> set of _ids
        self._indexes: dict[str, dict[str, dict[Any, set[str]]]] = {}
        self._id_counter = itertools.count(1)

    # -- collection management -------------------------------------------------

    def create_collection(self, name: str) -> None:
        self._collections.setdefault(name, {})

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)
        self._indexes.pop(name, None)

    def create_index(self, collection: str, field: str) -> None:
        """Build an equality index on a top-level ``field``."""
        documents = self._require(collection)
        index: dict[Any, set[str]] = {}
        for doc_id, document in documents.items():
            for value in _index_values(document, field):
                index.setdefault(value, set()).add(doc_id)
        self._indexes.setdefault(collection, {})[field] = index

    # -- writes -----------------------------------------------------------------

    def insert(self, collection: str, document: Mapping[str, Any]) -> str:
        """Insert a document, assigning ``_id`` when absent."""
        documents = self._collections.setdefault(collection, {})
        doc = dict(document)
        doc_id = str(doc.get("_id") or f"doc{next(self._id_counter)}")
        if doc_id in documents:
            raise DuplicateKeyError(f"{collection}._id={doc_id}")
        doc["_id"] = doc_id
        documents[doc_id] = doc
        self._index_add(collection, doc_id, doc)
        self.stats.writes += 1
        self._emit_change("append", collection, doc_id, doc)
        return doc_id

    def insert_many(
        self, collection: str, docs: list[Mapping[str, Any]]
    ) -> list[str]:
        return [self.insert(collection, doc) for doc in docs]

    def update_one(
        self, collection: str, doc_id: str, changes: Mapping[str, Any]
    ) -> None:
        """Update one document.

        ``changes`` is either a plain field map (merged into the
        document, as before) or a Mongo-style update document using the
        operators ``$set``, ``$unset``, ``$inc``, ``$push``, ``$pull``
        and ``$rename``.
        """
        documents = self._require(collection)
        if doc_id not in documents:
            raise KeyNotFoundError(f"{collection}._id={doc_id}")
        self._index_remove(collection, doc_id, documents[doc_id])
        _apply_update(documents[doc_id], changes)
        documents[doc_id]["_id"] = doc_id
        self._index_add(collection, doc_id, documents[doc_id])
        self.stats.writes += 1
        self._emit_change("update", collection, doc_id, documents[doc_id])

    def update_many(
        self,
        collection: str,
        query: Mapping[str, Any],
        changes: Mapping[str, Any],
    ) -> int:
        """Update every document matching ``query``; returns the count."""
        documents = self._require(collection)
        matcher = compile_filter(query)
        targets = [
            doc_id for doc_id, doc in documents.items() if matcher(doc)
        ]
        for doc_id in targets:
            self.update_one(collection, doc_id, changes)
        return len(targets)

    def delete_many(
        self, collection: str, query: Mapping[str, Any]
    ) -> int:
        """Delete every document matching ``query``; returns the count."""
        documents = self._require(collection)
        matcher = compile_filter(query)
        targets = [
            doc_id for doc_id, doc in documents.items() if matcher(doc)
        ]
        for doc_id in targets:
            self.delete_one(collection, doc_id)
        return len(targets)

    def delete_one(self, collection: str, doc_id: str) -> bool:
        documents = self._require(collection)
        document = documents.pop(doc_id, None)
        if document is None:
            return False
        self._index_remove(collection, doc_id, document)
        self.stats.writes += 1
        self._emit_change("delete", collection, doc_id)
        return True

    # -- reads ------------------------------------------------------------------

    def find(
        self,
        collection: str,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, int] | None = None,
        sort: list[tuple[str, int]] | None = None,
        skip: int = 0,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Mongo-style find; uses equality indexes when possible."""
        self.stats.queries += 1
        documents = self._require(collection)
        query = query or {}
        candidates = self._candidates(collection, documents, query)
        matcher = compile_filter(query)
        matched = [doc for doc in candidates if matcher(doc)]
        if sort:
            for field, direction in reversed(sort):
                matched.sort(
                    key=lambda doc: _sort_key(resolve_path(doc, field)),
                    reverse=direction < 0,
                )
        if skip:
            matched = matched[skip:]
        if limit is not None:
            matched = matched[:limit]
        results = [project(doc, projection) for doc in matched]
        self.stats.objects_returned += len(results)
        return results

    def find_one(
        self, collection: str, query: Mapping[str, Any] | None = None
    ) -> dict[str, Any] | None:
        results = self.find(collection, query, limit=1)
        return results[0] if results else None

    def count(self, collection: str, query: Mapping[str, Any] | None = None) -> int:
        documents = self._require(collection)
        if not query:
            return len(documents)
        matcher = compile_filter(query)
        return sum(1 for doc in documents.values() if matcher(doc))

    # -- Store contract -----------------------------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        """Native query: ``(collection, filter)`` or a dict with keys
        ``collection``, ``filter`` and optionally ``projection``,
        ``sort``, ``skip``, ``limit``."""
        if isinstance(query, tuple) and len(query) == 2:
            collection, filter_doc = query
            options: dict[str, Any] = {}
        elif isinstance(query, Mapping) and "collection" in query:
            collection = query["collection"]
            filter_doc = query.get("filter", {})
            options = {
                key: query[key]
                for key in ("projection", "sort", "skip", "limit")
                if key in query
            }
        else:
            raise QueryError(f"unsupported document query: {query!r}")
        documents = self.find(collection, filter_doc, **options)
        return [
            DataObject(
                GlobalKey(self.database_name or "doc", collection, doc["_id"]),
                doc,
            )
            for doc in documents
        ]

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        """Access path for a find: equality index probe when the filter
        has a top-level ``field: literal`` / ``field: {"$in": [...]}``
        predicate on an indexed field (the :meth:`_candidates` rule),
        collection scan otherwise."""
        if isinstance(query, tuple) and len(query) == 2:
            collection, filter_doc = query
        elif isinstance(query, Mapping) and "collection" in query:
            collection = query["collection"]
            filter_doc = query.get("filter", {})
        else:
            raise QueryError(f"unsupported document query: {query!r}")
        documents = self._require(collection)
        indexes = self._indexes.get(collection, {})
        for field, condition in (filter_doc or {}).items():
            if field.startswith("$") or field not in indexes:
                continue
            index = indexes[field]
            if isinstance(condition, Mapping):
                if set(condition) == {"$in"} and isinstance(
                    condition["$in"], (list, tuple)
                ):
                    ids: set[str] = set()
                    for value in condition["$in"]:
                        ids |= index.get(_hashable(value), set())
                    examined = len(ids)
                else:
                    continue
            else:
                examined = len(index.get(_hashable(condition), set()))
            return {
                "access_path": "index_probe",
                "index": f"{collection}.{field}",
                "collection": collection,
                "estimated_rows": examined,
                "estimated_cost": float(examined),
            }
        return {
            "access_path": "collection_scan",
            "index": None,
            "collection": collection,
            "estimated_rows": len(documents),
            "estimated_cost": float(len(documents)),
        }

    def get_value(self, collection: str, key: str) -> Any:
        documents = self._collections.get(collection)
        if documents is None or key not in documents:
            raise KeyNotFoundError(f"{collection}._id={key}")
        return dict(documents[key])

    def multi_get(self, keys) -> list[DataObject]:  # type: ignore[override]
        """Batch fetch via one ``{"_id": {"$in": [...]}}`` per collection.

        Keys are probed directly through each collection's ``_id`` map
        (the ``$in`` fast path); duplicates fetch once and missing keys
        are dropped. Results keep first-occurrence input order.
        """
        self.stats.multi_gets += 1
        found: list[DataObject] = []
        collections = self._collections
        for key in dict.fromkeys(keys):
            documents = collections.get(key.collection)
            if documents is None:
                continue
            document = documents.get(key.key)
            if document is not None:
                found.append(DataObject(key, dict(document)))
        self.stats.objects_returned += len(found)
        return found

    def collections(self) -> list[str]:
        return list(self._collections)

    def collection_keys(self, collection: str) -> Iterator[str]:
        return iter(list(self._collections.get(collection, {})))

    # -- internals ------------------------------------------------------------------

    def _require(self, collection: str) -> dict[str, dict[str, Any]]:
        if collection not in self._collections:
            raise KeyNotFoundError(f"no collection {collection!r}")
        return self._collections[collection]

    def _candidates(
        self,
        collection: str,
        documents: dict[str, dict[str, Any]],
        query: Mapping[str, Any],
    ) -> list[dict[str, Any]]:
        """Use an equality index for a top-level ``field: literal`` or
        ``field: {"$in": [...]}`` predicate when one exists."""
        indexes = self._indexes.get(collection, {})
        for field, condition in query.items():
            if field.startswith("$") or field not in indexes:
                continue
            index = indexes[field]
            if isinstance(condition, Mapping):
                if set(condition) == {"$in"} and isinstance(
                    condition["$in"], (list, tuple)
                ):
                    ids: set[str] = set()
                    for value in condition["$in"]:
                        ids |= index.get(_hashable(value), set())
                    return [documents[i] for i in ids if i in documents]
                continue
            ids = index.get(_hashable(condition), set())
            return [documents[i] for i in ids if i in documents]
        return list(documents.values())

    def _index_add(
        self, collection: str, doc_id: str, document: Mapping[str, Any]
    ) -> None:
        for field, index in self._indexes.get(collection, {}).items():
            for value in _index_values(document, field):
                index.setdefault(value, set()).add(doc_id)

    def _index_remove(
        self, collection: str, doc_id: str, document: Mapping[str, Any]
    ) -> None:
        for field, index in self._indexes.get(collection, {}).items():
            for value in _index_values(document, field):
                bucket = index.get(value)
                if bucket:
                    bucket.discard(doc_id)


_UPDATE_OPERATORS = {"$set", "$unset", "$inc", "$push", "$pull", "$rename"}


def _apply_update(document: dict[str, Any], changes: Mapping[str, Any]) -> None:
    """Apply a plain merge or a Mongo-style operator update in place."""
    is_operator_update = any(key.startswith("$") for key in changes)
    plain_keys = [k for k in changes if not k.startswith("$")]
    if is_operator_update and plain_keys:
        raise QueryError(
            "cannot mix update operators with plain fields in one update"
        )
    if not is_operator_update:
        document.update(changes)
        return
    for operator, spec in changes.items():
        if operator not in _UPDATE_OPERATORS:
            raise QueryError(f"unknown update operator {operator!r}")
        if not isinstance(spec, Mapping):
            raise QueryError(f"{operator} expects a field map")
        for field, value in spec.items():
            if field == "_id":
                raise QueryError("_id is immutable")
            if operator == "$set":
                document[field] = value
            elif operator == "$unset":
                document.pop(field, None)
            elif operator == "$inc":
                current = document.get(field, 0)
                if not isinstance(current, (int, float)) or isinstance(
                    current, bool
                ):
                    raise QueryError(
                        f"$inc target {field!r} is not numeric"
                    )
                document[field] = current + value
            elif operator == "$push":
                current = document.setdefault(field, [])
                if not isinstance(current, list):
                    raise QueryError(f"$push target {field!r} is not a list")
                current.append(value)
            elif operator == "$pull":
                current = document.get(field)
                if isinstance(current, list):
                    document[field] = [
                        item for item in current if item != value
                    ]
            elif operator == "$rename":
                if field in document:
                    document[str(value)] = document.pop(field)


def _index_values(document: Mapping[str, Any], field: str) -> list[Any]:
    value = document.get(field)
    if isinstance(value, list):
        return [_hashable(item) for item in value]
    if value is None and field not in document:
        return []
    return [_hashable(value)]


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def _sort_key(values: list[Any]) -> tuple[int, Any]:
    """Missing fields sort first; mixed types sort by type name."""
    if not values:
        return (0, "")
    value = values[0]
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
