"""MongoDB-like document store."""

from repro.stores.document.query import matches_filter, project
from repro.stores.document.store import DocumentStore

__all__ = ["DocumentStore", "matches_filter", "project"]
