"""In-process storage engines standing in for the paper's DBMSs.

Four engines mirror the Polyphony testbed (Section VII-A):

* :mod:`repro.stores.relational` — MySQL stand-in: tables, schemas,
  primary keys, secondary indexes, and a real SQL subset (parser +
  executor).
* :mod:`repro.stores.document` — MongoDB stand-in: schemaless
  collections queried with Mongo-style filter documents.
* :mod:`repro.stores.graph` — Neo4j stand-in: a property graph with
  labels, relationship types and traversal queries.
* :mod:`repro.stores.keyvalue` — Redis stand-in: GET/SET/MGET/KEYS/SCAN.

All engines implement the minimal :class:`~repro.stores.base.Store`
contract QUEPA needs — run a native query, fetch one object by key,
fetch many objects by key — while each also keeps its full native API,
which is the whole point of a polystore.
"""

from repro.stores.base import Store
from repro.stores.document.store import DocumentStore
from repro.stores.graph.store import GraphStore
from repro.stores.keyvalue.store import KeyValueStore
from repro.stores.relational.engine import RelationalStore

__all__ = [
    "DocumentStore",
    "GraphStore",
    "KeyValueStore",
    "RelationalStore",
    "Store",
]
