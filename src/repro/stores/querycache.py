"""Bounded parse/compile caches for the native query languages.

Every store speaks its own language (SQL, Mongo-style filter documents,
a Cypher subset), and the paper's workloads re-issue the same query
texts thousands of times — the batch-size sweeps run one statement per
point, and the augmenters re-parse the rewritten probe statements on
every flush. Parsing is pure (all three ASTs are frozen dataclasses),
so the parsed artifact can be shared between callers and cached keyed
by the query text.

:class:`QueryCache` is a small thread-safe LRU used by
:mod:`repro.stores.relational.parser`, :mod:`repro.stores.document.query`
and :mod:`repro.stores.graph.cypher`. Each cache registers itself by
name so the CLI ``stats`` command (and tests) can enumerate hit rates
without importing every store module.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: Default number of parsed statements kept per language. Query texts
#: are short and ASTs small; 256 comfortably covers the workloads while
#: bounding memory for adversarial streams of distinct statements.
DEFAULT_CAPACITY = 256

_REGISTRY: dict[str, "QueryCache"] = {}


class QueryCache:
    """Thread-safe bounded LRU mapping query text to a parsed artifact.

    ``get_or_compute`` runs the ``compute`` callable outside the lock:
    two threads racing on the same new key may both parse, and the
    later result wins — parsing is pure, so duplicated work is the only
    cost, and the lock is never held across user code. A ``compute``
    that raises caches nothing (malformed queries stay cheap to reject
    but are not pinned in the cache).
    """

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        _REGISTRY[name] = self

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
        value = compute()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Consistent snapshot of size and hit/miss counters."""
        with self._lock:
            hits, misses, size = self.hits, self.misses, len(self._entries)
        probes = hits + misses
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": size,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / probes) if probes else 0.0,
        }


def parse_cache_stats() -> list[dict]:
    """Snapshots of every registered parse cache, sorted by name.

    Only caches whose store module has been imported appear — the
    registry is populated at import time by the module-level cache
    instances.
    """
    return [_REGISTRY[name].stats() for name in sorted(_REGISTRY)]


def clear_parse_caches() -> None:
    """Reset every registered cache (test isolation helper)."""
    for cache in _REGISTRY.values():
        cache.clear()
