"""Schema types for the relational engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The column types the engine understands."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"

    def validate(self, value: Any) -> Any:
        """Check/coerce ``value`` for this type; None always passes here."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected integer, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected text, got {value!r}")
            return value
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected boolean, got {value!r}")
            return value
        raise SchemaError(f"unknown column type {self}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return self.type.validate(value)


@dataclass
class TableSchema:
    """Columns plus a single-column primary key.

    A single-column textual key keeps every row addressable by a global
    key, which is the paper's minimum requirement on participating
    stores. Composite natural keys should be concatenated by the schema
    designer (the paper makes the same granularity point in §II-A).
    """

    columns: list[Column]
    primary_key: str

    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        if self.primary_key not in names:
            raise SchemaError(f"primary key {self.primary_key!r} not a column")
        self._by_name = {column.name: column for column in self.columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def validate_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalize a full row against the schema."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        validated = {}
        for column in self.columns:
            validated[column.name] = column.validate(row.get(column.name))
        if validated[self.primary_key] is None:
            raise SchemaError(f"primary key {self.primary_key!r} cannot be NULL")
        return validated
